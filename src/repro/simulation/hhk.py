"""Efficient graph simulation via counter-based refinement.

This is the ``O((|Vq|+|V|)(|Eq|+|E|))`` algorithm the paper attributes to
Henzinger, Henzinger & Kopke [18] and Fan et al. [11], in the standard
counter formulation:

* ``sim(u)`` starts as all label-compatible data nodes;
* for every data node ``v`` and query node ``u'`` we maintain
  ``count[v][u'] = |succ(v) ∩ sim(u')|``;
* removing ``v'`` from ``sim(u')`` decrements ``count[v][u']`` for each
  predecessor ``v`` of ``v'``; when a count hits zero, every ``u`` with query
  edge ``(u, u')`` loses ``v`` from ``sim(u)``, which is pushed on a worklist.

The same machinery, restricted to one fragment with optimistic virtual
variables, powers the distributed local evaluation (``repro.core.state``) --
there the worklist processing *is* the paper's incremental lEval.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Set, Tuple

from repro.graph.digraph import DiGraph, Node
from repro.graph.pattern import Pattern
from repro.simulation.matchrel import MatchRelation


def simulation(query: Pattern, graph: DiGraph) -> MatchRelation:
    """Compute the maximum simulation ``Q(G)`` with counter-based refinement."""
    sim: Dict[Node, Set[Node]] = {}
    for u in query.nodes():
        want = query.label(u)
        sim[u] = {v for v in graph.nodes() if graph.label(v) == want}

    # count[(v, u')] = number of successors of v currently in sim(u').
    count: Dict[Tuple[Node, Node], int] = {}
    removals: Deque[Tuple[Node, Node]] = deque()

    query_parents: Dict[Node, list] = {u: query.parents(u) for u in query.nodes()}
    has_children: Dict[Node, bool] = {u: bool(query.children(u)) for u in query.nodes()}

    for u_child in query.nodes():
        if not query_parents[u_child]:
            continue
        members = sim[u_child]
        for v in graph.nodes():
            count[(v, u_child)] = sum(1 for s in graph.successors(v) if s in members)

    # Initial violations: v in sim(u) but v has no successor in sim(u') for
    # some query edge (u, u').
    for u in query.nodes():
        if not has_children[u]:
            continue
        for u_child in query.children(u):
            doomed = [v for v in sim[u] if count.get((v, u_child), 0) == 0]
            for v in doomed:
                if v in sim[u]:
                    sim[u].discard(v)
                    removals.append((u, v))

    while removals:
        u_removed, v_removed = removals.popleft()
        # v_removed left sim(u_removed): decrement predecessors' counters.
        for v_pred in graph.predecessors(v_removed):
            key = (v_pred, u_removed)
            if key not in count:
                continue
            count[key] -= 1
            if count[key] == 0:
                for u_parent in query_parents[u_removed]:
                    if v_pred in sim[u_parent]:
                        sim[u_parent].discard(v_pred)
                        removals.append((u_parent, v_pred))

    return MatchRelation(query.nodes(), sim)
