"""Subgraph-isomorphism matching (Ullmann-style backtracking).

The paper contrasts simulation with subgraph isomorphism [33] twice: it is
intractable (NP-complete), and -- unlike simulation -- it has *data locality*
(Example 3).  This module provides a small label-aware backtracking matcher so
the examples can demonstrate both points on paper-sized inputs.

Only suitable for small queries; the library's workhorses are the simulation
engines.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.graph.digraph import DiGraph, Node
from repro.graph.pattern import Pattern


def _candidates(query: Pattern, graph: DiGraph, u: Node) -> List[Node]:
    want = query.label(u)
    out_need = len(query.children(u))
    in_need = len(query.parents(u))
    return [
        v
        for v in graph.nodes()
        if graph.label(v) == want
        and graph.out_degree(v) >= out_need
        and graph.in_degree(v) >= in_need
    ]


def subgraph_isomorphisms(query: Pattern, graph: DiGraph) -> Iterator[Dict[Node, Node]]:
    """Yield every injective, edge-preserving embedding of ``query`` in ``graph``.

    An embedding maps each query node to a distinct data node with the same
    label such that every query edge maps to a data edge.
    """
    order = sorted(query.nodes(), key=lambda u: len(_candidates(query, graph, u)))
    cands = {u: _candidates(query, graph, u) for u in order}

    assignment: Dict[Node, Node] = {}
    used: set = set()

    def extend(idx: int) -> Iterator[Dict[Node, Node]]:
        if idx == len(order):
            yield dict(assignment)
            return
        u = order[idx]
        for v in cands[u]:
            if v in used:
                continue
            ok = True
            # Self-loops never appear in `assignment` while u is being
            # placed, so check them explicitly.
            if u in query.children(u) and not graph.has_edge(v, v):
                ok = False
            for u_child in query.children(u):
                if u_child in assignment and not graph.has_edge(v, assignment[u_child]):
                    ok = False
                    break
            if ok:
                for u_parent in query.parents(u):
                    if u_parent in assignment and not graph.has_edge(assignment[u_parent], v):
                        ok = False
                        break
            if not ok:
                continue
            assignment[u] = v
            used.add(v)
            yield from extend(idx + 1)
            del assignment[u]
            used.discard(v)

    yield from extend(0)


def find_subgraph_isomorphism(query: Pattern, graph: DiGraph) -> Optional[Dict[Node, Node]]:
    """First embedding found, or ``None`` when the query is not embeddable."""
    return next(subgraph_isomorphisms(query, graph), None)


def has_subgraph_isomorphism(query: Pattern, graph: DiGraph) -> bool:
    """Boolean form of :func:`find_subgraph_isomorphism`."""
    return find_subgraph_isomorphism(query, graph) is not None
