"""The textbook fixpoint algorithm for graph simulation.

Start from the label-compatible relation and repeatedly delete pairs that
violate the child condition until nothing changes.  Quadratic-ish and simple;
it serves as the *oracle* every other engine (HHK, DAG-layered, and all the
distributed algorithms) is tested against.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.graph.digraph import DiGraph, Node
from repro.graph.pattern import Pattern
from repro.simulation.matchrel import MatchRelation


def naive_simulation(query: Pattern, graph: DiGraph) -> MatchRelation:
    """Compute the maximum simulation ``Q(G)`` by naive fixpoint refinement."""
    sim: Dict[Node, Set[Node]] = {}
    for u in query.nodes():
        want = query.label(u)
        sim[u] = {v for v in graph.nodes() if graph.label(v) == want}

    changed = True
    while changed:
        changed = False
        for u in query.nodes():
            children = query.children(u)
            if not children:
                continue
            survivors = set()
            for v in sim[u]:
                ok = True
                for u_child in children:
                    targets = sim[u_child]
                    if not any(s in targets for s in graph.successors(v)):
                        ok = False
                        break
                if ok:
                    survivors.add(v)
            if len(survivors) != len(sim[u]):
                sim[u] = survivors
                changed = True

    return MatchRelation(query.nodes(), sim)
