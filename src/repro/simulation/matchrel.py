"""The result of a (distributed or centralized) graph-simulation query.

The paper distinguishes two query types (Section 2.1):

* a **Boolean** pattern returns ``true`` iff ``G`` matches ``Q``;
* a **data selecting** pattern returns the unique maximum match ``Q(G)``.

:class:`MatchRelation` provides both views over one underlying relation, plus
the maximality/validity checks the tests rely on.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Set, Tuple

from repro.graph.digraph import DiGraph, Node
from repro.graph.pattern import Pattern


class MatchRelation:
    """An immutable match relation ``R ⊆ Vq × V``.

    Instances are produced by the simulation engines; ``matches[u]`` is the
    set of data nodes matching query node ``u``.  If any query node has no
    match, the relation as a whole is *empty* (``bool(rel) is False`` and
    ``as_relation()`` returns the empty set) -- this mirrors the paper's
    semantics that ``Q(G) = ∅`` when ``G`` does not match ``Q``.

    Immutability is enforced, not just advertised: per-node sets are
    frozensets, views return copies, and attribute assignment after
    construction raises ``AttributeError``.  The session layer relies on
    this -- cache hits share the relation object, so a mutable relation
    would let one caller poison every later hit.
    """

    __slots__ = ("_matches", "_query_nodes", "_is_match", "_frozen")

    def __init__(self, query_nodes: Iterable[Node], matches: Mapping[Node, Iterable[Node]]) -> None:
        self._query_nodes: Tuple[Node, ...] = tuple(query_nodes)
        self._matches: Dict[Node, FrozenSet[Node]] = {
            u: frozenset(matches.get(u, ())) for u in self._query_nodes
        }
        self._is_match = all(self._matches[u] for u in self._query_nodes)
        self._frozen = True

    def __setattr__(self, name: str, value) -> None:
        if getattr(self, "_frozen", False):
            raise AttributeError("MatchRelation is immutable")
        super().__setattr__(name, value)

    # ------------------------------------------------------------------
    # the two query semantics
    # ------------------------------------------------------------------
    @property
    def is_match(self) -> bool:
        """Boolean-query answer: does ``G`` match ``Q``?"""
        return self._is_match

    def __bool__(self) -> bool:
        return self._is_match

    def matches_of(self, u: Node) -> FrozenSet[Node]:
        """Data nodes matching query node ``u`` (empty if ``G`` does not match)."""
        if not self._is_match:
            return frozenset()
        return self._matches[u]

    def raw_matches_of(self, u: Node) -> FrozenSet[Node]:
        """The per-node candidate set *before* the emptiness collapse.

        Useful for diagnostics: shows which query nodes killed the match.
        """
        return self._matches[u]

    def as_relation(self) -> Set[Tuple[Node, Node]]:
        """``Q(G)`` as a set of ``(u, v)`` pairs (empty when no match)."""
        if not self._is_match:
            return set()
        return {(u, v) for u in self._query_nodes for v in self._matches[u]}

    def as_dict(self) -> Dict[Node, FrozenSet[Node]]:
        """``Q(G)`` as ``{query node: matched data nodes}`` (empty sets when no match)."""
        return {u: self.matches_of(u) for u in self._query_nodes}

    def query_nodes(self) -> Iterator[Node]:
        """The query nodes this relation is defined over."""
        return iter(self._query_nodes)

    def __len__(self) -> int:
        return len(self.as_relation())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MatchRelation):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __hash__(self) -> int:
        return hash(tuple(sorted((u, self.matches_of(u)) for u in self._query_nodes)))

    def __repr__(self) -> str:
        total = sum(len(self.matches_of(u)) for u in self._query_nodes)
        return f"MatchRelation(is_match={self._is_match}, pairs={total})"


def is_valid_simulation(query: Pattern, graph: DiGraph, rel: Mapping[Node, Iterable[Node]]) -> bool:
    """Check the two simulation conditions (Section 2.1) for a candidate relation.

    (a) every pair agrees on labels; (b) every query edge ``(u, u')`` out of a
    matched ``(u, v)`` is witnessed by an edge ``(v, v')`` with ``v'`` matching
    ``u'``.  Totality (every query node matched) is *not* checked here; use
    :attr:`MatchRelation.is_match` for that.
    """
    rel_sets = {u: set(vs) for u, vs in rel.items()}
    for u, vs in rel_sets.items():
        for v in vs:
            if query.label(u) != graph.label(v):
                return False
            for u_child in query.children(u):
                targets = rel_sets.get(u_child, set())
                if not any(succ in targets for succ in graph.successors(v)):
                    return False
    return True


def is_maximum_simulation(query: Pattern, graph: DiGraph, rel: MatchRelation) -> bool:
    """True iff ``rel`` is the unique maximum simulation of ``query`` in ``graph``.

    Verified by checking validity and that no label-compatible pair outside the
    relation could be added while keeping validity -- which for the maximum
    simulation reduces to: the relation is exactly the greatest fixpoint, i.e.
    re-running a reference engine yields the same relation.  Tests use this as
    a slow but independent oracle.
    """
    from repro.simulation.naive import naive_simulation

    return rel == naive_simulation(query, graph)
