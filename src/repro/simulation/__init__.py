"""Centralized graph-simulation engines.

Graph simulation (Henzinger, Henzinger & Kopke, FOCS'95) is the matching
semantics the paper builds on: ``Q(G)`` is the unique *maximum* relation
``R ⊆ Vq × V`` such that matched nodes agree on labels and every query edge
out of ``u`` is witnessed by a data edge out of each match of ``u``.

* :func:`~repro.simulation.hhk.simulation` -- the efficient counter-based
  refinement, ``O((|Vq|+|V|)(|Eq|+|E|))``; the library's workhorse.
* :func:`~repro.simulation.naive.naive_simulation` -- the textbook fixpoint,
  used as an oracle in tests.
* :func:`~repro.simulation.dagsim.dag_simulation` -- rank-layered evaluation
  for DAG queries; one pass per rank, mirroring dGPMd's schedule.
* :class:`~repro.simulation.matchrel.MatchRelation` -- the result type shared
  by every engine (Boolean and data-selecting views, Section 2.1).
"""

from repro.simulation.matchrel import MatchRelation
from repro.simulation.hhk import simulation
from repro.simulation.naive import naive_simulation
from repro.simulation.dagsim import dag_simulation
from repro.simulation.bounded import bounded_simulation

__all__ = [
    "MatchRelation",
    "simulation",
    "naive_simulation",
    "dag_simulation",
    "bounded_simulation",
]
