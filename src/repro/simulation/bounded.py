"""Bounded simulation (Fan et al., PVLDB'10 -- the paper's reference [11]).

Reference [11] generalizes graph simulation: each query edge ``(u, u')``
carries a hop bound ``k``, and a match of ``u`` must reach a match of ``u'``
by a directed path of length at most ``k`` (``k = 1`` recovers plain
simulation; ``k = None`` means unbounded reachability).  The reproduced
paper builds directly on [11]'s quadratic-time algorithm, so the library
ships this semantics as an extension: the same greatest-fixpoint refinement,
with successor checks replaced by bounded-reachability checks.

Complexity: the distance index costs one BFS per (node, bound) pair actually
used; refinement is the standard fixpoint on top.  Fine for the library's
laptop-scale graphs.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Mapping, Optional, Set, Tuple

from repro.errors import PatternError
from repro.graph.digraph import DiGraph, Node
from repro.graph.pattern import Pattern
from repro.simulation.matchrel import MatchRelation

#: per-query-edge hop bounds: (u, u') -> k >= 1, or None for unbounded
EdgeBounds = Mapping[Tuple[Node, Node], Optional[int]]


def _within_hops(graph: DiGraph, source: Node, limit: Optional[int]) -> Set[Node]:
    """Nodes reachable from ``source`` in 1..limit directed hops."""
    reached: Set[Node] = set()
    queue = deque([(source, 0)])
    seen = {source}
    while queue:
        node, depth = queue.popleft()
        if limit is not None and depth == limit:
            continue
        for succ in graph.successors(node):
            if succ not in seen:
                seen.add(succ)
                reached.add(succ)
                queue.append((succ, depth + 1))
            else:
                # re-encountered via an edge => reachable in >= 1 hop,
                # including the source itself through a cycle
                reached.add(succ)
    return reached


def bounded_simulation(
    query: Pattern,
    graph: DiGraph,
    bounds: Optional[EdgeBounds] = None,
    default_bound: Optional[int] = 1,
) -> MatchRelation:
    """Compute the maximum bounded simulation of ``query`` in ``graph``.

    ``bounds`` maps query edges to hop limits; missing edges use
    ``default_bound`` (1 = plain simulation, None = reachability).
    """
    bounds = dict(bounds or {})
    for edge in query.edges():
        bounds.setdefault(edge, default_bound)
    for edge, k in bounds.items():
        if edge not in set(query.edges()):
            raise PatternError(f"bound given for unknown query edge {edge!r}")
        if k is not None and k < 1:
            raise PatternError(f"hop bound for {edge!r} must be >= 1 or None")

    # Distance-limited reachability cache, computed lazily per (node, k).
    reach_cache: Dict[Tuple[Node, Optional[int]], Set[Node]] = {}

    def reach(v: Node, k: Optional[int]) -> Set[Node]:
        key = (v, k)
        if key not in reach_cache:
            reach_cache[key] = _within_hops(graph, v, k)
        return reach_cache[key]

    sim: Dict[Node, Set[Node]] = {}
    for u in query.nodes():
        want = query.label(u)
        sim[u] = {v for v in graph.nodes() if graph.label(v) == want}

    changed = True
    while changed:
        changed = False
        for u in query.nodes():
            children = query.children(u)
            if not children:
                continue
            survivors = set()
            for v in sim[u]:
                ok = True
                for u_child in children:
                    k = bounds[(u, u_child)]
                    if not (reach(v, k) & sim[u_child]):
                        ok = False
                        break
                if ok:
                    survivors.add(v)
            if len(survivors) != len(sim[u]):
                sim[u] = survivors
                changed = True
    return MatchRelation(query.nodes(), sim)
