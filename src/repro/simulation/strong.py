"""Strong simulation (Ma et al., PVLDB'11 -- the paper's reference [24]).

Strong simulation restricts graph simulation to *balls*: a data node ``v`` is
a strong-simulation match of ``u`` only if the dual simulation of ``Q`` inside
the ball of radius ``d_Q`` (the query diameter) around ``v`` still matches
``v`` to ``u``.  Unlike plain simulation it enjoys **data locality**
(Section 2.1 of the reproduced paper): deciding a match only needs nodes
within ``d_Q`` hops.

The reproduced paper uses strong simulation purely as a contrast -- it may
miss matches plain simulation finds (e.g. node ``yb2`` in Figure 1).  We
implement it so examples and tests can demonstrate exactly that contrast.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.graph import algorithms
from repro.graph.digraph import DiGraph, Node
from repro.graph.pattern import Pattern
from repro.simulation.matchrel import MatchRelation


def dual_simulation(query: Pattern, graph: DiGraph) -> MatchRelation:
    """Dual simulation: the child condition plus the symmetric parent condition.

    ``v`` matches ``u`` only if every query edge *into* ``u`` is also witnessed
    by an edge into ``v`` from a match of the parent.
    """
    sim: Dict[Node, Set[Node]] = {}
    for u in query.nodes():
        want = query.label(u)
        sim[u] = {v for v in graph.nodes() if graph.label(v) == want}

    changed = True
    while changed:
        changed = False
        for u in query.nodes():
            survivors = set()
            for v in sim[u]:
                ok = all(
                    any(s in sim[u_child] for s in graph.successors(v))
                    for u_child in query.children(u)
                ) and all(
                    any(p in sim[u_parent] for p in graph.predecessors(v))
                    for u_parent in query.parents(u)
                )
                if ok:
                    survivors.add(v)
            if len(survivors) != len(sim[u]):
                sim[u] = survivors
                changed = True
    return MatchRelation(query.nodes(), sim)


def ball(graph: DiGraph, center: Node, radius: int) -> DiGraph:
    """The subgraph induced by nodes within ``radius`` undirected hops of ``center``."""
    dist = algorithms.bfs_layers(graph, [center], undirected=True)
    keep = [v for v, d in dist.items() if d <= radius]
    return graph.induced_subgraph(keep)


def strong_simulation(query: Pattern, graph: DiGraph) -> MatchRelation:
    """Strong simulation matches: dual simulation restricted to diameter balls.

    ``v`` matches ``u`` iff the maximum dual simulation of ``Q`` in the ball
    ``B(v, d_Q)`` is nonempty (total) and contains ``(u, v)``.
    """
    radius = query.diameter()
    global_dual = dual_simulation(query, graph)
    matches: Dict[Node, Set[Node]] = {u: set() for u in query.nodes()}
    # Only centers surviving global dual simulation can be strong matches;
    # this prune keeps the per-ball work proportional to candidate counts.
    candidate_pairs = [
        (u, v) for u in query.nodes() for v in global_dual.raw_matches_of(u)
    ]
    ball_cache: Dict[Node, MatchRelation] = {}
    for u, v in candidate_pairs:
        if v not in ball_cache:
            ball_cache[v] = dual_simulation(query, ball(graph, v, radius))
        local = ball_cache[v]
        if local.is_match and v in local.matches_of(u):
            matches[u].add(v)
    return MatchRelation(query.nodes(), matches)
