"""Rank-layered simulation for DAG pattern queries.

When ``Q`` is a DAG, ``X(u, v)`` depends only on pairs with strictly smaller
query rank (Section 5.1), so the match relation can be computed in one pass
per rank with no fixpoint iteration.  This is the centralized skeleton of
dGPMd; it also documents why dGPMd needs at most ``d`` message rounds.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.errors import PatternError
from repro.graph.digraph import DiGraph, Node
from repro.graph.pattern import Pattern
from repro.simulation.matchrel import MatchRelation


def dag_simulation(query: Pattern, graph: DiGraph) -> MatchRelation:
    """Compute ``Q(G)`` for a DAG query by ascending-rank evaluation.

    Raises :class:`PatternError` if the query is cyclic.
    """
    if not query.is_dag():
        raise PatternError("dag_simulation requires a DAG pattern")

    sim: Dict[Node, Set[Node]] = {}
    for layer in query.nodes_by_rank():
        for u in layer:
            want = query.label(u)
            candidates = {v for v in graph.nodes() if graph.label(v) == want}
            for u_child in query.children(u):
                targets = sim[u_child]  # strictly smaller rank: already final
                candidates = {
                    v for v in candidates
                    if any(s in targets for s in graph.successors(v))
                }
            sim[u] = candidates
    return MatchRelation(query.nodes(), sim)
