"""Monotone Boolean expression algebra.

Expressions are immutable trees over variables, constants, conjunctions and
disjunctions (no negation -- simulation equations are monotone, which is what
makes the greatest-fixpoint semantics of Section 4.1 work).

Construction goes through :func:`conj` / :func:`disj`, which normalize on the
fly: flatten nested And/And and Or/Or, fold constants, deduplicate operands,
and collapse singletons.  This keeps the equations of Example 6 in the exact
small shapes the paper prints (e.g. ``X(SP,sp1) = X(YF,yf2) OR X(F,f2)``).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Mapping, Tuple

VarName = Hashable


class BoolExpr:
    """Base class for monotone Boolean expressions.  Immutable."""

    __slots__ = ()

    def variables(self) -> FrozenSet[VarName]:
        """The free variables of the expression."""
        raise NotImplementedError

    def substitute(self, binding: Mapping[VarName, "BoolExpr"]) -> "BoolExpr":
        """Replace variables per ``binding``; unmapped variables stay free."""
        raise NotImplementedError

    def evaluate(self, valuation: Mapping[VarName, bool]) -> bool:
        """Evaluate under a *total* valuation; raises ``KeyError`` if a variable is unbound."""
        raise NotImplementedError

    def evaluate_partial(self, valuation: Mapping[VarName, bool]) -> "BoolExpr":
        """Evaluate under a partial valuation, leaving unbound variables symbolic."""
        return self.substitute({name: Const(value) for name, value in valuation.items()})

    @property
    def n_terms(self) -> int:
        """Number of leaves -- the paper's message size ``m`` for shipped equations."""
        raise NotImplementedError

    def is_const(self) -> bool:
        """True iff the expression is a constant."""
        return isinstance(self, Const)

    # operator sugar -------------------------------------------------------
    def __and__(self, other: "BoolExpr") -> "BoolExpr":
        return conj([self, other])

    def __or__(self, other: "BoolExpr") -> "BoolExpr":
        return disj([self, other])


class Const(BoolExpr):
    """The constants ``TRUE`` and ``FALSE``."""

    __slots__ = ("value",)

    def __init__(self, value: bool) -> None:
        object.__setattr__(self, "value", bool(value))

    def __setattr__(self, *_: object) -> None:
        raise AttributeError("Const is immutable")

    def __reduce__(self):
        return (Const, (self.value,))

    def variables(self) -> FrozenSet[VarName]:
        return frozenset()

    def substitute(self, binding: Mapping[VarName, BoolExpr]) -> BoolExpr:
        return self

    def evaluate(self, valuation: Mapping[VarName, bool]) -> bool:
        return self.value

    @property
    def n_terms(self) -> int:
        return 1

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("const", self.value))

    def __repr__(self) -> str:
        return "TRUE" if self.value else "FALSE"


TRUE = Const(True)
FALSE = Const(False)


class Var(BoolExpr):
    """A named Boolean variable, e.g. ``X(u, v)`` keyed by the pair ``(u, v)``."""

    __slots__ = ("name",)

    def __init__(self, name: VarName) -> None:
        object.__setattr__(self, "name", name)

    def __setattr__(self, *_: object) -> None:
        raise AttributeError("Var is immutable")

    def __reduce__(self):
        return (Var, (self.name,))

    def variables(self) -> FrozenSet[VarName]:
        return frozenset([self.name])

    def substitute(self, binding: Mapping[VarName, BoolExpr]) -> BoolExpr:
        return binding.get(self.name, self)

    def evaluate(self, valuation: Mapping[VarName, bool]) -> bool:
        return valuation[self.name]

    @property
    def n_terms(self) -> int:
        return 1

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("var", self.name))

    def __repr__(self) -> str:
        return f"X{self.name!r}" if not isinstance(self.name, str) else self.name


class _NaryOp(BoolExpr):
    """Shared machinery for And/Or: a frozen, deduplicated operand tuple."""

    __slots__ = ("operands",)
    _symbol = "?"

    def __init__(self, operands: Tuple[BoolExpr, ...]) -> None:
        object.__setattr__(self, "operands", operands)

    def __setattr__(self, *_: object) -> None:
        raise AttributeError("expressions are immutable")

    def __reduce__(self):
        return (type(self), (self.operands,))

    def variables(self) -> FrozenSet[VarName]:
        out: FrozenSet[VarName] = frozenset()
        for op in self.operands:
            out |= op.variables()
        return out

    @property
    def n_terms(self) -> int:
        return sum(op.n_terms for op in self.operands)

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and set(self.operands) == set(other.operands)

    def __hash__(self) -> int:
        return hash((type(self).__name__, frozenset(self.operands)))

    def __repr__(self) -> str:
        inner = f" {self._symbol} ".join(repr(op) for op in self.operands)
        return f"({inner})"


class And(_NaryOp):
    """Conjunction.  Use :func:`conj` to build normalized instances."""

    __slots__ = ()
    _symbol = "AND"

    def substitute(self, binding: Mapping[VarName, BoolExpr]) -> BoolExpr:
        return conj(op.substitute(binding) for op in self.operands)

    def evaluate(self, valuation: Mapping[VarName, bool]) -> bool:
        return all(op.evaluate(valuation) for op in self.operands)


class Or(_NaryOp):
    """Disjunction.  Use :func:`disj` to build normalized instances."""

    __slots__ = ()
    _symbol = "OR"

    def substitute(self, binding: Mapping[VarName, BoolExpr]) -> BoolExpr:
        return disj(op.substitute(binding) for op in self.operands)

    def evaluate(self, valuation: Mapping[VarName, bool]) -> bool:
        return any(op.evaluate(valuation) for op in self.operands)


def conj(operands: Iterable[BoolExpr]) -> BoolExpr:
    """Normalized conjunction: flatten, fold constants, dedupe, collapse singleton."""
    flat: Dict[BoolExpr, None] = {}
    for op in operands:
        if isinstance(op, Const):
            if not op.value:
                return FALSE
            continue  # TRUE is the unit of AND
        if isinstance(op, And):
            for inner in op.operands:
                flat.setdefault(inner, None)
        else:
            flat.setdefault(op, None)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return next(iter(flat))
    return And(tuple(flat))


def disj(operands: Iterable[BoolExpr]) -> BoolExpr:
    """Normalized disjunction: flatten, fold constants, dedupe, collapse singleton."""
    flat: Dict[BoolExpr, None] = {}
    for op in operands:
        if isinstance(op, Const):
            if op.value:
                return TRUE
            continue  # FALSE is the unit of OR
        if isinstance(op, Or):
            for inner in op.operands:
                flat.setdefault(inner, None)
        else:
            flat.setdefault(op, None)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return next(iter(flat))
    return Or(tuple(flat))
