"""Systems of monotone Boolean equations and their greatest fixpoints.

An :class:`EquationSystem` maps variable names to monotone expressions over
(a) other variables of the system ("internal") and (b) free parameters
("external" -- in dGPM these are the virtual-node variables owned by other
sites).  Simulation semantics is the **greatest** fixpoint: a cycle of
variables that support each other evaluates to true (that is exactly why the
recommendation cycle of Figure 1 matches the cyclic query).

Three operations matter to the paper:

* :meth:`EquationSystem.solve` -- gfp under a total valuation of externals
  (coordinator-side solving in dGPMt, Section 5.2);
* :meth:`EquationSystem.reduce` -- symbolic projection onto the externals:
  rewrite every equation so it mentions external parameters only.  This is
  lEval's "reduce equations such that for each in-node its equations are
  defined in terms of variables associated with virtual nodes only"
  (Section 4.1, Example 6), and the payload of the push operation (4.2);
* :meth:`EquationSystem.solve_acyclic` -- linear-time bottom-up substitution
  when the dependency graph is a DAG/forest, the ``O(|Q||F|)`` step of dGPMt.

``reduce`` computes the gfp symbolically by Kleene iteration from the all-true
valuation: with ``n`` internal variables the iteration stabilizes within ``n``
rounds, so substituting ``n`` times and then setting surviving internal
occurrences to TRUE yields the exact projection.  Worst-case expression blowup
is capped by ``max_terms`` (callers fall back to value shipping -- the paper's
push is an *optimization*, never required for correctness).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Set

from repro.boolean.expr import BoolExpr, TRUE, VarName
from repro.errors import ReproError


class EquationBlowupError(ReproError):
    """Symbolic reduction exceeded the configured size budget."""


class EquationSystem:
    """A finite system ``x_i = f_i(x_1..x_n, p_1..p_m)`` of monotone equations."""

    def __init__(self, equations: Mapping[VarName, BoolExpr]) -> None:
        self._eqs: Dict[VarName, BoolExpr] = dict(equations)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._eqs)

    def __contains__(self, name: VarName) -> bool:
        return name in self._eqs

    def equation(self, name: VarName) -> BoolExpr:
        """Right-hand side of variable ``name``."""
        return self._eqs[name]

    def variables(self) -> Set[VarName]:
        """The defined (internal) variables."""
        return set(self._eqs)

    def external_parameters(self) -> Set[VarName]:
        """Free variables mentioned by some equation but not defined by the system."""
        mentioned: Set[VarName] = set()
        for expr in self._eqs.values():
            mentioned |= expr.variables()
        return mentioned - set(self._eqs)

    def as_dict(self) -> Dict[VarName, BoolExpr]:
        """A copy of the equations."""
        return dict(self._eqs)

    def __repr__(self) -> str:
        return f"EquationSystem(n_equations={len(self._eqs)}, n_external={len(self.external_parameters())})"

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def solve(self, externals: Mapping[VarName, bool] | None = None) -> Dict[VarName, bool]:
        """Greatest fixpoint under a total valuation of the external parameters.

        Kleene iteration from all-true; monotonicity guarantees convergence in
        at most ``len(self)`` rounds.
        """
        externals = dict(externals or {})
        missing = self.external_parameters() - set(externals)
        if missing:
            raise ReproError(f"unbound external parameters: {sorted(map(repr, missing))}")
        value: Dict[VarName, bool] = {name: True for name in self._eqs}
        changed = True
        while changed:
            changed = False
            env = {**externals, **value}
            for name, expr in self._eqs.items():
                if value[name] and not expr.evaluate(env):
                    value[name] = False
                    changed = True
        return value

    def solve_acyclic(self, externals: Mapping[VarName, bool] | None = None) -> Dict[VarName, bool]:
        """Solve a system whose internal dependency graph is acyclic.

        Processes variables in dependency order (children first); each
        equation is evaluated exactly once -- the linear-time regime dGPMt
        relies on for trees (Section 5.2).  Raises :class:`ReproError` if a
        dependency cycle is found.
        """
        externals = dict(externals or {})
        value: Dict[VarName, bool] = {}
        state: Dict[VarName, int] = {}  # 0 = visiting, 1 = done

        for root in self._eqs:
            if root in state:
                continue
            stack = [(root, False)]
            while stack:
                name, expanded = stack.pop()
                if expanded:
                    env = {**externals, **value}
                    value[name] = self._eqs[name].evaluate(env)
                    state[name] = 1
                    continue
                if state.get(name) == 1:
                    continue
                if state.get(name) == 0:
                    raise ReproError(f"dependency cycle through {name!r}")
                state[name] = 0
                stack.append((name, True))
                for dep in self._eqs[name].variables():
                    if dep in self._eqs and state.get(dep) != 1:
                        if state.get(dep) == 0:
                            raise ReproError(f"dependency cycle through {dep!r}")
                        stack.append((dep, False))
        return value

    # ------------------------------------------------------------------
    # symbolic reduction (Example 6 / push operation)
    # ------------------------------------------------------------------
    def reduce(
        self,
        keep: Optional[Iterable[VarName]] = None,
        max_terms: int = 4096,
    ) -> Dict[VarName, BoolExpr]:
        """Project the gfp onto the external parameters, symbolically.

        Returns, for each variable in ``keep`` (default: all), an expression
        over external parameters only, equal to the variable's gfp value as a
        function of those parameters.

        Works SCC by SCC over the internal dependency graph, sinks first:
        downstream components are substituted in fully reduced form, then a
        symbolic Kleene iteration (from all-true, the gfp direction) runs
        within the component -- it stabilizes within ``|SCC|`` rounds, so the
        expensive iteration never spans the whole system.

        Raises :class:`EquationBlowupError` if any intermediate expression
        exceeds ``max_terms`` leaves.
        """
        wanted = set(self._eqs if keep is None else keep)
        unknown = wanted - set(self._eqs)
        if unknown:
            raise ReproError(f"cannot reduce undefined variables: {sorted(map(repr, unknown))}")

        from repro.graph.algorithms import tarjan_scc
        from repro.graph.digraph import DiGraph

        internal = set(self._eqs)
        dep_graph = DiGraph({name: None for name in internal})
        for name, expr in self._eqs.items():
            for dep in expr.variables() & internal:
                dep_graph.add_edge(name, dep)

        reduced: Dict[VarName, BoolExpr] = {}
        for component in tarjan_scc(dep_graph):  # sinks first
            comp = set(component)
            # Substitute fully-reduced downstream variables.
            local: Dict[VarName, BoolExpr] = {}
            for name in component:
                expr = self._eqs[name]
                binding = {
                    v: reduced[v]
                    for v in expr.variables() & internal
                    if v not in comp
                }
                local[name] = expr.substitute(binding)
            # Kleene within the component, from the all-true valuation.
            current = {
                name: expr.substitute({v: TRUE for v in expr.variables() & comp})
                for name, expr in local.items()
            }
            for _ in range(len(component)):
                stable = True
                nxt: Dict[VarName, BoolExpr] = {}
                for name, expr in local.items():
                    binding = {v: current[v] for v in expr.variables() & comp}
                    res = expr.substitute(binding)
                    if res.n_terms > max_terms:
                        raise EquationBlowupError(
                            f"equation for {name!r} grew past {max_terms} terms during reduction"
                        )
                    nxt[name] = res
                    if res != current[name]:
                        stable = False
                current = nxt
                if stable:
                    break
            reduced.update(current)
        return {name: reduced[name] for name in wanted}

    def reduced_system(self, keep: Optional[Iterable[VarName]] = None, max_terms: int = 4096) -> "EquationSystem":
        """:meth:`reduce` packaged back into an :class:`EquationSystem`."""
        return EquationSystem(self.reduce(keep, max_terms))


def falsified_variables(
    before: Mapping[VarName, bool], after: Mapping[VarName, bool]
) -> Set[VarName]:
    """Variables that flipped true -> false between two valuations.

    dGPM only ever ships these (Section 4.1: "once v.rvec[u] is updated from
    true to false, it never changes back").
    """
    return {name for name, val in after.items() if not val and before.get(name, True)}
