"""Monotone Boolean expressions and equation systems.

Algorithm dGPM encodes partial answers as Boolean variables ``X(u, v)``
("data node ``v`` matches query node ``u``") and equations of the form

    ``X(u, v) = AND over query children u' ( OR over data children v' X(u', v') )``

(Section 4.1 of the paper).  This subpackage implements:

* :mod:`~repro.boolean.expr` -- the expression algebra (Var / Const / And /
  Or) with flattening, constant folding, absorption and substitution;
* :mod:`~repro.boolean.system` -- equation systems over those expressions,
  greatest-fixpoint solving, and the *reduction* that rewrites a fragment's
  in-node equations so they mention only virtual-node variables (Example 6);
  the same machinery solves dGPMt's tree systems bottom-up (Section 5.2).
"""

from repro.boolean.expr import (
    FALSE,
    TRUE,
    And,
    BoolExpr,
    Const,
    Or,
    Var,
    conj,
    disj,
)
from repro.boolean.system import EquationSystem

__all__ = [
    "BoolExpr",
    "Var",
    "Const",
    "And",
    "Or",
    "TRUE",
    "FALSE",
    "conj",
    "disj",
    "EquationSystem",
]
