"""Baseline ``dMes``: the paper's Pregel-style vertex-centric comparator.

Section 6 describes it precisely; each superstep, every site (worker):

1. **requests** the Boolean values of all variables of its virtual nodes from
   their owner sites -- whether or not anything changed (this is the
   redundant traffic that makes dMes ship ~2 orders of magnitude more than
   dGPM);
2. receives the replies and **re-evaluates all its local variables** from
   scratch (the vertex-centric model recomputes active vertices; the paper
   grants local evaluation without message passing "for a fair comparison");
3. votes to halt when nothing changed; the coordinator broadcasts STOP once
   every site votes halt in the same superstep.

One superstep spans three engine rounds (request, reply, evaluate+vote), and
falsifications travel one site-hop per superstep, so PT grows with both the
superstep count and the per-superstep full re-evaluation.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set, Tuple

from repro.core.config import DgpmConfig
from repro.core.depgraph import DependencyGraphs
from repro.core.dgpm import assemble_result
from repro.core.state import LocalEvalState, VarKey
from repro.graph.pattern import Pattern
from repro.partition.fragmentation import Fragmentation
from repro.runtime.engine import SyncEngine, TickResult
from repro.runtime.messages import COORDINATOR, Message, MessageKind
from repro.runtime.metrics import RunResult
from repro.runtime.network import Network


class DmesSiteProgram:
    """Per-site half of dMes."""

    def __init__(
        self,
        fid: int,
        fragmentation: Fragmentation,
        query: Pattern,
        deps: DependencyGraphs,
        config: DgpmConfig,
    ) -> None:
        self.fid = fid
        self.fragment = fragmentation[fid]
        self.query = query
        self.deps = deps
        self.cost = config.cost
        self.config = config
        self.state = LocalEvalState(self.fragment, query)
        self.state.run_initial()
        self.known_false_virtual: Set[VarKey] = set()
        self.stopped = False
        self.supersteps = 0
        #: all label-compatible virtual variables (requested every superstep)
        self.virtual_vars: List[Tuple[VarKey, int]] = []
        graph = self.fragment.graph
        for v in self.fragment.virtual_nodes:
            owner = self.deps.owner_site(self.fid, v)
            for u in query.nodes():
                if query.label(u) == graph.label(v):
                    self.virtual_vars.append(((u, v), owner))

    # ------------------------------------------------------------------
    def _request_messages(self) -> List[Message]:
        # Vertex-centric fidelity: each virtual node's variables are requested
        # by "its" vertex, one message per variable -- re-sent every superstep
        # whether or not anything changed.  This is dMes's hallmark overhead.
        out = []
        for var, owner in self.virtual_vars:
            if var not in self.known_false_virtual:
                out.append(
                    Message(
                        src=self.fid, dst=owner, kind=MessageKind.VAR_REQUEST,
                        payload=[var],
                        size_bytes=self.cost.var_batch_bytes(1),
                    )
                )
        return out

    def _vote(self, changed: bool) -> Message:
        return Message(
            src=self.fid, dst=COORDINATOR, kind=MessageKind.CONTROL,
            payload=("vote", self.fid, changed),
            size_bytes=self.cost.control_flag_bytes,
        )

    # ------------------------------------------------------------------
    def on_start(self) -> TickResult:
        # Superstep 1 begins: request the values of every virtual variable.
        self.supersteps = 1
        messages = self._request_messages()
        messages.append(self._vote(True))
        return TickResult(messages=messages, halted=False)

    def on_tick(self, round_no: int, inbox: List[Message]) -> TickResult:
        """Lockstep supersteps: even rounds evaluate+vote+request, odd answer.

        Every site votes every superstep (even with nothing to report), so
        the coordinator can detect global quiescence.
        """
        if self.stopped:
            # Still answer stragglers' requests after stopping.
            return TickResult(messages=self._answer_requests(inbox), halted=True)

        saw_stop = any(
            m.kind == MessageKind.CONTROL and m.payload == "stop" for m in inbox
        )
        if saw_stop:
            self.stopped = True
            return TickResult(messages=self._answer_requests(inbox), halted=True)

        if round_no % 2 == 1:
            # Reply leg of the superstep.
            return TickResult(messages=self._answer_requests(inbox), halted=False)

        # Evaluation leg: apply received values, recompute all local variables.
        received: Dict[VarKey, bool] = {}
        for message in inbox:
            if message.kind == MessageKind.VAR_VALUES:
                received.update(message.payload)
        newly_false = [var for var, value in received.items() if not value]
        self.known_false_virtual.update(newly_false)
        before = {u: set(vs) for u, vs in self.state.local_matches().items()}
        self.state = LocalEvalState(
            self.fragment, self.query, known_false_virtual=self.known_false_virtual
        )
        self.state.run_initial()
        changed = self.state.local_matches() != before

        self.supersteps += 1
        messages = self._answer_requests(inbox) + self._request_messages()
        messages.append(self._vote(changed))
        return TickResult(messages=messages, halted=False)

    def _answer_requests(self, inbox: List[Message]) -> List[Message]:
        # One reply per request, mirroring the per-vertex request granularity.
        out = []
        for message in inbox:
            if message.kind != MessageKind.VAR_REQUEST:
                continue
            values = {
                (u, v): self.state.is_candidate(u, v) for (u, v) in message.payload
            }
            out.append(
                Message(
                    src=self.fid, dst=message.src, kind=MessageKind.VAR_VALUES,
                    payload=values,
                    size_bytes=self.cost.var_batch_bytes(len(values)),
                )
            )
        return out

    def collect(self) -> Message:
        matches = self.state.local_matches()
        payload = matches
        size = self.cost.var_batch_bytes(sum(len(vs) for vs in matches.values()))
        return Message(
            src=self.fid, dst=COORDINATOR, kind=MessageKind.RESULT,
            payload=payload, size_bytes=size,
        )


class _DmesCoordinator:
    """Counts votes; broadcasts STOP when a full superstep reports no change."""

    def __init__(self, n_sites: int, cost) -> None:
        self.n_sites = n_sites
        self.cost = cost
        self.votes: Dict[int, bool] = {}
        self.stopped = False

    def __call__(self, messages: List[Message]) -> List[Message]:
        if self.stopped:
            return []
        for message in messages:
            if message.kind == MessageKind.CONTROL and message.payload[0] == "vote":
                _, fid, changed = message.payload
                self.votes[fid] = changed
        if len(self.votes) == self.n_sites and not any(self.votes.values()):
            self.stopped = True
            return [
                Message(
                    src=COORDINATOR, dst=fid, kind=MessageKind.CONTROL,
                    payload="stop", size_bytes=self.cost.control_flag_bytes,
                )
                for fid in range(self.n_sites)
            ]
        return []


def execute_dmes(
    query: Pattern,
    fragmentation: Fragmentation,
    config: Optional[DgpmConfig] = None,
    deps: Optional[DependencyGraphs] = None,
) -> RunResult:
    """One dMes evaluation; ``deps`` may be a session's cached structures."""
    config = config or DgpmConfig()
    cost = config.cost
    start = time.perf_counter()
    network = Network(cost)
    if deps is None:
        deps = DependencyGraphs(fragmentation)

    for frag in fragmentation:
        network.send(
            Message(
                src=COORDINATOR, dst=frag.fid, kind=MessageKind.QUERY, payload=query,
                size_bytes=cost.query_bytes(query.n_nodes, query.n_edges),
            )
        )
    network.deliver()

    programs = {
        frag.fid: DmesSiteProgram(frag.fid, fragmentation, query, deps, config)
        for frag in fragmentation
    }
    coordinator = _DmesCoordinator(fragmentation.n_fragments, cost)
    engine = SyncEngine(programs, network, cost, coordinator_inbox_handler=coordinator)
    engine.run_fixpoint()
    results = engine.collect_results()
    network.deliver()

    assemble_start = time.perf_counter()
    relation = assemble_result(query, results)
    assemble_time = time.perf_counter() - assemble_start

    wall = time.perf_counter() - start
    metrics = engine.metrics(
        "dMes",
        wall_seconds=wall,
        extra_compute=assemble_time,
        supersteps=max(p.supersteps for p in programs.values()),
    )
    return RunResult(relation=relation, metrics=metrics)


def run_dmes(
    query: Pattern,
    fragmentation: Fragmentation,
    config: Optional[DgpmConfig] = None,
) -> RunResult:
    """Evaluate ``query`` with the vertex-centric dMes baseline.

    One-shot convenience over :class:`~repro.session.SimulationSession`.
    """
    from repro.session import SimulationSession

    return SimulationSession(fragmentation, config=config).run(query, algorithm="dmes")
