"""Baseline ``disHHK`` -- reconstruction of Ma et al., WWW'12 ([25]).

The reproduced paper characterizes [25] as: each site extracts the subgraph
relevant to the query, the subgraphs are "collected to a single site to form
a directly query-able graph", and matches are determined there; its response
time is ``O((|Vq|+|V|)(|Eq|+|E|))`` and data shipment
``O(|G| + 4|Vf| + |F||Q|)`` -- both functions of the whole of ``G``
(Table 1).  Our reconstruction keeps exactly those characteristics:

1. every site extracts its *label-relevant* subgraph: nodes whose label some
   query node mentions, plus all stored edges among them ([25]'s shipped
   "subgraphs" -- the ``O(|G|)`` term of its DS bound);
2. each site ships that subgraph to the coordinator;
3. the coordinator assembles the union graph and finishes with centralized
   HHK simulation restricted to it.

Correct because nodes with labels outside the query alphabet can neither
match a query node nor witness a child condition, so dropping them preserves
the maximum simulation; everything else reaches the coordinator.
"""

from __future__ import annotations

import time
from typing import Optional, Set

from repro.core.config import DgpmConfig
from repro.graph.digraph import DiGraph, Node
from repro.graph.pattern import Pattern
from repro.partition.fragmentation import Fragmentation
from repro.runtime.messages import COORDINATOR, Message, MessageKind
from repro.runtime.metrics import RunMetrics, RunResult
from repro.runtime.network import Network
from repro.simulation import simulation


def execute_dishhk(
    query: Pattern,
    fragmentation: Fragmentation,
    config: Optional[DgpmConfig] = None,
) -> RunResult:
    """One disHHK evaluation: per-site pruning, then ship-and-assemble."""
    config = config or DgpmConfig()
    cost = config.cost
    start = time.perf_counter()
    network = Network(cost)

    # Query broadcast.
    for frag in fragmentation:
        network.send(
            Message(
                src=COORDINATOR, dst=frag.fid, kind=MessageKind.QUERY, payload=query,
                size_bytes=cost.query_bytes(query.n_nodes, query.n_edges),
            )
        )
    network.deliver()

    # Phase 1: parallel local candidate extraction; PT takes the slowest
    # site.  [25] ships the label-relevant subgraph (its DS bound has an
    # |G| term), so the local pass is label filtering, not refinement.
    query_labels = query.label_alphabet()
    slowest_local = 0.0
    shipped_subgraphs = []
    for frag in fragmentation:
        t0 = time.perf_counter()
        keep: Set[Node] = {
            v for v in frag.graph.nodes() if frag.graph.label(v) in query_labels
        }
        sub_nodes = {v: frag.graph.label(v) for v in keep}
        sub_edges = [
            (a, b) for a, b in frag.graph.edges() if a in keep and b in keep
        ]
        slowest_local = max(slowest_local, time.perf_counter() - t0)
        network.send(
            Message(
                src=frag.fid,
                dst=COORDINATOR,
                kind=MessageKind.SUBGRAPH,
                payload=(sub_nodes, sub_edges),
                size_bytes=cost.subgraph_bytes(len(sub_nodes), len(sub_edges)),
            )
        )
        shipped_subgraphs.append((sub_nodes, sub_edges))
    network.deliver()

    # Phase 2: assemble and finish centrally.
    central_start = time.perf_counter()
    union = DiGraph()
    for sub_nodes, _ in shipped_subgraphs:
        for node, label in sub_nodes.items():
            union.add_node(node, label)
    for _, sub_edges in shipped_subgraphs:
        for a, b in sub_edges:
            union.add_edge(a, b)
    relation = simulation(query, union)
    central_time = time.perf_counter() - central_start

    wall = time.perf_counter() - start
    link_time = 2 * cost.latency_s + cost.transfer_seconds(network.data_bytes)
    metrics = RunMetrics(
        algorithm="disHHK",
        pt_seconds=slowest_local + link_time + central_time,
        wall_seconds=wall,
        ds_bytes=network.data_bytes,
        n_messages=network.data_message_count,
        n_rounds=2,
        ds_breakdown=network.breakdown(),
        extras={"central_seconds": central_time, "slowest_local": slowest_local},
    )
    return RunResult(relation=relation, metrics=metrics)


def run_dishhk(
    query: Pattern,
    fragmentation: Fragmentation,
    config: Optional[DgpmConfig] = None,
) -> RunResult:
    """Candidate pruning per site, then ship-and-assemble at the coordinator.

    One-shot convenience over :class:`~repro.session.SimulationSession`.
    """
    from repro.session import SimulationSession

    return SimulationSession(fragmentation, config=config).run(query, algorithm="dishhk")
