"""The paper's comparison baselines (Section 6, "Algorithms").

* :func:`~repro.baselines.match_central.run_match` -- ``Match``: ship every
  fragment to one site, evaluate centrally (the naive algorithm of
  Section 3.1).  DS ~ ``|G|``; PT dominated by the single-site evaluation.
* :func:`~repro.baselines.dishhk.run_dishhk` -- ``disHHK`` [Ma et al.,
  WWW'12]: per-site candidate pruning, then ship candidate subgraphs to the
  coordinator for a centralized finish.  Bounds are functions of ``|G|``
  (Table 1), reconstructed per DESIGN.md §2.
* :func:`~repro.baselines.dmes.run_dmes` -- ``dMes``: the authors' own
  vertex-centric / Pregel-style comparator: per superstep, every site
  *requests and receives* the value of each still-interesting virtual
  variable, then re-evaluates locally and votes to halt.
"""

from repro.baselines.match_central import run_match
from repro.baselines.dishhk import run_dishhk
from repro.baselines.dmes import run_dmes

__all__ = ["run_match", "run_dishhk", "run_dmes"]
