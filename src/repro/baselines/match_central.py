"""Baseline ``Match``: ship everything to one site, evaluate centrally.

This is the naive algorithm of Section 3.1: data shipment is essentially
``|G|`` and response time at least the full centralized evaluation
``O((|Vq|+|V|)(|Eq|+|E|))`` -- the cost the distributed algorithms exist to
avoid.  The paper drops it from Exp-3 because a single site runs out of
memory; at our scales it runs, slowly, exactly as the plots show.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.core.config import DgpmConfig
from repro.graph.pattern import Pattern
from repro.partition.fragmentation import Fragmentation
from repro.runtime.messages import COORDINATOR, Message, MessageKind
from repro.runtime.metrics import RunMetrics, RunResult
from repro.runtime.network import Network
from repro.simulation import simulation


def execute_match(
    query: Pattern,
    fragmentation: Fragmentation,
    config: Optional[DgpmConfig] = None,
) -> RunResult:
    """One Match evaluation: ship everything, evaluate centrally."""
    config = config or DgpmConfig()
    cost = config.cost
    start = time.perf_counter()
    network = Network(cost)

    # Every site serializes its whole fragment to the coordinator.
    ship_compute = 0.0
    for frag in fragmentation:
        network.send(
            Message(
                src=frag.fid,
                dst=COORDINATOR,
                kind=MessageKind.SUBGRAPH,
                payload=frag,
                size_bytes=frag.local_serialized_bytes(cost),
            )
        )
    network.deliver()

    central_start = time.perf_counter()
    relation = simulation(query, fragmentation.graph)
    central_time = time.perf_counter() - central_start

    wall = time.perf_counter() - start
    link_time = cost.latency_s + cost.transfer_seconds(network.data_bytes)
    metrics = RunMetrics(
        algorithm="Match",
        pt_seconds=ship_compute + link_time + central_time,
        wall_seconds=wall,
        ds_bytes=network.data_bytes,
        n_messages=network.data_message_count,
        n_rounds=1,
        ds_breakdown=network.breakdown(),
        extras={"central_seconds": central_time},
    )
    return RunResult(relation=relation, metrics=metrics)


def run_match(
    query: Pattern,
    fragmentation: Fragmentation,
    config: Optional[DgpmConfig] = None,
) -> RunResult:
    """Ship all fragments to the coordinator; run centralized simulation.

    One-shot convenience over :class:`~repro.session.SimulationSession`.
    """
    from repro.session import SimulationSession

    return SimulationSession(fragmentation, config=config).run(query, algorithm="match")
