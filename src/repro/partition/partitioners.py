"""Partitioning strategies for the experiments.

The paper randomly partitions ``G`` into fragments of controlled average size
and then *swaps nodes between fragments* to drive ``|Vf|/|V|`` (or
``|Ef|/|E|``) to a target ratio, citing the Ja-be-Ja partitioner [27]
(Section 6, "Graph fragmentation").  We implement:

* :func:`hash_partition` / :func:`random_partition` -- baseline assignments;
* :func:`balanced_bfs_partition` -- grows connected, balanced regions, which
  yields *low* boundary ratios (a good starting point for refinement);
* :func:`refine_to_vf_ratio` -- greedy swap refinement toward a target
  ``|Vf|/|V|`` from either direction (moving a boundary node next to its
  neighbours lowers the ratio; tearing an interior node away raises it);
* :func:`min_cut_partition` -- the cost-model partitioner: a
  :func:`balanced_bfs_partition` seed refined by KL-style greedy boundary
  moves that monotonically reduce (weighted) crossing-edge weight under a
  balance constraint -- the paper's PT/DS costs (Section 6, Fig 6) scale
  with ``|Fi.O| + |Fi.I|``, which this directly minimizes;
* :func:`traffic_node_weights` -- turns a per-fragment traffic snapshot
  (live :class:`~repro.session.session.SessionStats` counters, or any
  fid -> count mapping) into the node weights :func:`min_cut_partition`
  consumes, so observed hot fragments repel cuts and spread out;
* :func:`tree_partition` -- splits a rooted tree into connected subtrees,
  the precondition of dGPMt (Section 5.2).

All functions are deterministic given the ``seed``; every randomized one
alternatively accepts a caller-owned seeded ``rng`` (one stream shared
across many calls, like the workload generators).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, List, Mapping, Optional, Set

from repro.errors import FragmentationError
from repro.graph import algorithms
from repro.graph.digraph import DiGraph, Node
from repro.partition.fragmentation import Fragmentation, fragment_graph


def hash_partition(graph: DiGraph, n_fragments: int, seed: int = 0) -> Fragmentation:
    """Assign nodes to fragments pseudo-randomly but deterministically.

    Every fragment is guaranteed non-empty (requires ``|V| >= n_fragments``).
    """
    nodes = sorted(graph.nodes(), key=repr)
    if len(nodes) < n_fragments:
        raise FragmentationError("fewer nodes than fragments")
    rng = random.Random(seed)
    shuffled = nodes[:]
    rng.shuffle(shuffled)
    assignment: Dict[Node, int] = {}
    for i, node in enumerate(shuffled):
        # First n_fragments nodes seed one fragment each; rest are random.
        assignment[node] = i if i < n_fragments else rng.randrange(n_fragments)
    return fragment_graph(graph, assignment)


def random_partition(graph: DiGraph, n_fragments: int, seed: int = 0) -> Fragmentation:
    """Balanced random partition: equal-size blocks of a shuffled node list.

    This is the paper's "randomly partitioned ... controlled by the average
    size of the fragments": with ``n`` fragments, every block has
    ``|V|/n`` nodes (±1), i.e. ``size(F) = |G|/|F|``.
    """
    nodes = sorted(graph.nodes(), key=repr)
    if len(nodes) < n_fragments:
        raise FragmentationError("fewer nodes than fragments")
    rng = random.Random(seed)
    rng.shuffle(nodes)
    assignment = {node: i % n_fragments for i, node in enumerate(nodes)}
    return fragment_graph(graph, assignment)


def balanced_bfs_partition(graph: DiGraph, n_fragments: int, seed: int = 0) -> Fragmentation:
    """Grow ``n`` balanced regions by round-robin undirected BFS.

    Produces mostly-connected fragments with far fewer crossing edges than a
    random partition -- the realistic regime for geo-distributed social graphs.
    """
    nodes = sorted(graph.nodes(), key=repr)
    if len(nodes) < n_fragments:
        raise FragmentationError("fewer nodes than fragments")
    rng = random.Random(seed)
    seeds = rng.sample(nodes, n_fragments)
    assignment: Dict[Node, int] = {}
    frontiers: List[deque] = []
    capacity = len(nodes) // n_fragments + 1
    counts = [0] * n_fragments
    for fid, s in enumerate(seeds):
        assignment[s] = fid
        counts[fid] = 1
        frontiers.append(deque([s]))

    remaining = set(nodes) - set(seeds)
    progress = True
    while remaining and progress:
        progress = False
        for fid in range(n_fragments):
            if counts[fid] >= capacity:
                continue
            frontier = frontiers[fid]
            claimed: Optional[Node] = None
            while frontier and claimed is None:
                base = frontier[0]
                neighbours = list(graph.successors(base)) + list(graph.predecessors(base))
                for nxt in neighbours:
                    if nxt in remaining:
                        claimed = nxt
                        break
                if claimed is None:
                    frontier.popleft()
            if claimed is not None:
                assignment[claimed] = fid
                counts[fid] += 1
                remaining.discard(claimed)
                frontier.append(claimed)
                progress = True
    # Disconnected leftovers: round-robin to the emptiest fragments.
    for node in sorted(remaining, key=repr):
        fid = counts.index(min(counts))
        assignment[node] = fid
        counts[fid] += 1
    return fragment_graph(graph, assignment)


class _BoundaryTracker:
    """Incremental ``|Vf|`` maintenance under single-node moves.

    ``cross_in[v]`` counts predecessors of ``v`` owned by a different fragment;
    ``v ∈ Vf`` iff that count is positive.  Moving one node updates the counts
    of its neighbours in ``O(deg)``.
    """

    def __init__(self, graph: DiGraph, assignment: Dict[Node, int]) -> None:
        self.graph = graph
        self.assignment = assignment
        self.cross_in: Dict[Node, int] = {v: 0 for v in graph.nodes()}
        for u, v in graph.edges():
            if assignment[u] != assignment[v]:
                self.cross_in[v] += 1
        self.n_virtual = sum(1 for c in self.cross_in.values() if c > 0)

    def _bump(self, node: Node, delta: int) -> None:
        before = self.cross_in[node]
        after = before + delta
        self.cross_in[node] = after
        if before == 0 and after > 0:
            self.n_virtual += 1
        elif before > 0 and after == 0:
            self.n_virtual -= 1

    def move(self, node: Node, new_fid: int) -> None:
        """Reassign ``node`` and update all affected cross-in counts."""
        old_fid = self.assignment[node]
        if old_fid == new_fid:
            return
        for succ in self.graph.successors(node):
            was_cross = self.assignment[succ] != old_fid
            now_cross = self.assignment[succ] != new_fid
            if succ == node:
                continue
            if was_cross and not now_cross:
                self._bump(succ, -1)
            elif now_cross and not was_cross:
                self._bump(succ, +1)
        self.assignment[node] = new_fid
        new_cross_in = sum(
            1 for p in self.graph.predecessors(node) if self.assignment[p] != new_fid
        )
        delta = new_cross_in - self.cross_in[node]
        if delta:
            self._bump(node, delta)

    @property
    def ratio(self) -> float:
        return self.n_virtual / max(1, self.graph.n_nodes)


def refine_to_vf_ratio(
    fragmentation: Fragmentation,
    target_ratio: float,
    seed: int = 0,
    max_passes: int = 8,
    tolerance: float = 0.02,
    rng: Optional[random.Random] = None,
) -> Fragmentation:
    """Move nodes between fragments until ``|Vf|/|V|`` is near ``target_ratio``.

    Emulates the paper's setup knob (Section 6): iteratively relocate nodes,
    pushing the boundary ratio toward the target -- re-uniting a boundary node
    with the fragment holding most of its neighbours lowers the ratio; exiling
    a node to a fragment with none of its neighbours raises it.  Fragment
    balance stays within a factor of two of the average.  Lowering a cut is
    only effective on locality-structured graphs (the realistic case; the
    paper relies on Ja-be-Ja [27] for the same reason).

    Pass ``rng`` to draw from a caller-owned generator (one stream shared
    across many calls, like the workload generators); otherwise a fresh
    ``random.Random(seed)`` makes the call a pure function of its arguments.
    """
    graph = fragmentation.graph
    n = fragmentation.n_fragments
    assignment = {node: fragmentation.owner(node) for node in graph.nodes()}
    rng = rng if rng is not None else random.Random(seed)
    avg = graph.n_nodes / n
    counts = [0] * n
    for fid in assignment.values():
        counts[fid] += 1
    tracker = _BoundaryTracker(graph, assignment)
    nodes = sorted(graph.nodes(), key=repr)

    for _ in range(max_passes):
        if abs(tracker.ratio - target_ratio) <= tolerance:
            break
        rng.shuffle(nodes)
        moved = 0
        for node in nodes:
            gap = tracker.ratio - target_ratio
            if abs(gap) <= tolerance:
                break
            cur = assignment[node]
            if counts[cur] <= 1:
                continue
            neigh = [
                assignment[o]
                for o in list(graph.successors(node)) + list(graph.predecessors(node))
            ]
            if gap < 0:  # need more boundary: exile
                foreign = [f for f in range(n) if f != cur and f not in neigh]
                if not foreign:
                    continue
                new_fid = rng.choice(foreign)
            else:  # need less boundary: re-unite with the majority fragment
                if not neigh:
                    continue
                new_fid = max(set(neigh), key=neigh.count)
                if new_fid == cur:
                    continue
            if counts[new_fid] + 1 > 2 * avg:
                continue
            before = tracker.n_virtual
            tracker.move(node, new_fid)
            counts[cur] -= 1
            counts[new_fid] += 1
            if gap > 0 and tracker.n_virtual > before:
                # The "lowering" move backfired; undo it.
                tracker.move(node, cur)
                counts[cur] += 1
                counts[new_fid] -= 1
            else:
                moved += 1
        if moved == 0:
            break
    return fragment_graph(graph, assignment)


def traffic_node_weights(
    fragmentation: Fragmentation, traffic
) -> Dict[Node, float]:
    """Spread per-fragment traffic counters over each fragment's local nodes.

    ``traffic`` is either a plain ``{fid: count}`` mapping or a live
    :class:`~repro.session.session.SessionStats`-like object (anything with
    ``fragment_queries`` / ``fragment_mutations`` mappings; queries and
    mutations are summed).  Every node gets weight
    ``1 + fragment_traffic / |Vi|``: a node in an untouched fragment weighs
    1, nodes of hot fragments weigh proportionally more, so
    :func:`min_cut_partition` both avoids cutting through hot regions and
    spreads them across fragments under its balance constraint.  The
    overflow key ``-1`` (counter-bound spill) is ignored -- it carries no
    placement information.
    """
    queries = getattr(traffic, "fragment_queries", None)
    if queries is not None:
        merged: Dict[int, float] = dict(queries)
        for fid, count in getattr(traffic, "fragment_mutations", {}).items():
            merged[fid] = merged.get(fid, 0) + count
        traffic = merged
    weights: Dict[Node, float] = {}
    for frag in fragmentation:
        load = traffic.get(frag.fid, 0)
        per_node = load / max(1, frag.n_local_nodes)
        for node in frag.local_nodes:
            weights[node] = 1.0 + per_node
    return weights


def min_cut_partition(
    graph: DiGraph,
    n_fragments: int,
    seed: int = 0,
    rng: Optional[random.Random] = None,
    balance: float = 1.25,
    max_passes: int = 8,
    node_weights: Optional[Mapping[Node, float]] = None,
) -> Fragmentation:
    """Cut-minimizing partition: a BFS seed plus KL-style local search.

    Starts from :func:`balanced_bfs_partition` and then runs greedy
    boundary-node moves in the style of Kernighan-Lin / Ja-be-Ja [27]: each
    pass visits the boundary nodes in shuffled order and relocates a node to
    the neighbouring fragment that maximally reduces the total weight of
    crossing edges, subject to a balance constraint (no fragment's weighted
    node mass may exceed ``balance`` times the average) and to every
    fragment staying non-empty.  Only strictly improving moves are taken,
    so the final cut is never worse than the BFS seed's.

    ``node_weights`` (default: uniform) drives both the edge weights (an
    edge weighs the mean of its endpoint weights) and the balance masses;
    pass :func:`traffic_node_weights` of a live ``SessionStats`` snapshot
    to make observed query/mutation traffic repel the cut -- hot fragments
    spread out and their internal edges stop being severed.

    ``rng`` overrides ``seed`` as in :func:`refine_to_vf_ratio`.
    """
    if balance <= 1.0:
        raise FragmentationError("balance must be > 1.0 (1.0 leaves no slack to move)")
    rng = rng if rng is not None else random.Random(seed)
    seed_frag = balanced_bfs_partition(graph, n_fragments, seed=rng.randrange(2**31))
    assignment = {node: seed_frag.owner(node) for node in graph.nodes()}

    weights: Dict[Node, float] = (
        {node: 1.0 for node in graph.nodes()}
        if node_weights is None
        else {node: float(node_weights.get(node, 1.0)) for node in graph.nodes()}
    )
    mass = [0.0] * n_fragments
    counts = [0] * n_fragments
    for node, fid in assignment.items():
        mass[fid] += weights[node]
        counts[fid] += 1
    cap = balance * sum(mass) / n_fragments

    def edge_weight(u: Node, v: Node) -> float:
        return (weights[u] + weights[v]) / 2.0

    nodes = sorted(graph.nodes(), key=repr)
    for _ in range(max_passes):
        rng.shuffle(nodes)
        moved = 0
        for node in nodes:
            cur = assignment[node]
            if counts[cur] <= 1:
                continue
            # Weight of edges (either direction) between `node` and each
            # adjacent fragment; self-loops never cross, so they are skipped.
            adjacent: Dict[int, float] = {}
            for other in graph.successors(node):
                if other != node:
                    fid = assignment[other]
                    adjacent[fid] = adjacent.get(fid, 0.0) + edge_weight(node, other)
            for other in graph.predecessors(node):
                if other != node:
                    fid = assignment[other]
                    adjacent[fid] = adjacent.get(fid, 0.0) + edge_weight(other, node)
            internal = adjacent.get(cur, 0.0)
            best_fid, best_external = cur, internal
            for fid in sorted(adjacent):
                if fid == cur:
                    continue
                if mass[fid] + weights[node] > cap:
                    continue
                external = adjacent[fid]
                if external > best_external:
                    best_fid, best_external = fid, external
            if best_fid == cur:
                continue
            # Moving strictly reduces the weighted cut by external - internal.
            assignment[node] = best_fid
            mass[cur] -= weights[node]
            mass[best_fid] += weights[node]
            counts[cur] -= 1
            counts[best_fid] += 1
            moved += 1
        if moved == 0:
            break
    return fragment_graph(graph, assignment)


def tree_partition(tree: DiGraph, n_fragments: int, seed: int = 0) -> Fragmentation:
    """Split a rooted directed tree into ``n`` connected subtrees.

    Repeatedly detaches the subtree rooted at a node whose subtree size is
    closest to the ideal block size, until ``n`` blocks exist.  The result
    satisfies dGPMt's precondition: every fragment is a connected subtree,
    hence has at most one in-node (its root).
    """
    root = algorithms.tree_root(tree)
    if n_fragments < 1:
        raise FragmentationError("need at least one fragment")
    if tree.n_nodes < n_fragments:
        raise FragmentationError("fewer nodes than fragments")

    # Subtree sizes via reverse BFS order.
    order: List[Node] = []
    queue = deque([root])
    while queue:
        node = queue.popleft()
        order.append(node)
        queue.extend(tree.successors(node))
    subtree_size: Dict[Node, int] = {}
    for node in reversed(order):
        subtree_size[node] = 1 + sum(subtree_size[c] for c in tree.successors(node))

    detached_roots: Set[Node] = {root}
    block_of: Dict[Node, Node] = {}

    def block_root(node: Node) -> Node:
        cur = node
        while cur not in detached_roots:
            cur = tree.predecessors(cur)[0]
        return cur

    while len(detached_roots) < n_fragments:
        ideal = tree.n_nodes / n_fragments
        # Candidates: non-detached nodes; prefer subtree size near ideal.
        candidates = [v for v in order if v not in detached_roots]
        candidates.sort(key=lambda v: (abs(subtree_size[v] - ideal), repr(v)))
        pick = candidates[0]
        detached_roots.add(pick)
        # Shrink ancestors' effective sizes.
        cur = pick
        while cur != root and cur in tree._pred and tree.predecessors(cur):
            cur = tree.predecessors(cur)[0]
            subtree_size[cur] -= subtree_size[pick]
            if cur in detached_roots:
                break

    roots_sorted = sorted(detached_roots, key=repr)
    fid_of_root = {r: i for i, r in enumerate(roots_sorted)}
    assignment: Dict[Node, int] = {}
    for node in order:
        assignment[node] = fid_of_root[block_root(node)]
    return fragment_graph(tree, assignment)
