"""Partitioning strategies for the experiments.

The paper randomly partitions ``G`` into fragments of controlled average size
and then *swaps nodes between fragments* to drive ``|Vf|/|V|`` (or
``|Ef|/|E|``) to a target ratio, citing the Ja-be-Ja partitioner [27]
(Section 6, "Graph fragmentation").  We implement:

* :func:`hash_partition` / :func:`random_partition` -- baseline assignments;
* :func:`balanced_bfs_partition` -- grows connected, balanced regions, which
  yields *low* boundary ratios (a good starting point for refinement);
* :func:`refine_to_vf_ratio` -- greedy swap refinement toward a target
  ``|Vf|/|V|`` from either direction (moving a boundary node next to its
  neighbours lowers the ratio; tearing an interior node away raises it);
* :func:`tree_partition` -- splits a rooted tree into connected subtrees,
  the precondition of dGPMt (Section 5.2).

All functions are deterministic given the ``seed``.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, List, Optional, Set

from repro.errors import FragmentationError
from repro.graph import algorithms
from repro.graph.digraph import DiGraph, Node
from repro.partition.fragmentation import Fragmentation, fragment_graph


def hash_partition(graph: DiGraph, n_fragments: int, seed: int = 0) -> Fragmentation:
    """Assign nodes to fragments pseudo-randomly but deterministically.

    Every fragment is guaranteed non-empty (requires ``|V| >= n_fragments``).
    """
    nodes = sorted(graph.nodes(), key=repr)
    if len(nodes) < n_fragments:
        raise FragmentationError("fewer nodes than fragments")
    rng = random.Random(seed)
    shuffled = nodes[:]
    rng.shuffle(shuffled)
    assignment: Dict[Node, int] = {}
    for i, node in enumerate(shuffled):
        # First n_fragments nodes seed one fragment each; rest are random.
        assignment[node] = i if i < n_fragments else rng.randrange(n_fragments)
    return fragment_graph(graph, assignment)


def random_partition(graph: DiGraph, n_fragments: int, seed: int = 0) -> Fragmentation:
    """Balanced random partition: equal-size blocks of a shuffled node list.

    This is the paper's "randomly partitioned ... controlled by the average
    size of the fragments": with ``n`` fragments, every block has
    ``|V|/n`` nodes (±1), i.e. ``size(F) = |G|/|F|``.
    """
    nodes = sorted(graph.nodes(), key=repr)
    if len(nodes) < n_fragments:
        raise FragmentationError("fewer nodes than fragments")
    rng = random.Random(seed)
    rng.shuffle(nodes)
    assignment = {node: i % n_fragments for i, node in enumerate(nodes)}
    return fragment_graph(graph, assignment)


def balanced_bfs_partition(graph: DiGraph, n_fragments: int, seed: int = 0) -> Fragmentation:
    """Grow ``n`` balanced regions by round-robin undirected BFS.

    Produces mostly-connected fragments with far fewer crossing edges than a
    random partition -- the realistic regime for geo-distributed social graphs.
    """
    nodes = sorted(graph.nodes(), key=repr)
    if len(nodes) < n_fragments:
        raise FragmentationError("fewer nodes than fragments")
    rng = random.Random(seed)
    seeds = rng.sample(nodes, n_fragments)
    assignment: Dict[Node, int] = {}
    frontiers: List[deque] = []
    capacity = len(nodes) // n_fragments + 1
    counts = [0] * n_fragments
    for fid, s in enumerate(seeds):
        assignment[s] = fid
        counts[fid] = 1
        frontiers.append(deque([s]))

    remaining = set(nodes) - set(seeds)
    progress = True
    while remaining and progress:
        progress = False
        for fid in range(n_fragments):
            if counts[fid] >= capacity:
                continue
            frontier = frontiers[fid]
            claimed: Optional[Node] = None
            while frontier and claimed is None:
                base = frontier[0]
                neighbours = list(graph.successors(base)) + list(graph.predecessors(base))
                for nxt in neighbours:
                    if nxt in remaining:
                        claimed = nxt
                        break
                if claimed is None:
                    frontier.popleft()
            if claimed is not None:
                assignment[claimed] = fid
                counts[fid] += 1
                remaining.discard(claimed)
                frontier.append(claimed)
                progress = True
    # Disconnected leftovers: round-robin to the emptiest fragments.
    for node in sorted(remaining, key=repr):
        fid = counts.index(min(counts))
        assignment[node] = fid
        counts[fid] += 1
    return fragment_graph(graph, assignment)


class _BoundaryTracker:
    """Incremental ``|Vf|`` maintenance under single-node moves.

    ``cross_in[v]`` counts predecessors of ``v`` owned by a different fragment;
    ``v ∈ Vf`` iff that count is positive.  Moving one node updates the counts
    of its neighbours in ``O(deg)``.
    """

    def __init__(self, graph: DiGraph, assignment: Dict[Node, int]) -> None:
        self.graph = graph
        self.assignment = assignment
        self.cross_in: Dict[Node, int] = {v: 0 for v in graph.nodes()}
        for u, v in graph.edges():
            if assignment[u] != assignment[v]:
                self.cross_in[v] += 1
        self.n_virtual = sum(1 for c in self.cross_in.values() if c > 0)

    def _bump(self, node: Node, delta: int) -> None:
        before = self.cross_in[node]
        after = before + delta
        self.cross_in[node] = after
        if before == 0 and after > 0:
            self.n_virtual += 1
        elif before > 0 and after == 0:
            self.n_virtual -= 1

    def move(self, node: Node, new_fid: int) -> None:
        """Reassign ``node`` and update all affected cross-in counts."""
        old_fid = self.assignment[node]
        if old_fid == new_fid:
            return
        for succ in self.graph.successors(node):
            was_cross = self.assignment[succ] != old_fid
            now_cross = self.assignment[succ] != new_fid
            if succ == node:
                continue
            if was_cross and not now_cross:
                self._bump(succ, -1)
            elif now_cross and not was_cross:
                self._bump(succ, +1)
        self.assignment[node] = new_fid
        new_cross_in = sum(
            1 for p in self.graph.predecessors(node) if self.assignment[p] != new_fid
        )
        delta = new_cross_in - self.cross_in[node]
        if delta:
            self._bump(node, delta)

    @property
    def ratio(self) -> float:
        return self.n_virtual / max(1, self.graph.n_nodes)


def refine_to_vf_ratio(
    fragmentation: Fragmentation,
    target_ratio: float,
    seed: int = 0,
    max_passes: int = 8,
    tolerance: float = 0.02,
) -> Fragmentation:
    """Move nodes between fragments until ``|Vf|/|V|`` is near ``target_ratio``.

    Emulates the paper's setup knob (Section 6): iteratively relocate nodes,
    pushing the boundary ratio toward the target -- re-uniting a boundary node
    with the fragment holding most of its neighbours lowers the ratio; exiling
    a node to a fragment with none of its neighbours raises it.  Fragment
    balance stays within a factor of two of the average.  Lowering a cut is
    only effective on locality-structured graphs (the realistic case; the
    paper relies on Ja-be-Ja [27] for the same reason).
    """
    graph = fragmentation.graph
    n = fragmentation.n_fragments
    assignment = {node: fragmentation.owner(node) for node in graph.nodes()}
    rng = random.Random(seed)
    avg = graph.n_nodes / n
    counts = [0] * n
    for fid in assignment.values():
        counts[fid] += 1
    tracker = _BoundaryTracker(graph, assignment)
    nodes = sorted(graph.nodes(), key=repr)

    for _ in range(max_passes):
        if abs(tracker.ratio - target_ratio) <= tolerance:
            break
        rng.shuffle(nodes)
        moved = 0
        for node in nodes:
            gap = tracker.ratio - target_ratio
            if abs(gap) <= tolerance:
                break
            cur = assignment[node]
            if counts[cur] <= 1:
                continue
            neigh = [
                assignment[o]
                for o in list(graph.successors(node)) + list(graph.predecessors(node))
            ]
            if gap < 0:  # need more boundary: exile
                foreign = [f for f in range(n) if f != cur and f not in neigh]
                if not foreign:
                    continue
                new_fid = rng.choice(foreign)
            else:  # need less boundary: re-unite with the majority fragment
                if not neigh:
                    continue
                new_fid = max(set(neigh), key=neigh.count)
                if new_fid == cur:
                    continue
            if counts[new_fid] + 1 > 2 * avg:
                continue
            before = tracker.n_virtual
            tracker.move(node, new_fid)
            counts[cur] -= 1
            counts[new_fid] += 1
            if gap > 0 and tracker.n_virtual > before:
                # The "lowering" move backfired; undo it.
                tracker.move(node, cur)
                counts[cur] += 1
                counts[new_fid] -= 1
            else:
                moved += 1
        if moved == 0:
            break
    return fragment_graph(graph, assignment)


def tree_partition(tree: DiGraph, n_fragments: int, seed: int = 0) -> Fragmentation:
    """Split a rooted directed tree into ``n`` connected subtrees.

    Repeatedly detaches the subtree rooted at a node whose subtree size is
    closest to the ideal block size, until ``n`` blocks exist.  The result
    satisfies dGPMt's precondition: every fragment is a connected subtree,
    hence has at most one in-node (its root).
    """
    root = algorithms.tree_root(tree)
    if n_fragments < 1:
        raise FragmentationError("need at least one fragment")
    if tree.n_nodes < n_fragments:
        raise FragmentationError("fewer nodes than fragments")

    # Subtree sizes via reverse BFS order.
    order: List[Node] = []
    queue = deque([root])
    while queue:
        node = queue.popleft()
        order.append(node)
        queue.extend(tree.successors(node))
    subtree_size: Dict[Node, int] = {}
    for node in reversed(order):
        subtree_size[node] = 1 + sum(subtree_size[c] for c in tree.successors(node))

    detached_roots: Set[Node] = {root}
    block_of: Dict[Node, Node] = {}

    def block_root(node: Node) -> Node:
        cur = node
        while cur not in detached_roots:
            cur = tree.predecessors(cur)[0]
        return cur

    while len(detached_roots) < n_fragments:
        ideal = tree.n_nodes / n_fragments
        # Candidates: non-detached nodes; prefer subtree size near ideal.
        candidates = [v for v in order if v not in detached_roots]
        candidates.sort(key=lambda v: (abs(subtree_size[v] - ideal), repr(v)))
        pick = candidates[0]
        detached_roots.add(pick)
        # Shrink ancestors' effective sizes.
        cur = pick
        while cur != root and cur in tree._pred and tree.predecessors(cur):
            cur = tree.predecessors(cur)[0]
            subtree_size[cur] -= subtree_size[pick]
            if cur in detached_roots:
                break

    roots_sorted = sorted(detached_roots, key=repr)
    fid_of_root = {r: i for i, r in enumerate(roots_sorted)}
    assignment: Dict[Node, int] = {}
    for node in order:
        assignment[node] = fid_of_root[block_root(node)]
    return fragment_graph(tree, assignment)
