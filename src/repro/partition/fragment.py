"""A single fragment ``Fi = (Vi ∪ Fi.O, Ei, Li)`` of a distributed graph.

Matches the paper's Section 2.2 definition exactly:

* ``local_nodes`` is ``Vi`` (one block of the partition of ``V``);
* ``virtual_nodes`` is ``Fi.O``: every node ``v'`` of another fragment that
  some local node points to.  The fragment knows a virtual node's *label*
  (social systems expose IRIs/semantic labels of boundary nodes [26, 28]) but
  none of its outgoing edges;
* ``in_nodes`` is ``Fi.I``: local nodes that some other fragment points to --
  exactly the nodes whose match status other sites are waiting on;
* the stored :class:`~repro.graph.digraph.DiGraph` is the subgraph induced by
  ``Vi ∪ Fi.O``, so it contains local edges plus crossing edges out of ``Vi``.

Fragment metadata is *rebuildable in place*: the ``_add_*``/``_drop_*``
helpers patch ``Vi``/``Fi.O``/``Fi.I`` one node at a time so the
fragmentation's mutation API (:meth:`Fragmentation.delete_edge` and friends)
can maintain the Section-2.2 invariants across updates without rebuilding
fragments.  The sets stay exposed as frozensets -- callers outside the
maintenance layer must treat them as immutable snapshots.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from repro.graph.digraph import DiGraph, Node


class Fragment:
    """One fragment of a fragmentation, stored at one site."""

    __slots__ = ("fid", "graph", "local_nodes", "virtual_nodes", "in_nodes", "_virtual_owner")

    def __init__(
        self,
        fid: int,
        graph: DiGraph,
        local_nodes: FrozenSet[Node],
        virtual_nodes: FrozenSet[Node],
        in_nodes: FrozenSet[Node],
        virtual_owner: Dict[Node, int],
    ) -> None:
        self.fid = fid
        self.graph = graph
        self.local_nodes = local_nodes
        self.virtual_nodes = virtual_nodes
        self.in_nodes = in_nodes
        self._virtual_owner = virtual_owner

    # ------------------------------------------------------------------
    @property
    def n_local_nodes(self) -> int:
        """``|Vi|``."""
        return len(self.local_nodes)

    @property
    def n_edges(self) -> int:
        """``|Ei|`` (local edges plus crossing edges out of this fragment)."""
        return self.graph.n_edges

    @property
    def size(self) -> int:
        """``|Fi| = |Vi| + |Ei|`` -- the paper's fragment size measure."""
        return self.n_local_nodes + self.n_edges

    def is_local(self, node: Node) -> bool:
        """True iff ``node`` belongs to ``Vi``."""
        return node in self.local_nodes

    def is_virtual(self, node: Node) -> bool:
        """True iff ``node`` belongs to ``Fi.O``."""
        return node in self.virtual_nodes

    def owner_of_virtual(self, node: Node) -> int:
        """Fragment id that stores virtual node ``node`` locally."""
        return self._virtual_owner[node]

    # ------------------------------------------------------------------
    # in-place metadata maintenance (used by Fragmentation's mutation API;
    # each helper replaces one frozenset so readers never see a half-applied
    # update)
    # ------------------------------------------------------------------
    def _add_local_node(self, node: Node) -> None:
        """Grow ``Vi`` by one node (its graph entry is added by the caller)."""
        self.local_nodes = self.local_nodes | {node}

    def _add_virtual_node(self, node: Node, owner: int) -> None:
        """Record ``node`` as a member of ``Fi.O`` stored at site ``owner``."""
        self.virtual_nodes = self.virtual_nodes | {node}
        self._virtual_owner[node] = owner

    def _drop_virtual_node(self, node: Node) -> None:
        """Forget a virtual node whose last crossing edge from ``Vi`` is gone."""
        self.virtual_nodes = self.virtual_nodes - {node}
        self._virtual_owner.pop(node, None)

    def _add_in_node(self, node: Node) -> None:
        """Mark local ``node`` as having an incoming crossing edge."""
        self.in_nodes = self.in_nodes | {node}

    def _drop_in_node(self, node: Node) -> None:
        """Unmark ``node``: no other fragment points at it anymore."""
        self.in_nodes = self.in_nodes - {node}

    def _drop_local_node(self, node: Node) -> None:
        """Shrink ``Vi`` by one (already isolated) node.

        The caller (``Fragmentation.remove_node``) has deleted every incident
        edge first, so the node is neither virtual anywhere nor an in-node
        here; only the ``Vi`` membership remains to clear.
        """
        self.local_nodes = self.local_nodes - {node}

    def crossing_edges(self) -> List[Tuple[Node, Node]]:
        """Edges from a local node to a virtual node (this fragment's share of ``Ef``)."""
        return [
            (u, v)
            for u, v in self.graph.edges()
            if u in self.local_nodes and v in self.virtual_nodes
        ]

    def local_serialized_bytes(self, cost) -> int:
        """Wire size of shipping this fragment whole (used by the Match baseline).

        ``cost`` is a :class:`~repro.runtime.costmodel.CostModel`.
        """
        n_entries = self.n_local_nodes + len(self.virtual_nodes)
        return (
            n_entries * (cost.node_id_bytes + cost.label_bytes)
            + self.graph.n_edges * 2 * cost.node_id_bytes
        )

    def __repr__(self) -> str:
        return (
            f"Fragment(fid={self.fid}, |Vi|={self.n_local_nodes}, "
            f"|Ei|={self.n_edges}, |O|={len(self.virtual_nodes)}, |I|={len(self.in_nodes)})"
        )
