"""Descriptive statistics of a fragmentation.

These are the quantities the paper's x-axes sweep (``|F|``, ``|Vf|/|V|``,
``|Ef|/|E|``, ``|Fm|``) packaged for reports and tests, plus the
cut-quality figures the cost model (Section 6, Fig 6) is driven by: the
total boundary size ``Σ |Fi.O| + |Fi.I|`` (message volume and watcher-table
size scale with it) and the fragment imbalance that bounds the slowest
site's work.  :class:`PartitionStats` crosses the v2 wire inside the
``stats()`` reply, so keep it a flat frozen dataclass of primitives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.partition.fragmentation import Fragmentation


@dataclass(frozen=True)
class PartitionStats:
    """Summary statistics of a fragmentation."""

    n_fragments: int
    n_nodes: int
    n_edges: int
    n_virtual_nodes: int
    n_crossing_edges: int
    largest_fragment_size: int
    vf_ratio: float
    ef_ratio: float
    balance: float  # largest |Vi| / average |Vi|; 1.0 is perfectly balanced
    #: ``Σ |Fi.O| + |Fi.I|`` -- the boundary size the PT/DS cost model
    #: scales with (0 until computed; see :func:`partition_stats`)
    total_boundary: int = 0
    #: smallest ``|Vi|`` (0 fragments -> 0)
    smallest_fragment_nodes: int = 0
    #: max over fragments of ``| |Vi| - avg | / avg`` (0.0 is perfect)
    imbalance_max: float = 0.0
    #: mean over fragments of ``| |Vi| - avg | / avg``
    imbalance_mean: float = 0.0

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"|F|={self.n_fragments} |G|=({self.n_nodes},{self.n_edges}) "
            f"|Vf|={self.n_virtual_nodes} ({self.vf_ratio:.0%}) "
            f"|Ef|={self.n_crossing_edges} ({self.ef_ratio:.0%}) "
            f"|Fm|={self.largest_fragment_size} balance={self.balance:.2f} "
            f"boundary={self.total_boundary} "
            f"imbalance(max/mean)={self.imbalance_max:.2f}/{self.imbalance_mean:.2f}"
        )


def partition_stats(fragmentation: Fragmentation) -> PartitionStats:
    """Compute :class:`PartitionStats` for ``fragmentation``."""
    sizes: List[int] = [frag.n_local_nodes for frag in fragmentation]
    avg = sum(sizes) / len(sizes) if sizes else 0.0
    deviations = [abs(s - avg) / avg for s in sizes] if avg else []
    return PartitionStats(
        n_fragments=fragmentation.n_fragments,
        n_nodes=fragmentation.graph.n_nodes,
        n_edges=fragmentation.graph.n_edges,
        n_virtual_nodes=fragmentation.n_virtual_nodes,
        n_crossing_edges=fragmentation.n_crossing_edges,
        largest_fragment_size=fragmentation.largest_fragment.size,
        vf_ratio=fragmentation.vf_ratio,
        ef_ratio=fragmentation.ef_ratio,
        balance=(max(sizes) / avg) if avg else 0.0,
        total_boundary=sum(
            len(frag.virtual_nodes) + len(frag.in_nodes) for frag in fragmentation
        ),
        smallest_fragment_nodes=min(sizes) if sizes else 0,
        imbalance_max=max(deviations) if deviations else 0.0,
        imbalance_mean=(sum(deviations) / len(deviations)) if deviations else 0.0,
    )
