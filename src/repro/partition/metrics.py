"""Descriptive statistics of a fragmentation.

These are the quantities the paper's x-axes sweep (``|F|``, ``|Vf|/|V|``,
``|Ef|/|E|``, ``|Fm|``) packaged for reports and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.partition.fragmentation import Fragmentation


@dataclass(frozen=True)
class PartitionStats:
    """Summary statistics of a fragmentation."""

    n_fragments: int
    n_nodes: int
    n_edges: int
    n_virtual_nodes: int
    n_crossing_edges: int
    largest_fragment_size: int
    vf_ratio: float
    ef_ratio: float
    balance: float  # largest |Vi| / average |Vi|; 1.0 is perfectly balanced

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"|F|={self.n_fragments} |G|=({self.n_nodes},{self.n_edges}) "
            f"|Vf|={self.n_virtual_nodes} ({self.vf_ratio:.0%}) "
            f"|Ef|={self.n_crossing_edges} ({self.ef_ratio:.0%}) "
            f"|Fm|={self.largest_fragment_size} balance={self.balance:.2f}"
        )


def partition_stats(fragmentation: Fragmentation) -> PartitionStats:
    """Compute :class:`PartitionStats` for ``fragmentation``."""
    sizes: List[int] = [frag.n_local_nodes for frag in fragmentation]
    avg = sum(sizes) / len(sizes) if sizes else 0.0
    return PartitionStats(
        n_fragments=fragmentation.n_fragments,
        n_nodes=fragmentation.graph.n_nodes,
        n_edges=fragmentation.graph.n_edges,
        n_virtual_nodes=fragmentation.n_virtual_nodes,
        n_crossing_edges=fragmentation.n_crossing_edges,
        largest_fragment_size=fragmentation.largest_fragment.size,
        vf_ratio=fragmentation.vf_ratio,
        ef_ratio=fragmentation.ef_ratio,
        balance=(max(sizes) / avg) if avg else 0.0,
    )
