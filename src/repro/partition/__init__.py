"""Graph fragmentation: the paper's distributed data model (Section 2.2).

A :class:`~repro.partition.fragmentation.Fragmentation` ``F = (F1..Fn)`` of a
graph ``G`` partitions ``V`` into local node sets; each
:class:`~repro.partition.fragment.Fragment` additionally stores

* ``Fi.O`` -- *virtual nodes*: out-neighbours of local nodes living elsewhere,
* ``Fi.I`` -- *in-nodes*: local nodes with an incoming crossing edge,
* the induced subgraph over ``Vi ∪ Fi.O``.

The global statistics ``Vf = ∪ Fi.O`` (boundary nodes) and ``Ef`` (crossing
edges) are what the partition-bounded guarantees of Theorems 2-3 are stated
in.  :mod:`~repro.partition.partitioners` provides the partitioning strategies
the experiments use, including swap-refinement to a target ``|Vf|/|V|`` ratio
(the paper adjusts ``|Vf|`` following Ja-be-Ja [27]).
"""

from repro.partition.fragment import Fragment
from repro.partition.fragmentation import Fragmentation, fragment_graph
from repro.partition.metrics import PartitionStats, partition_stats
from repro.partition.partitioners import (
    balanced_bfs_partition,
    hash_partition,
    min_cut_partition,
    random_partition,
    refine_to_vf_ratio,
    traffic_node_weights,
    tree_partition,
)

__all__ = [
    "Fragment",
    "Fragmentation",
    "fragment_graph",
    "hash_partition",
    "random_partition",
    "balanced_bfs_partition",
    "min_cut_partition",
    "refine_to_vf_ratio",
    "traffic_node_weights",
    "tree_partition",
    "PartitionStats",
    "partition_stats",
]
