"""Fragmentations ``F = (F1..Fn)`` and their global statistics.

:func:`fragment_graph` turns a graph plus a node assignment into the full
structure of Section 2.2; :class:`Fragmentation` exposes the quantities the
paper's bounds are written in (``|F|``, ``|Fm|``, ``Vf``, ``Ef``) and
validates the consistency invariants (tests rely on
:meth:`Fragmentation.validate`).

A fragmentation is also *maintainable in place*: :meth:`Fragmentation.\
delete_edge`, :meth:`Fragmentation.insert_edge` and
:meth:`Fragmentation.add_node` patch the base graph, the owning fragment's
stored subgraph, and the ``Fi.O``/``Fi.I`` membership of the touched
endpoints together, so :meth:`validate` holds after every update.  Each
returns a :class:`MutationDelta` describing exactly which boundary metadata
moved -- consumers (the watcher tables of
:class:`~repro.core.depgraph.DependencyGraphs`, the session layer's caches)
use it to patch their own state incrementally instead of rebuilding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Set, Tuple

from repro.errors import FragmentationError, GraphError
from repro.graph import algorithms
from repro.graph.digraph import DiGraph, Label, Node
from repro.partition.fragment import Fragment


@dataclass(frozen=True)
class MutationDelta:
    """What one in-place fragmentation update changed, beyond the graphs.

    ``source_fid`` owns the edge source (for ``add_node``: the fragment the
    node joined); ``target_fid`` owns the edge target.  The four booleans
    record boundary-metadata transitions: whether ``v`` entered/left the
    source fragment's ``Fi.O`` and the target fragment's ``Fi.I``.  Labels
    are carried so consumers can run label-relevance checks without touching
    the graph again.
    """

    kind: str  # "delete" | "insert" | "add_node" | "remove_node"
    u: Node
    v: Node
    source_fid: int
    target_fid: int
    u_label: Label
    v_label: Label
    #: v left source fragment's Fi.O (its last crossing edge from there died)
    virtual_dropped: bool = False
    #: v entered source fragment's Fi.O (first crossing edge from there)
    virtual_added: bool = False
    #: v left target fragment's Fi.I (no incoming crossing edge remains)
    in_dropped: bool = False
    #: v entered target fragment's Fi.I
    in_added: bool = False
    #: for composite kinds (``remove_node``): the constituent edge deletions,
    #: in application order -- consumers replay these, then the node drop
    cascade: Tuple["MutationDelta", ...] = ()

    @property
    def crossing(self) -> bool:
        """True iff the touched edge spans two fragments."""
        return self.source_fid != self.target_fid


class Fragmentation:
    """A fragmentation of a data graph over ``n`` sites."""

    def __init__(self, graph: DiGraph, fragments: List[Fragment], owner: Dict[Node, int]) -> None:
        self.graph = graph
        self.fragments = fragments
        self._owner = owner

    # ------------------------------------------------------------------
    # the paper's notation (Table 2)
    # ------------------------------------------------------------------
    @property
    def n_fragments(self) -> int:
        """``|F|``, the number of fragments/sites."""
        return len(self.fragments)

    def __len__(self) -> int:
        return self.n_fragments

    def __iter__(self) -> Iterator[Fragment]:
        return iter(self.fragments)

    def __getitem__(self, fid: int) -> Fragment:
        return self.fragments[fid]

    def owner(self, node: Node) -> int:
        """Fragment id whose ``Vi`` contains ``node``."""
        try:
            return self._owner[node]
        except KeyError:
            raise FragmentationError(f"node {node!r} is not assigned to any fragment") from None

    def virtual_nodes(self) -> Set[Node]:
        """``Vf = ∪ Fi.O``: all nodes with an incoming crossing edge."""
        out: Set[Node] = set()
        for frag in self.fragments:
            out |= frag.virtual_nodes
        return out

    @property
    def n_virtual_nodes(self) -> int:
        """``|Vf|``."""
        return len(self.virtual_nodes())

    def crossing_edges(self) -> List[Tuple[Node, Node]]:
        """``Ef``: every edge whose endpoints live in different fragments."""
        out: List[Tuple[Node, Node]] = []
        for frag in self.fragments:
            out.extend(frag.crossing_edges())
        return out

    @property
    def n_crossing_edges(self) -> int:
        """``|Ef|``."""
        return len(self.crossing_edges())

    @property
    def largest_fragment(self) -> Fragment:
        """``Fm``, the largest fragment by ``|Vi| + |Ei|``."""
        return max(self.fragments, key=lambda f: f.size)

    @property
    def vf_ratio(self) -> float:
        """``|Vf| / |V|`` -- how the paper reports the size of ``Vf``."""
        return self.n_virtual_nodes / max(1, self.graph.n_nodes)

    @property
    def ef_ratio(self) -> float:
        """``|Ef| / |E|``."""
        return self.n_crossing_edges / max(1, self.graph.n_edges)

    @property
    def version(self) -> Tuple[int, ...]:
        """Combined mutation stamp of the base graph and every fragment graph.

        The session layer snapshots this to detect that any stored graph was
        mutated since its caches were built (see
        :class:`repro.session.SimulationSession`).
        """
        return (self.graph.version,) + tuple(f.graph.version for f in self.fragments)

    def __repr__(self) -> str:
        return (
            f"Fragmentation(|F|={self.n_fragments}, |V|={self.graph.n_nodes}, "
            f"|Vf|={self.n_virtual_nodes}, |Ef|={self.n_crossing_edges})"
        )

    # ------------------------------------------------------------------
    # in-place maintenance (Section-2.2 invariants preserved per update)
    # ------------------------------------------------------------------
    def delete_edge(self, u: Node, v: Node) -> MutationDelta:
        """Remove edge ``(u, v)`` from the base graph *and* the fragmentation.

        Patches the owning fragment's stored subgraph, prunes ``v`` from its
        ``Fi.O`` when the last crossing edge from that fragment dies (also
        dropping the now-unreferenced virtual node from the fragment graph),
        and clears ``v`` from its owner's ``Fi.I`` when no incoming crossing
        edge remains.  :meth:`validate` holds afterwards.
        """
        if not self.graph.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) is not in the graph")
        source_fid = self.owner(u)
        target_fid = self.owner(v)
        u_label = self.graph.label(u)
        v_label = self.graph.label(v)
        self.graph.remove_edge(u, v)
        source = self.fragments[source_fid]
        source.graph.remove_edge(u, v)

        virtual_dropped = in_dropped = False
        if source_fid != target_fid:
            preds = self.graph.predecessors(v)
            if not any(self._owner[p] == source_fid for p in preds):
                # v's last crossing edge out of `source` is gone: v leaves
                # Fi.O and its (edge-less) graph entry is pruned.
                source._drop_virtual_node(v)
                source.graph.remove_node(v)
                virtual_dropped = True
            if not any(self._owner[p] != target_fid for p in preds):
                self.fragments[target_fid]._drop_in_node(v)
                in_dropped = True
        return MutationDelta(
            kind="delete", u=u, v=v,
            source_fid=source_fid, target_fid=target_fid,
            u_label=u_label, v_label=v_label,
            virtual_dropped=virtual_dropped, in_dropped=in_dropped,
        )

    def insert_edge(self, u: Node, v: Node) -> MutationDelta:
        """Add edge ``(u, v)`` to the base graph *and* the fragmentation.

        A new crossing edge registers ``v`` in the source fragment's ``Fi.O``
        (adding the virtual node, with label, to its stored subgraph) and in
        the target fragment's ``Fi.I`` as needed.
        """
        if u not in self.graph or v not in self.graph:
            raise GraphError("both endpoints must exist")
        if self.graph.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) already present")
        source_fid = self.owner(u)
        target_fid = self.owner(v)
        u_label = self.graph.label(u)
        v_label = self.graph.label(v)
        self.graph.add_edge(u, v)
        source = self.fragments[source_fid]

        virtual_added = in_added = False
        if source_fid != target_fid:
            if v not in source.virtual_nodes:
                source._add_virtual_node(v, owner=target_fid)
                if v not in source.graph:
                    source.graph.add_node(v, v_label)
                virtual_added = True
            target = self.fragments[target_fid]
            if v not in target.in_nodes:
                target._add_in_node(v)
                in_added = True
        source.graph.add_edge(u, v)
        return MutationDelta(
            kind="insert", u=u, v=v,
            source_fid=source_fid, target_fid=target_fid,
            u_label=u_label, v_label=v_label,
            virtual_added=virtual_added, in_added=in_added,
        )

    def add_node(self, node: Node, label: Label, fid: Optional[int] = None) -> MutationDelta:
        """Add an isolated ``node`` with ``label`` to fragment ``fid``.

        ``fid`` defaults to the smallest fragment (by ``|Vi| + |Ei|``).  The
        new node starts with no edges, so no boundary metadata moves; wire it
        up with :meth:`insert_edge`.
        """
        if node in self.graph:
            raise GraphError(f"node {node!r} already exists")
        if fid is None:
            fid = min(self.fragments, key=lambda f: f.size).fid
        if not 0 <= fid < self.n_fragments:
            raise FragmentationError(f"fragment id {fid} out of range")
        self.graph.add_node(node, label)
        fragment = self.fragments[fid]
        fragment.graph.add_node(node, label)
        fragment._add_local_node(node)
        self._owner[node] = fid
        return MutationDelta(
            kind="add_node", u=node, v=node,
            source_fid=fid, target_fid=fid,
            u_label=label, v_label=label,
        )

    def remove_node(self, node: Node) -> MutationDelta:
        """Remove ``node`` and every incident edge, everywhere.

        A composite update: each incident edge is deleted through
        :meth:`delete_edge` (so all boundary metadata transitions are
        recorded as a ``cascade`` of ordinary deletion deltas), then the
        now-isolated node leaves the base graph, its fragment's stored
        subgraph, and the owner map.  :meth:`validate` holds afterwards.
        A fragment may end up empty; :meth:`add_node` (default placement:
        smallest fragment) will repopulate it first.

        Cascade order is load-bearing for the incremental repair layer:
        in-edges go first (a self-loop counts as an out-edge), so warm
        states replaying the cascade adjust every predecessor's counter
        while the node is still an optimistic candidate, and only then see
        the node's own falsifications -- whose propagation stops at the
        already-detached node.
        """
        if node not in self.graph:
            raise GraphError(f"node {node!r} is not in the graph")
        fid = self.owner(node)
        label = self.graph.label(node)
        cascade: List[MutationDelta] = []
        for p in list(self.graph.predecessors(node)):
            if p != node:
                cascade.append(self.delete_edge(p, node))
        for v in list(self.graph.successors(node)):
            cascade.append(self.delete_edge(node, v))
        self.graph.remove_node(node)
        fragment = self.fragments[fid]
        fragment.graph.remove_node(node)
        fragment._drop_local_node(node)
        del self._owner[node]
        return MutationDelta(
            kind="remove_node", u=node, v=node,
            source_fid=fid, target_fid=fid,
            u_label=label, v_label=label,
            cascade=tuple(cascade),
        )

    # ------------------------------------------------------------------
    # shipping fragments to shard workers
    # ------------------------------------------------------------------
    def extract_shard(self, fids) -> "FragmentShard":
        """The named fragments, packaged for shipping to one shard worker.

        The shard references the live :class:`Fragment` objects; crossing a
        process boundary (pickling over a transport, or spawn/fork) copies
        them, which is exactly the snapshot the worker should hold.  Unlike
        the full fragmentation, a shard carries *no base graph and no
        global owner map* -- the whole point of the sharded deployment is
        that per-worker memory scales with ``|F|/n``, not ``|G|``.
        """
        missing = [fid for fid in fids if not 0 <= fid < self.n_fragments]
        if missing:
            raise FragmentationError(f"fragment ids {missing} out of range")
        return FragmentShard({fid: self.fragments[fid] for fid in fids})

    # ------------------------------------------------------------------
    # invariants (Section 2.2)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`FragmentationError` unless all Section-2.2 invariants hold.

        (a) local node sets partition ``V``; (b) ``Fi.O`` is exactly the set of
        out-neighbours of ``Vi`` outside ``Vi``; (c) each fragment's graph is
        the subgraph induced by ``Vi ∪ Fi.O`` minus virtual-to-anything edges;
        (d) ``∪ Fi.O = ∪ Fi.I``; (e) in-nodes are local nodes with an incoming
        crossing edge.
        """
        seen: Set[Node] = set()
        for frag in self.fragments:
            overlap = seen & frag.local_nodes
            if overlap:
                raise FragmentationError(f"nodes in two fragments: {sorted(map(repr, overlap))[:5]}")
            seen |= frag.local_nodes
        if seen != set(self.graph.nodes()):
            raise FragmentationError("local node sets do not cover V")

        all_virtual: Set[Node] = set()
        all_in: Set[Node] = set()
        for frag in self.fragments:
            expected_virtual = {
                v
                for u in frag.local_nodes
                for v in self.graph.successors(u)
                if v not in frag.local_nodes
            }
            if frag.virtual_nodes != expected_virtual:
                raise FragmentationError(f"fragment {frag.fid}: Fi.O mismatch")
            expected_in = {
                v
                for v in frag.local_nodes
                if any(self._owner[p] != frag.fid for p in self.graph.predecessors(v))
            }
            if frag.in_nodes != expected_in:
                raise FragmentationError(f"fragment {frag.fid}: Fi.I mismatch")
            for node in frag.graph.nodes():
                try:
                    expected = self.graph.label(node)
                except GraphError:
                    raise FragmentationError(
                        f"fragment {frag.fid}: node {node!r} is not in G"
                    ) from None
                if frag.graph.label(node) != expected:
                    raise FragmentationError(
                        f"fragment {frag.fid}: label of {node!r} disagrees with G"
                    )
            for u, v in frag.graph.edges():
                if u in frag.virtual_nodes:
                    raise FragmentationError(
                        f"fragment {frag.fid}: stores an out-edge of virtual node {u!r}"
                    )
                if not self.graph.has_edge(u, v):
                    raise FragmentationError(f"fragment {frag.fid}: phantom edge ({u!r}, {v!r})")
            local_edge_count = sum(
                1
                for u in frag.local_nodes
                for v in self.graph.successors(u)
                if v in frag.local_nodes or v in frag.virtual_nodes
            )
            if frag.graph.n_edges != local_edge_count:
                raise FragmentationError(f"fragment {frag.fid}: induced edge set incomplete")
            all_virtual |= frag.virtual_nodes
            all_in |= frag.in_nodes
        if all_virtual != all_in:
            raise FragmentationError("∪ Fi.O != ∪ Fi.I")

    def has_connected_fragments(self) -> bool:
        """True iff every fragment's local subgraph is weakly connected.

        This is the precondition of dGPMt (Corollary 4: "each fragment of F
        is connected").
        """
        for frag in self.fragments:
            local = self.graph.induced_subgraph(frag.local_nodes)
            if local.n_nodes and len(algorithms.weakly_connected_components(local)) != 1:
                return False
        return True


def fragment_graph(graph: DiGraph, assignment: Mapping[Node, int]) -> Fragmentation:
    """Build a :class:`Fragmentation` from a node-to-fragment assignment.

    ``assignment`` must map every node of ``graph`` to a fragment id in
    ``0..n-1``; every id in that range must own at least one node.
    """
    if set(assignment) != set(graph.nodes()):
        raise FragmentationError("assignment must cover exactly the nodes of the graph")
    n = max(assignment.values()) + 1 if assignment else 0
    blocks: List[Set[Node]] = [set() for _ in range(n)]
    for node, fid in assignment.items():
        if not 0 <= fid < n:
            raise FragmentationError(f"fragment id {fid} out of range")
        blocks[fid].add(node)
    if any(not block for block in blocks):
        raise FragmentationError("every fragment id in 0..n-1 must own at least one node")

    owner = dict(assignment)
    fragments: List[Fragment] = []
    for fid, block in enumerate(blocks):
        virtual: Set[Node] = set()
        sub = DiGraph()
        for u in block:
            sub.add_node(u, graph.label(u))
        for u in block:
            for v in graph.successors(u):
                if v not in block:
                    virtual.add(v)
                    if v not in sub:
                        sub.add_node(v, graph.label(v))
                sub.add_edge(u, v)
        in_nodes = {
            v for v in block if any(owner[p] != fid for p in graph.predecessors(v))
        }
        virtual_owner = {v: owner[v] for v in virtual}
        fragments.append(
            Fragment(
                fid=fid,
                graph=sub,
                local_nodes=frozenset(block),
                virtual_nodes=frozenset(virtual),
                in_nodes=frozenset(in_nodes),
                virtual_owner=virtual_owner,
            )
        )
    return Fragmentation(graph, fragments, owner)


class FragmentShard:
    """One shard worker's owned subset of a fragmentation's fragments.

    Site programs only ever evaluate ``fragmentation[their_fid]``, so a
    mapping that answers ``shard[fid]`` for the owned ids is a drop-in
    stand-in for the full :class:`Fragmentation` on the worker side.  The
    shard is also *maintainable*: :meth:`apply_delta` replays a
    :class:`MutationDelta` against whichever owned fragments it touches,
    using the delta's recorded boundary transitions instead of the base
    graph (which the worker deliberately does not hold).
    """

    __slots__ = ("_fragments",)

    def __init__(self, fragments: Mapping[int, Fragment]) -> None:
        self._fragments: Dict[int, Fragment] = dict(fragments)

    @property
    def fids(self) -> Tuple[int, ...]:
        """Owned fragment ids, sorted."""
        return tuple(sorted(self._fragments))

    def __contains__(self, fid: object) -> bool:
        return fid in self._fragments

    def __len__(self) -> int:
        return len(self._fragments)

    def __getitem__(self, fid: int) -> Fragment:
        try:
            return self._fragments[fid]
        except KeyError:
            raise FragmentationError(
                f"fragment {fid} is not owned by this shard (owns {self.fids})"
            ) from None

    def install(self, fid: int, fragment: Fragment) -> None:
        """Adopt ownership of ``fragment`` (ring migration re-ship)."""
        self._fragments[fid] = fragment

    def drop(self, fid: int) -> None:
        """Release ownership of ``fid`` (migrated away)."""
        self._fragments.pop(fid, None)

    @property
    def resident_size(self) -> int:
        """Sum of owned fragments' ``|Vi| + |Ei|`` (capacity accounting)."""
        return sum(f.size for f in self._fragments.values())

    # ------------------------------------------------------------------
    def apply_delta(self, delta: MutationDelta) -> None:
        """Replay one mutation against the owned fragments.

        Mirrors :meth:`Fragmentation.delete_edge` / :meth:`insert_edge` /
        :meth:`add_node` fragment-by-fragment, trusting the delta's
        ``virtual_*``/``in_*`` booleans for the boundary decisions that
        would otherwise need the base graph.  Deltas touching no owned
        fragment are no-ops, so the coordinator may over-deliver safely.
        """
        source = self._fragments.get(delta.source_fid)
        target = self._fragments.get(delta.target_fid)
        if delta.kind == "add_node":
            if source is not None:
                source.graph.add_node(delta.u, delta.u_label)
                source._add_local_node(delta.u)
            return
        if delta.kind == "insert":
            if source is not None:
                if delta.crossing and delta.virtual_added:
                    source._add_virtual_node(delta.v, owner=delta.target_fid)
                    if delta.v not in source.graph:
                        source.graph.add_node(delta.v, delta.v_label)
                source.graph.add_edge(delta.u, delta.v)
            if target is not None and delta.crossing and delta.in_added:
                target._add_in_node(delta.v)
            return
        if delta.kind == "delete":
            if source is not None:
                source.graph.remove_edge(delta.u, delta.v)
                if delta.crossing and delta.virtual_dropped:
                    source._drop_virtual_node(delta.v)
                    source.graph.remove_node(delta.v)
            if target is not None and delta.crossing and delta.in_dropped:
                target._drop_in_node(delta.v)
            return
        if delta.kind == "remove_node":
            for edge_delta in delta.cascade:
                self.apply_delta(edge_delta)
            owner = self._fragments.get(delta.source_fid)
            if owner is not None:
                owner.graph.remove_node(delta.u)
                owner._drop_local_node(delta.u)
            return
        raise FragmentationError(f"unknown mutation kind {delta.kind!r}")

    def __repr__(self) -> str:
        return f"FragmentShard(fids={self.fids}, size={self.resident_size})"
