"""Fragmentations ``F = (F1..Fn)`` and their global statistics.

:func:`fragment_graph` turns a graph plus a node assignment into the full
structure of Section 2.2; :class:`Fragmentation` exposes the quantities the
paper's bounds are written in (``|F|``, ``|Fm|``, ``Vf``, ``Ef``) and
validates the consistency invariants (tests rely on
:meth:`Fragmentation.validate`).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Set, Tuple

from repro.errors import FragmentationError, GraphError
from repro.graph import algorithms
from repro.graph.digraph import DiGraph, Node
from repro.partition.fragment import Fragment


class Fragmentation:
    """A fragmentation of a data graph over ``n`` sites."""

    def __init__(self, graph: DiGraph, fragments: List[Fragment], owner: Dict[Node, int]) -> None:
        self.graph = graph
        self.fragments = fragments
        self._owner = owner

    # ------------------------------------------------------------------
    # the paper's notation (Table 2)
    # ------------------------------------------------------------------
    @property
    def n_fragments(self) -> int:
        """``|F|``, the number of fragments/sites."""
        return len(self.fragments)

    def __len__(self) -> int:
        return self.n_fragments

    def __iter__(self) -> Iterator[Fragment]:
        return iter(self.fragments)

    def __getitem__(self, fid: int) -> Fragment:
        return self.fragments[fid]

    def owner(self, node: Node) -> int:
        """Fragment id whose ``Vi`` contains ``node``."""
        try:
            return self._owner[node]
        except KeyError:
            raise FragmentationError(f"node {node!r} is not assigned to any fragment") from None

    def virtual_nodes(self) -> Set[Node]:
        """``Vf = ∪ Fi.O``: all nodes with an incoming crossing edge."""
        out: Set[Node] = set()
        for frag in self.fragments:
            out |= frag.virtual_nodes
        return out

    @property
    def n_virtual_nodes(self) -> int:
        """``|Vf|``."""
        return len(self.virtual_nodes())

    def crossing_edges(self) -> List[Tuple[Node, Node]]:
        """``Ef``: every edge whose endpoints live in different fragments."""
        out: List[Tuple[Node, Node]] = []
        for frag in self.fragments:
            out.extend(frag.crossing_edges())
        return out

    @property
    def n_crossing_edges(self) -> int:
        """``|Ef|``."""
        return len(self.crossing_edges())

    @property
    def largest_fragment(self) -> Fragment:
        """``Fm``, the largest fragment by ``|Vi| + |Ei|``."""
        return max(self.fragments, key=lambda f: f.size)

    @property
    def vf_ratio(self) -> float:
        """``|Vf| / |V|`` -- how the paper reports the size of ``Vf``."""
        return self.n_virtual_nodes / max(1, self.graph.n_nodes)

    @property
    def ef_ratio(self) -> float:
        """``|Ef| / |E|``."""
        return self.n_crossing_edges / max(1, self.graph.n_edges)

    @property
    def version(self) -> Tuple[int, ...]:
        """Combined mutation stamp of the base graph and every fragment graph.

        The session layer snapshots this to detect that any stored graph was
        mutated since its caches were built (see
        :class:`repro.session.SimulationSession`).
        """
        return (self.graph.version,) + tuple(f.graph.version for f in self.fragments)

    def __repr__(self) -> str:
        return (
            f"Fragmentation(|F|={self.n_fragments}, |V|={self.graph.n_nodes}, "
            f"|Vf|={self.n_virtual_nodes}, |Ef|={self.n_crossing_edges})"
        )

    # ------------------------------------------------------------------
    # invariants (Section 2.2)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`FragmentationError` unless all Section-2.2 invariants hold.

        (a) local node sets partition ``V``; (b) ``Fi.O`` is exactly the set of
        out-neighbours of ``Vi`` outside ``Vi``; (c) each fragment's graph is
        the subgraph induced by ``Vi ∪ Fi.O`` minus virtual-to-anything edges;
        (d) ``∪ Fi.O = ∪ Fi.I``; (e) in-nodes are local nodes with an incoming
        crossing edge.
        """
        seen: Set[Node] = set()
        for frag in self.fragments:
            overlap = seen & frag.local_nodes
            if overlap:
                raise FragmentationError(f"nodes in two fragments: {sorted(map(repr, overlap))[:5]}")
            seen |= frag.local_nodes
        if seen != set(self.graph.nodes()):
            raise FragmentationError("local node sets do not cover V")

        all_virtual: Set[Node] = set()
        all_in: Set[Node] = set()
        for frag in self.fragments:
            expected_virtual = {
                v
                for u in frag.local_nodes
                for v in self.graph.successors(u)
                if v not in frag.local_nodes
            }
            if frag.virtual_nodes != expected_virtual:
                raise FragmentationError(f"fragment {frag.fid}: Fi.O mismatch")
            expected_in = {
                v
                for v in frag.local_nodes
                if any(self._owner[p] != frag.fid for p in self.graph.predecessors(v))
            }
            if frag.in_nodes != expected_in:
                raise FragmentationError(f"fragment {frag.fid}: Fi.I mismatch")
            for node in frag.graph.nodes():
                try:
                    expected = self.graph.label(node)
                except GraphError:
                    raise FragmentationError(
                        f"fragment {frag.fid}: node {node!r} is not in G"
                    ) from None
                if frag.graph.label(node) != expected:
                    raise FragmentationError(
                        f"fragment {frag.fid}: label of {node!r} disagrees with G"
                    )
            for u, v in frag.graph.edges():
                if u in frag.virtual_nodes:
                    raise FragmentationError(
                        f"fragment {frag.fid}: stores an out-edge of virtual node {u!r}"
                    )
                if not self.graph.has_edge(u, v):
                    raise FragmentationError(f"fragment {frag.fid}: phantom edge ({u!r}, {v!r})")
            local_edge_count = sum(
                1
                for u in frag.local_nodes
                for v in self.graph.successors(u)
                if v in frag.local_nodes or v in frag.virtual_nodes
            )
            if frag.graph.n_edges != local_edge_count:
                raise FragmentationError(f"fragment {frag.fid}: induced edge set incomplete")
            all_virtual |= frag.virtual_nodes
            all_in |= frag.in_nodes
        if all_virtual != all_in:
            raise FragmentationError("∪ Fi.O != ∪ Fi.I")

    def has_connected_fragments(self) -> bool:
        """True iff every fragment's local subgraph is weakly connected.

        This is the precondition of dGPMt (Corollary 4: "each fragment of F
        is connected").
        """
        for frag in self.fragments:
            local = self.graph.induced_subgraph(frag.local_nodes)
            if local.n_nodes and len(algorithms.weakly_connected_components(local)) != 1:
                return False
        return True


def fragment_graph(graph: DiGraph, assignment: Mapping[Node, int]) -> Fragmentation:
    """Build a :class:`Fragmentation` from a node-to-fragment assignment.

    ``assignment`` must map every node of ``graph`` to a fragment id in
    ``0..n-1``; every id in that range must own at least one node.
    """
    if set(assignment) != set(graph.nodes()):
        raise FragmentationError("assignment must cover exactly the nodes of the graph")
    n = max(assignment.values()) + 1 if assignment else 0
    blocks: List[Set[Node]] = [set() for _ in range(n)]
    for node, fid in assignment.items():
        if not 0 <= fid < n:
            raise FragmentationError(f"fragment id {fid} out of range")
        blocks[fid].add(node)
    if any(not block for block in blocks):
        raise FragmentationError("every fragment id in 0..n-1 must own at least one node")

    owner = dict(assignment)
    fragments: List[Fragment] = []
    for fid, block in enumerate(blocks):
        virtual: Set[Node] = set()
        sub = DiGraph()
        for u in block:
            sub.add_node(u, graph.label(u))
        for u in block:
            for v in graph.successors(u):
                if v not in block:
                    virtual.add(v)
                    if v not in sub:
                        sub.add_node(v, graph.label(v))
                sub.add_edge(u, v)
        in_nodes = {
            v for v in block if any(owner[p] != fid for p in graph.predecessors(v))
        }
        virtual_owner = {v: owner[v] for v in virtual}
        fragments.append(
            Fragment(
                fid=fid,
                graph=sub,
                local_nodes=frozenset(block),
                virtual_nodes=frozenset(virtual),
                in_nodes=frozenset(in_nodes),
                virtual_owner=virtual_owner,
            )
        )
    return Fragmentation(graph, fragments, owner)
