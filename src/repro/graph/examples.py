"""The paper's running examples as concrete instances.

* :func:`figure1` -- the social recommendation network of Figure 1 / Examples
  1-8: query ``Q`` (YB hub + SP->YF->F->SP cycle), graph ``G`` with 13 users,
  and the 3-site fragmentation with ``F1.O = {f4, f2, yf2}`` and
  ``F1.I = {sp1, yf1}`` (Example 4).
* :func:`figure2` -- the impossibility gadget ``Q0`` / ``G0`` / ``F0``
  (Examples 3-4, proof of Theorem 1): a length-``2n`` A/B cycle cut into
  ``n`` single-edge fragments.
* :func:`figure5` -- the DAG scheduling example ``Q''`` / ``G''`` of
  Examples 9-10, on which dGPM ships 12 messages but dGPMd only 6.

The paper's Example-7 table contains typos (nodes listed under the wrong
fragments), so exact per-fragment membership is reconstructed from the
consistent statements of Examples 2, 4, 5, 6 and 8; the tests in
``tests/core/test_paper_examples.py`` pin every fact the paper states.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.graph.digraph import DiGraph
from repro.graph.pattern import Pattern
from repro.partition.fragmentation import Fragmentation, fragment_graph

# ----------------------------------------------------------------------
# Figure 1
# ----------------------------------------------------------------------

#: Expected maximum match of the Figure-1 query (Example 2).
FIGURE1_EXPECTED_MATCHES: Dict[str, frozenset] = {
    "YB": frozenset({"yb2", "yb3"}),
    "F": frozenset({"f2", "f3", "f4"}),
    "YF": frozenset({"yf1", "yf2", "yf3"}),
    "SP": frozenset({"sp1", "sp2", "sp3"}),
}


def figure1_query() -> Pattern:
    """The Figure-1 pattern: YB recommends to YF and F; SP->YF->F->SP cycle."""
    return Pattern(
        {"YB": "YB", "YF": "YF", "F": "F", "SP": "SP"},
        [("YB", "YF"), ("YB", "F"), ("SP", "YF"), ("YF", "F"), ("F", "SP")],
    )


def figure1_graph() -> DiGraph:
    """The Figure-1 social graph ``G``.

    An edge ``(a, b)`` means ``b`` trusts a recommendation from ``a``.  The
    3 x (F -> SP -> YF) recommendation cycle of Example 4 runs
    ``f3 -> sp2 -> yf3 -> f4 -> sp3 -> yf1 -> f2 -> sp1 -> yf2 -> f3``.
    ``f1`` recommends only to ``f4`` (no SP trusts it), so ``f1`` cannot match
    ``F``; ``yb1`` recommends only to ``f1``, so it cannot match ``YB``.
    """
    labels = {
        "yb1": "YB", "yb2": "YB", "yb3": "YB",
        "yf1": "YF", "yf2": "YF", "yf3": "YF",
        "sp1": "SP", "sp2": "SP", "sp3": "SP",
        "f1": "F", "f2": "F", "f3": "F", "f4": "F",
    }
    edges = [
        # the 9-node recommendation cycle
        ("f3", "sp2"), ("sp2", "yf3"), ("yf3", "f4"), ("f4", "sp3"),
        ("sp3", "yf1"), ("yf1", "f2"), ("f2", "sp1"), ("sp1", "yf2"),
        ("yf2", "f3"),
        # extra local edges named by Examples 4 and 6
        ("sp1", "yf1"),   # gives X(SP,sp1) = X(YF,yf2) OR X(YF,yf1)
        ("sp1", "f2"),    # crossing edge listed in Example 4
        ("f1", "f4"),     # f1's only recommendation: a Food lover, not SP
        ("yb1", "f1"),    # yb1 recommends only to f1 -> no YF child -> no match
        # YB matches need both a YF and an F successor (query edges YB->YF, YB->F)
        ("yb2", "yf2"), ("yb2", "f3"),
        ("yb3", "yf1"), ("yb3", "f2"),
        # sp2 also recommends to sp3 (Example 5: sp3 is an in-node of S3 from S2)
        ("sp2", "sp3"),
    ]
    return DiGraph(labels, edges)


def figure1_fragmentation(graph: DiGraph | None = None) -> Fragmentation:
    """The 3-site fragmentation of Figure 1 (Example 4).

    Site ``S1 = {yb1, f1, sp1, yf1}`` so that ``F1.O = {f4, f2, yf2}``,
    ``F1.I = {sp1, yf1}`` and the crossing edges out of ``F1`` are
    ``(f1, f4), (yf1, f2), (sp1, yf2), (sp1, f2)`` -- exactly Example 4.
    """
    graph = graph or figure1_graph()
    assignment = {
        "yb1": 0, "f1": 0, "sp1": 0, "yf1": 0,           # S1
        "f2": 1, "f3": 1, "yb2": 1, "sp2": 1, "yf2": 1,  # S2 (F2.I = {f2, yf2})
        "yb3": 2, "f4": 2, "sp3": 2, "yf3": 2,           # S3 (F3.I = {f4, sp3, yf3})
    }
    return fragment_graph(graph, assignment)


def figure1() -> Tuple[Pattern, DiGraph, Fragmentation]:
    """Query, graph and fragmentation of the paper's running example."""
    graph = figure1_graph()
    return figure1_query(), graph, figure1_fragmentation(graph)


def example8_graph() -> DiGraph:
    """Figure 1's ``G'`` (Example 8): ``G`` minus the edge ``(f2, sp1)``.

    Removing the edge breaks the recommendation cycle; the falsification of
    ``X(F, f2)`` then cascades around the whole cycle and no node matches.
    """
    graph = figure1_graph()
    graph.remove_edge("f2", "sp1")
    return graph


# ----------------------------------------------------------------------
# Figure 2 (impossibility gadget, Theorem 1)
# ----------------------------------------------------------------------


def figure2_query() -> Pattern:
    """``Q0``: a two-node cycle A <-> B ("it has only 2 edges", Example 3)."""
    return Pattern({"A": "A", "B": "B"}, [("A", "B"), ("B", "A")])


def figure2_graph(n: int, close_cycle: bool = True) -> DiGraph:
    """``G0(n)``: the alternating A/B cycle ``A1->B1->A2->...->An->Bn->A1``.

    With ``close_cycle=False`` the final edge ``Bn -> A1`` is dropped: the
    match of *every* node then hinges on information ``n`` hops away -- the
    lack of data locality of Example 3, and the engine of Theorem 1's proof.
    """
    labels: Dict[str, str] = {}
    edges = []
    for i in range(1, n + 1):
        labels[f"A{i}"] = "A"
        labels[f"B{i}"] = "B"
    for i in range(1, n + 1):
        edges.append((f"A{i}", f"B{i}"))
        if i < n:
            edges.append((f"B{i}", f"A{i + 1}"))
    if close_cycle:
        edges.append((f"B{n}", "A1"))
    return DiGraph(labels, edges)


def figure2_fragmentation(graph: DiGraph, n: int) -> Fragmentation:
    """``F0``: site ``Si`` holds the single edge ``(Ai, Bi)`` (Example 4).

    Each fragment has constant size -- the extreme case where ``Vf`` is all of
    ``G0`` and parallel scalability would demand constant response time.
    """
    assignment = {}
    for i in range(1, n + 1):
        assignment[f"A{i}"] = i - 1
        assignment[f"B{i}"] = i - 1
    return fragment_graph(graph, assignment)


def figure2(n: int, close_cycle: bool = True) -> Tuple[Pattern, DiGraph, Fragmentation]:
    """Query, graph and fragmentation of the Theorem-1 gadget at size ``n``."""
    graph = figure2_graph(n, close_cycle)
    return figure2_query(), graph, figure2_fragmentation(graph, n)


def figure2_two_site(n: int, close_cycle: bool = False) -> Tuple[Pattern, DiGraph, Fragmentation]:
    """The data-shipment variant ``G1``/``F1`` of Theorem 1's proof part (2).

    Two fragments only: one holding all A nodes, the other all B nodes.  Any
    correct algorithm must move information about ~n nodes across the single
    link, defeating data-shipment scalability (which would allow only a
    constant amount for fixed ``|Q|`` and ``|F| = 2``).
    """
    graph = figure2_graph(n, close_cycle)
    assignment = {}
    for i in range(1, n + 1):
        assignment[f"A{i}"] = 0
        assignment[f"B{i}"] = 1
    return figure2_query(), graph, fragment_graph(graph, assignment)


# ----------------------------------------------------------------------
# Figure 5 (rank scheduling, Examples 9-10)
# ----------------------------------------------------------------------


def figure5_query() -> Pattern:
    """``Q''``: the DAG query with ranks r(FB)=0, r(YB2)=1, r(SP)=2,
    r(YF)=r(F)=3, r(YB1)=4 (Example 9).  YB1 and YB2 share the label YB."""
    return Pattern(
        {"YB1": "YB", "YB2": "YB", "SP": "SP", "YF": "YF", "F": "F", "FB": "FB"},
        [
            ("YB2", "FB"),
            ("SP", "YB2"),
            ("YF", "SP"), ("F", "SP"),
            ("YB1", "YF"), ("YB1", "F"),
        ],
    )


def figure5_graph() -> DiGraph:
    """``G''`` of Figure 5: 12 nodes over five sites; contains no FB node,
    so nothing matches and falsifications cascade up the ranks."""
    labels = {
        "yb4": "YB",
        "yf4": "YF", "yf5": "YF", "f5": "F",
        "yf6": "YF", "f6": "F", "f7": "F",
        "sp4": "SP", "sp5": "SP",
        "sp6": "SP", "sp7": "SP",
    }
    edges = [
        # yb4 (candidate for YB1) recommends to every YF/F node
        ("yb4", "yf4"), ("yb4", "yf5"), ("yb4", "f5"),
        ("yb4", "yf6"), ("yb4", "f6"), ("yb4", "f7"),
        # F5 nodes point at F7's SP nodes; F6 nodes at F8's
        ("yf4", "sp4"), ("yf5", "sp5"), ("f5", "sp5"),
        ("yf6", "sp6"), ("f6", "sp6"), ("f7", "sp7"),
        # every SP node points back at yb4 (candidate for YB2)
        ("sp4", "yb4"), ("sp5", "yb4"), ("sp6", "yb4"), ("sp7", "yb4"),
    ]
    return DiGraph(labels, edges)


def figure5_fragmentation(graph: DiGraph | None = None) -> Fragmentation:
    """The five-site layout of Figure 5: F4={yb4}, F5={yf4,yf5,f5},
    F6={yf6,f6,f7}, F7={sp4,sp5}, F8={sp6,sp7}."""
    graph = graph or figure5_graph()
    assignment = {
        "yb4": 0,
        "yf4": 1, "yf5": 1, "f5": 1,
        "yf6": 2, "f6": 2, "f7": 2,
        "sp4": 3, "sp5": 3,
        "sp6": 4, "sp7": 4,
    }
    return fragment_graph(graph, assignment)


def figure5() -> Tuple[Pattern, DiGraph, Fragmentation]:
    """Query, graph and fragmentation of the Figure-5 scheduling example."""
    graph = figure5_graph()
    return figure5_query(), graph, figure5_fragmentation(graph)
