"""Classic graph algorithms used throughout the library.

Everything here is implemented from scratch (iteratively, so deep graphs do
not hit Python's recursion limit):

* :func:`tarjan_scc` -- strongly connected components (Tarjan, 1972), used to
  detect cyclic patterns/graphs (Section 5.1 cites Tarjan for exactly this).
* :func:`is_dag`, :func:`topological_order` -- DAG detection and ordering.
* :func:`topological_ranks` -- the paper's rank ``r(u)`` (Section 5.1):
  ``r(u) = 0`` for sinks, else ``1 + max(r(child))``.
* :func:`diameter` -- the longest shortest path over the *undirected*
  reachability closure, matching the paper's use for pattern queries.
* :func:`bfs_layers`, :func:`weakly_connected_components` -- used by the
  partitioners and generators.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Sequence, Set

from repro.errors import GraphError
from repro.graph.digraph import DiGraph, Node


def tarjan_scc(graph: DiGraph) -> List[List[Node]]:
    """Strongly connected components in completion (reverse topological) order.

    Iterative Tarjan: returns a list of components; each component is a list
    of nodes.  A component appears *after* every component it points to
    (sinks first), which is the order fixpoint solvers consume.
    """
    index: Dict[Node, int] = {}
    lowlink: Dict[Node, int] = {}
    on_stack: Set[Node] = set()
    stack: List[Node] = []
    components: List[List[Node]] = []
    counter = 0

    for root in graph.nodes():
        if root in index:
            continue
        # Each work item is (node, iterator position into successors).
        work = [(root, 0)]
        while work:
            node, child_idx = work.pop()
            if child_idx == 0:
                index[node] = counter
                lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            recursed = False
            successors = graph.successors(node)
            for i in range(child_idx, len(successors)):
                child = successors[i]
                if child not in index:
                    work.append((node, i + 1))
                    work.append((child, 0))
                    recursed = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if recursed:
                continue
            if lowlink[node] == index[node]:
                component: List[Node] = []
                while True:
                    top = stack.pop()
                    on_stack.discard(top)
                    component.append(top)
                    if top == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


def is_dag(graph: DiGraph) -> bool:
    """True iff ``graph`` has no directed cycle (all SCCs trivial, no self loop)."""
    for node in graph.nodes():
        if graph.has_edge(node, node):
            return False
    return all(len(c) == 1 for c in tarjan_scc(graph))


def topological_order(graph: DiGraph) -> List[Node]:
    """Kahn topological order; raises :class:`GraphError` on a cyclic graph."""
    in_deg = {node: graph.in_degree(node) for node in graph.nodes()}
    queue = deque(node for node, deg in in_deg.items() if deg == 0)
    order: List[Node] = []
    while queue:
        node = queue.popleft()
        order.append(node)
        for child in graph.successors(node):
            in_deg[child] -= 1
            if in_deg[child] == 0:
                queue.append(child)
    if len(order) != graph.n_nodes:
        raise GraphError("graph is cyclic; no topological order exists")
    return order


def topological_ranks(graph: DiGraph) -> Dict[Node, int]:
    """The paper's rank function on a DAG (Section 5.1).

    ``r(u) = 0`` if ``u`` has no child, else ``max(r(u')) + 1`` over children
    ``u'``.  Raises :class:`GraphError` if the graph is cyclic.
    """
    ranks: Dict[Node, int] = {}
    for node in reversed(topological_order(graph)):
        children = graph.successors(node)
        ranks[node] = 0 if not children else 1 + max(ranks[c] for c in children)
    return ranks


def bfs_layers(graph: DiGraph, sources: Iterable[Node], undirected: bool = False) -> Dict[Node, int]:
    """Hop distance from ``sources`` to every reachable node.

    With ``undirected=True`` edges are traversed in both directions, which is
    what the partitioners need for growing connected regions.
    """
    dist: Dict[Node, int] = {}
    queue: deque[Node] = deque()
    for src in sources:
        if src not in graph:
            raise GraphError(f"unknown source {src!r}")
        dist[src] = 0
        queue.append(src)
    while queue:
        node = queue.popleft()
        neighbours: List[Node] = list(graph.successors(node))
        if undirected:
            neighbours.extend(graph.predecessors(node))
        for nxt in neighbours:
            if nxt not in dist:
                dist[nxt] = dist[node] + 1
                queue.append(nxt)
    return dist


def diameter(graph: DiGraph) -> int:
    """Longest shortest (directed) path in the graph -- the paper's ``d``.

    Pattern queries are tiny, so all-pairs BFS is fine.  Unreachable pairs are
    ignored (the paper's patterns are connected, where this matches the usual
    definition).
    """
    best = 0
    for source in graph.nodes():
        dist = bfs_layers(graph, [source])
        if dist:
            best = max(best, max(dist.values()))
    return best


def weakly_connected_components(graph: DiGraph) -> List[Set[Node]]:
    """Connected components of the underlying undirected graph."""
    seen: Set[Node] = set()
    components: List[Set[Node]] = []
    for node in graph.nodes():
        if node in seen:
            continue
        reached = set(bfs_layers(graph, [node], undirected=True))
        seen |= reached
        components.append(reached)
    return components


def is_tree(graph: DiGraph) -> bool:
    """True iff ``graph`` is a rooted directed tree.

    That is: exactly one node with in-degree 0 (the root), every other node
    with in-degree exactly 1, and the whole graph weakly connected.  Trees are
    the precondition of the dGPMt algorithm (Section 5.2).
    """
    if graph.n_nodes == 0:
        return False
    roots = [node for node in graph.nodes() if graph.in_degree(node) == 0]
    if len(roots) != 1:
        return False
    if any(graph.in_degree(node) > 1 for node in graph.nodes()):
        return False
    return len(weakly_connected_components(graph)) == 1


def tree_root(graph: DiGraph) -> Node:
    """Root of a directed tree; raises :class:`GraphError` if not a tree."""
    if not is_tree(graph):
        raise GraphError("graph is not a rooted directed tree")
    return next(node for node in graph.nodes() if graph.in_degree(node) == 0)


def condensation(graph: DiGraph) -> DiGraph:
    """The DAG of strongly connected components.

    Node ``i`` of the result is component ``i`` (labeled by its index); there
    is an edge ``i -> j`` iff some edge of ``graph`` crosses from component
    ``i`` to component ``j``.
    """
    components = tarjan_scc(graph)
    component_of: Dict[Node, int] = {}
    for i, comp in enumerate(components):
        for node in comp:
            component_of[node] = i
    dag = DiGraph()
    for i in range(len(components)):
        dag.add_node(i, i)
    for u, v in graph.edges():
        cu, cv = component_of[u], component_of[v]
        if cu != cv:
            dag.add_edge(cu, cv)
    return dag


def reachable_from(graph: DiGraph, sources: Sequence[Node]) -> Set[Node]:
    """All nodes reachable from ``sources`` by directed paths (inclusive)."""
    return set(bfs_layers(graph, sources))
