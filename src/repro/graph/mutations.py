"""Typed mutation operations: the one vocabulary every layer speaks.

Historically the mutation API was a bare-tuple convention --
``("insert", u, v)``, ``("delete", u, v)``, ``("add_node", n, label[, fid])``
-- threaded through ``SimulationSession.apply``, ``MutateRequest.ops``, both
network clients, and the shard-worker command stream.  Tuples cannot carry
defaults, cannot be type-checked, and silently break when a new op (like
``remove_node``) grows a different arity.

These frozen dataclasses replace the tuples everywhere.  The legacy tuple
spelling is still accepted for one release via :func:`normalize_op`, which
emits a :class:`DeprecationWarning` and converts in place, so existing
callers keep working while they migrate.

Frozen: ops cross thread boundaries (the concurrent write queue), process
boundaries (resident-worker pickles), and the wire (protocol v2's safe
codec); an immutable op can never be observed half-built.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import ReproError
from repro.graph.digraph import Label, Node


@dataclass(frozen=True)
class MutationOp:
    """Base class for all graph mutation operations."""

    #: wire/dispatch tag; subclasses override with their canonical kind
    kind = ""

    def as_tuple(self) -> Tuple[object, ...]:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass(frozen=True)
class InsertEdge(MutationOp):
    """Insert edge ``(u, v)``; both endpoints must already exist."""

    u: Node
    v: Node
    kind = "insert"

    def as_tuple(self) -> Tuple[object, ...]:
        return ("insert", self.u, self.v)


@dataclass(frozen=True)
class DeleteEdge(MutationOp):
    """Delete the existing edge ``(u, v)``."""

    u: Node
    v: Node
    kind = "delete"

    def as_tuple(self) -> Tuple[object, ...]:
        return ("delete", self.u, self.v)


@dataclass(frozen=True)
class AddNode(MutationOp):
    """Add an isolated labeled node, optionally pinning its fragment."""

    node: Node
    label: Label
    fid: Optional[int] = None
    kind = "add_node"

    def as_tuple(self) -> Tuple[object, ...]:
        if self.fid is None:
            return ("add_node", self.node, self.label)
        return ("add_node", self.node, self.label, self.fid)


@dataclass(frozen=True)
class RemoveNode(MutationOp):
    """Remove ``node`` and every edge incident to it."""

    node: Node
    kind = "remove_node"

    def as_tuple(self) -> Tuple[object, ...]:
        return ("remove_node", self.node)


#: what callers may hand any ``apply``-style entry point
OpLike = Union[MutationOp, Sequence[object]]

_TUPLE_DEPRECATION = (
    "bare-tuple mutation ops are deprecated; pass "
    "repro.graph.mutations.{InsertEdge,DeleteEdge,AddNode,RemoveNode} "
    "instances instead (tuple support will be removed next release)"
)


def normalize_op(op: OpLike) -> MutationOp:
    """Coerce one op to its typed form, warning on the legacy tuple spelling."""
    if isinstance(op, MutationOp):
        return op
    if isinstance(op, (tuple, list)) and op and isinstance(op[0], str):
        warnings.warn(_TUPLE_DEPRECATION, DeprecationWarning, stacklevel=3)
        kind = op[0]
        if kind == "insert" and len(op) == 3:
            return InsertEdge(op[1], op[2])
        if kind == "delete" and len(op) == 3:
            return DeleteEdge(op[1], op[2])
        if kind == "add_node" and len(op) in (3, 4):
            fid = op[3] if len(op) == 4 else None
            if fid is not None and not isinstance(fid, int):
                raise ReproError(f"add_node fragment id must be an int, got {fid!r}")
            return AddNode(op[1], op[2], fid)
        if kind == "remove_node" and len(op) == 2:
            return RemoveNode(op[1])
        if kind in ("insert", "delete", "add_node", "remove_node"):
            raise ReproError(f"malformed mutation tuple: {tuple(op)!r}")
        raise ReproError(
            f"unknown update kind {kind!r} "
            "(known: delete, insert, add_node, remove_node)"
        )
    raise ReproError(
        f"unsupported mutation op {op!r}; expected a MutationOp instance "
        "or a legacy (kind, ...) tuple"
    )


def normalize_ops(ops: Iterable[OpLike]) -> List[MutationOp]:
    """Coerce a whole batch, preserving order."""
    return [normalize_op(op) for op in ops]
