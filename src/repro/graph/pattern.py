"""Pattern queries ``Q = (Vq, Eq, fv)`` (Section 2.1 of the paper).

A :class:`Pattern` is a small directed graph whose nodes carry the label that
matching data nodes must have.  It adds the query-side notions the algorithms
need:

* ``|Q| = |Vq| + |Eq|`` (the paper's query size),
* DAG detection (dGPMd requires a DAG query),
* the topological rank ``r(u)`` of query nodes (Section 5.1),
* the diameter ``d`` of the query (used in Theorem 3's bound).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Set, Tuple

from repro.errors import PatternError
from repro.graph import algorithms
from repro.graph.digraph import DiGraph, Label, Node


class Pattern:
    """A graph pattern query.

    Parameters
    ----------
    node_labels:
        Mapping ``query node -> required label`` (the function ``fv``).
    edges:
        Iterable of query edges ``(u, u')``.

    Examples
    --------
    The paper's Figure-1 query (a recommendation cycle plus a YB hub):

    >>> q = Pattern(
    ...     {"YB": "YB", "YF": "YF", "F": "F", "SP": "SP"},
    ...     [("YB", "YF"), ("YB", "F"), ("SP", "YF"), ("YF", "F"), ("F", "SP")],
    ... )
    >>> q.size
    9
    >>> q.is_dag()
    False
    """

    # __weakref__ lets serving layers keep weak per-pattern memos (e.g. the
    # session's canonical-form cache) without pinning patterns alive.
    __slots__ = ("_graph", "__weakref__")

    def __init__(
        self,
        node_labels: Mapping[Node, Label],
        edges: Iterable[Tuple[Node, Node]] = (),
    ) -> None:
        if not node_labels:
            raise PatternError("a pattern must have at least one query node")
        self._graph = DiGraph(dict(node_labels))
        for u, v in edges:
            if u not in self._graph or v not in self._graph:
                raise PatternError(f"query edge ({u!r}, {v!r}) uses unknown node")
            self._graph.add_edge(u, v)

    # ------------------------------------------------------------------
    # basic structure
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """``|Vq|``."""
        return self._graph.n_nodes

    @property
    def n_edges(self) -> int:
        """``|Eq|``."""
        return self._graph.n_edges

    @property
    def size(self) -> int:
        """``|Q| = |Vq| + |Eq|``."""
        return self._graph.size

    @property
    def shape(self) -> Tuple[int, int]:
        """``(|Vq|, |Eq|)`` -- the paper writes query sizes this way, e.g. (5, 10)."""
        return (self.n_nodes, self.n_edges)

    def nodes(self) -> Iterator[Node]:
        """Iterate over query nodes."""
        return self._graph.nodes()

    def edges(self) -> Iterator[Tuple[Node, Node]]:
        """Iterate over query edges."""
        return self._graph.edges()

    def label(self, u: Node) -> Label:
        """``fv(u)``, the label a match of ``u`` must carry."""
        return self._graph.label(u)

    def children(self, u: Node) -> List[Node]:
        """Query nodes ``u'`` with an edge ``(u, u')``."""
        return self._graph.successors(u)

    def parents(self, u: Node) -> List[Node]:
        """Query nodes ``u'`` with an edge ``(u', u)``."""
        return self._graph.predecessors(u)

    def __contains__(self, u: Node) -> bool:
        return u in self._graph

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pattern):
            return NotImplemented
        return self._graph == other._graph

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        return f"Pattern(|Vq|={self.n_nodes}, |Eq|={self.n_edges})"

    def as_digraph(self) -> DiGraph:
        """A copy of the underlying labeled digraph."""
        return self._graph.copy()

    def label_alphabet(self) -> Set[Label]:
        """Labels mentioned by the query."""
        return self._graph.label_alphabet()

    # ------------------------------------------------------------------
    # properties the distributed algorithms dispatch on
    # ------------------------------------------------------------------
    def is_dag(self) -> bool:
        """True iff the query has no directed cycle (precondition of dGPMd)."""
        return algorithms.is_dag(self._graph)

    def topological_ranks(self) -> Dict[Node, int]:
        """The paper's rank ``r(u)`` (Section 5.1); requires a DAG query."""
        if not self.is_dag():
            raise PatternError("topological ranks are only defined for DAG patterns")
        return algorithms.topological_ranks(self._graph)

    def diameter(self) -> int:
        """The diameter ``d`` of the query (longest shortest directed path)."""
        return algorithms.diameter(self._graph)

    def nodes_by_rank(self) -> List[List[Node]]:
        """Query nodes grouped by rank, index ``r`` holds nodes with ``r(u) = r``."""
        ranks = self.topological_ranks()
        height = max(ranks.values()) if ranks else 0
        groups: List[List[Node]] = [[] for _ in range(height + 1)]
        for u, r in ranks.items():
            groups[r].append(u)
        return groups


def pattern_from_digraph(graph: DiGraph) -> Pattern:
    """Convert a labeled digraph into a :class:`Pattern` (labels become ``fv``)."""
    return Pattern(graph.labels(), graph.edges())
