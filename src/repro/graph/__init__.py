"""Graph substrate: labeled digraphs, pattern queries, algorithms, generators.

This subpackage is self-contained (no dependency on the distributed layers) and
provides everything the paper's data model needs:

* :class:`~repro.graph.digraph.DiGraph` -- node-labeled directed data graphs
  ``G = (V, E, L)`` (Section 2.1 of the paper).
* :class:`~repro.graph.pattern.Pattern` -- pattern queries ``Q = (Vq, Eq, fv)``.
* :mod:`~repro.graph.algorithms` -- Tarjan SCC, topological ranks, BFS,
  diameter; the building blocks for dGPMd and the partitioners.
* :mod:`~repro.graph.generators` -- synthetic graphs (web-like, citation DAG,
  trees, uniform random) used by the experiments.
* :mod:`~repro.graph.examples` -- the paper's running examples (Figures 1, 2, 5).
"""

from repro.graph.digraph import DiGraph
from repro.graph.pattern import Pattern

__all__ = ["DiGraph", "Pattern"]
