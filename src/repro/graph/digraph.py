"""Node-labeled directed graphs (the paper's data graphs ``G = (V, E, L)``).

The representation is a plain adjacency-list digraph with:

* hashable node identifiers (ints in all generators, but any hashable works),
* one label per node, drawn from an arbitrary alphabet ``Sigma``,
* O(1) access to successors, predecessors, and degrees,
* cheap induced-subgraph extraction (used heavily by the fragmentation layer).

Edge labels from the paper are supported through the standard reduction the
paper itself describes (Section 2.1): insert a dummy node carrying the edge
label.  :func:`reify_edge_labels` implements that reduction.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Mapping, Set, Tuple

from repro.errors import GraphError

Node = Hashable
Label = Hashable
Edge = Tuple[Node, Node]


class DiGraph:
    """A node-labeled directed graph.

    Parameters
    ----------
    nodes:
        Optional mapping ``node -> label`` to pre-populate the graph.
    edges:
        Optional iterable of ``(u, v)`` pairs; endpoints must already be in
        ``nodes`` (or added first via :meth:`add_node`).

    Examples
    --------
    >>> g = DiGraph()
    >>> g.add_node(1, "A"); g.add_node(2, "B")
    >>> g.add_edge(1, 2)
    >>> sorted(g.successors(1))
    [2]
    >>> g.label(2)
    'B'
    """

    __slots__ = ("_labels", "_succ", "_pred", "_n_edges")

    def __init__(
        self,
        nodes: Mapping[Node, Label] | None = None,
        edges: Iterable[Edge] | None = None,
    ) -> None:
        self._labels: Dict[Node, Label] = {}
        self._succ: Dict[Node, List[Node]] = {}
        self._pred: Dict[Node, List[Node]] = {}
        self._n_edges = 0
        if nodes:
            for node, label in nodes.items():
                self.add_node(node, label)
        if edges:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node, label: Label) -> None:
        """Add ``node`` with ``label``; relabels if the node already exists."""
        if node not in self._labels:
            self._succ[node] = []
            self._pred[node] = []
        self._labels[node] = label

    def add_edge(self, u: Node, v: Node) -> None:
        """Add the directed edge ``(u, v)``.  Parallel edges are ignored."""
        if u not in self._labels:
            raise GraphError(f"edge source {u!r} is not a node")
        if v not in self._labels:
            raise GraphError(f"edge target {v!r} is not a node")
        if v in self._succ[u]:
            return
        self._succ[u].append(v)
        self._pred[v].append(u)
        self._n_edges += 1

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the directed edge ``(u, v)``; raises if absent."""
        try:
            self._succ[u].remove(v)
            self._pred[v].remove(u)
        except (KeyError, ValueError):
            raise GraphError(f"edge ({u!r}, {v!r}) is not in the graph") from None
        self._n_edges -= 1

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._labels

    def __len__(self) -> int:
        return len(self._labels)

    @property
    def n_nodes(self) -> int:
        """Number of nodes ``|V|``."""
        return len(self._labels)

    @property
    def n_edges(self) -> int:
        """Number of edges ``|E|``."""
        return self._n_edges

    @property
    def size(self) -> int:
        """``|G| = |V| + |E|``, the paper's size measure."""
        return self.n_nodes + self.n_edges

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes."""
        return iter(self._labels)

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges as ``(u, v)`` pairs."""
        for u, targets in self._succ.items():
            for v in targets:
                yield (u, v)

    def label(self, node: Node) -> Label:
        """Return ``L(node)``."""
        try:
            return self._labels[node]
        except KeyError:
            raise GraphError(f"unknown node {node!r}") from None

    def labels(self) -> Mapping[Node, Label]:
        """Read-only view of the full labeling ``L``."""
        return dict(self._labels)

    def label_alphabet(self) -> Set[Label]:
        """The set of labels actually used in the graph."""
        return set(self._labels.values())

    def has_edge(self, u: Node, v: Node) -> bool:
        """True iff ``(u, v)`` is an edge."""
        return u in self._succ and v in self._succ[u]

    def successors(self, node: Node) -> List[Node]:
        """Children of ``node`` (targets of its out-edges)."""
        try:
            return self._succ[node]
        except KeyError:
            raise GraphError(f"unknown node {node!r}") from None

    def predecessors(self, node: Node) -> List[Node]:
        """Parents of ``node`` (sources of its in-edges)."""
        try:
            return self._pred[node]
        except KeyError:
            raise GraphError(f"unknown node {node!r}") from None

    def out_degree(self, node: Node) -> int:
        """Number of out-edges of ``node``."""
        return len(self.successors(node))

    def in_degree(self, node: Node) -> int:
        """Number of in-edges of ``node``."""
        return len(self.predecessors(node))

    def nodes_with_label(self, label: Label) -> List[Node]:
        """All nodes carrying ``label`` (linear scan; generators build indexes)."""
        return [v for v, lab in self._labels.items() if lab == label]

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def induced_subgraph(self, keep: Iterable[Node]) -> "DiGraph":
        """Subgraph induced by ``keep``: those nodes and all edges among them."""
        keep_set = set(keep)
        sub = DiGraph()
        for node in keep_set:
            sub.add_node(node, self.label(node))
        for node in keep_set:
            for succ in self._succ[node]:
                if succ in keep_set:
                    sub.add_edge(node, succ)
        return sub

    def reversed(self) -> "DiGraph":
        """A new graph with every edge direction flipped."""
        rev = DiGraph()
        for node, lab in self._labels.items():
            rev.add_node(node, lab)
        for u, v in self.edges():
            rev.add_edge(v, u)
        return rev

    def copy(self) -> "DiGraph":
        """A deep structural copy."""
        return DiGraph(self._labels, self.edges())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return self._labels == other._labels and {
            (u, v) for u, v in self.edges()
        } == {(u, v) for u, v in other.edges()}

    def __hash__(self) -> int:  # graphs are mutable; identity hash
        return id(self)

    def __repr__(self) -> str:
        return f"DiGraph(n_nodes={self.n_nodes}, n_edges={self.n_edges})"


def reify_edge_labels(
    nodes: Mapping[Node, Label],
    labeled_edges: Iterable[Tuple[Node, Node, Label]],
) -> DiGraph:
    """Build a node-labeled graph from edge-labeled input.

    Implements the paper's reduction (Section 2.1): each labeled edge
    ``(u, v, ell)`` becomes ``u -> dummy -> v`` where the dummy node carries
    label ``ell``.  Unlabeled edges (``ell is None``) stay direct.
    """
    graph = DiGraph(nodes)
    counter = 0
    for u, v, ell in labeled_edges:
        if ell is None:
            graph.add_edge(u, v)
            continue
        dummy = ("__edge__", counter)
        counter += 1
        graph.add_node(dummy, ell)
        graph.add_edge(u, dummy)
        graph.add_edge(dummy, v)
    return graph
