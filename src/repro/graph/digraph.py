"""Node-labeled directed graphs (the paper's data graphs ``G = (V, E, L)``).

The representation is a plain adjacency-list digraph with:

* hashable node identifiers (ints in all generators, but any hashable works),
* one label per node, drawn from an arbitrary alphabet ``Sigma``,
* O(1) access to successors, predecessors, degrees, and edge membership
  (adjacency lists keep deterministic iteration order; shadow sets answer
  membership),
* cheap induced-subgraph extraction (used heavily by the fragmentation layer),
* lazy label indexes (label -> nodes, node -> successor-label counts) that are
  built on first use and *maintained in place* by edge insertions/deletions
  and node additions/removals (a relabel still drops them -- it would touch
  every predecessor's counts), so resident graphs absorbing a mutation stream
  never rescan themselves; the first-use build is race-free (double-checked
  under a per-instance lock), so concurrent readers of a quiescent graph --
  the session layer's thread backend -- never observe a half-built index,
* a monotonically increasing :attr:`~DiGraph.version` that mutation bumps --
  the session layer uses it to detect stale caches.

Edge labels from the paper are supported through the standard reduction the
paper itself describes (Section 2.1): insert a dummy node carrying the edge
label.  :func:`reify_edge_labels` implements that reduction.
"""

from __future__ import annotations

import threading
from types import MappingProxyType
from typing import Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from repro.errors import GraphError

Node = Hashable
Label = Hashable
Edge = Tuple[Node, Node]


class DiGraph:
    """A node-labeled directed graph.

    Parameters
    ----------
    nodes:
        Optional mapping ``node -> label`` to pre-populate the graph.
    edges:
        Optional iterable of ``(u, v)`` pairs; endpoints must already be in
        ``nodes`` (or added first via :meth:`add_node`).

    Examples
    --------
    >>> g = DiGraph()
    >>> g.add_node(1, "A"); g.add_node(2, "B")
    >>> g.add_edge(1, 2)
    >>> sorted(g.successors(1))
    [2]
    >>> g.label(2)
    'B'
    """

    __slots__ = (
        "_labels",
        "_succ",
        "_succ_set",
        "_pred",
        "_n_edges",
        "_version",
        "_label_index",
        "_succ_label_counts",
        "_index_lock",
    )

    def __init__(
        self,
        nodes: Mapping[Node, Label] | None = None,
        edges: Iterable[Edge] | None = None,
    ) -> None:
        self._labels: Dict[Node, Label] = {}
        self._succ: Dict[Node, List[Node]] = {}
        #: shadow sets mirroring ``_succ`` for O(1) membership tests
        self._succ_set: Dict[Node, Set[Node]] = {}
        self._pred: Dict[Node, List[Node]] = {}
        self._n_edges = 0
        self._version = 0
        #: lazy indexes; ``None`` until first use, dropped on invalidation
        self._label_index: Optional[Dict[Label, List[Node]]] = None
        self._succ_label_counts: Optional[Dict[Node, Dict[Label, int]]] = None
        #: guards the first-use builds above against concurrent readers
        self._index_lock = threading.Lock()
        if nodes:
            for node, label in nodes.items():
                self.add_node(node, label)
        if edges:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node, label: Label) -> None:
        """Add ``node`` with ``label``; relabels if the node already exists."""
        if node not in self._labels:
            self._succ[node] = []
            self._succ_set[node] = set()
            self._pred[node] = []
            self._labels[node] = label
            self._version += 1
            if self._label_index is not None:
                self._label_index.setdefault(label, []).append(node)
            if self._succ_label_counts is not None:
                self._succ_label_counts[node] = {}
            return
        if self._labels[node] == label:
            return
        self._labels[node] = label
        self._version += 1
        self._label_index = None
        # A relabel changes the successor-label counts of the predecessors.
        self._succ_label_counts = None

    def add_edge(self, u: Node, v: Node) -> None:
        """Add the directed edge ``(u, v)``.  Parallel edges are ignored."""
        if u not in self._labels:
            raise GraphError(f"edge source {u!r} is not a node")
        if v not in self._labels:
            raise GraphError(f"edge target {v!r} is not a node")
        if v in self._succ_set[u]:
            return
        self._succ[u].append(v)
        self._succ_set[u].add(v)
        self._pred[v].append(u)
        self._n_edges += 1
        self._version += 1
        if self._succ_label_counts is not None:
            per = self._succ_label_counts[u]
            lab = self._labels[v]
            per[lab] = per.get(lab, 0) + 1

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the directed edge ``(u, v)``; raises if absent."""
        try:
            self._succ[u].remove(v)
            self._pred[v].remove(u)
        except (KeyError, ValueError):
            raise GraphError(f"edge ({u!r}, {v!r}) is not in the graph") from None
        self._succ_set[u].discard(v)
        self._n_edges -= 1
        self._version += 1
        if self._succ_label_counts is not None:
            per = self._succ_label_counts[u]
            lab = self._labels[v]
            remaining = per.get(lab, 0) - 1
            if remaining > 0:
                per[lab] = remaining
            else:
                per.pop(lab, None)

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and every incident edge; raises if unknown.

        Used by the fragmentation maintenance layer to prune a virtual node
        whose last crossing edge was deleted.
        """
        if node not in self._labels:
            raise GraphError(f"unknown node {node!r}")
        for v in list(self._succ[node]):
            self.remove_edge(node, v)
        for p in list(self._pred[node]):
            self.remove_edge(p, node)
        label = self._labels.pop(node)
        del self._succ[node]
        del self._succ_set[node]
        del self._pred[node]
        self._version += 1
        if self._label_index is not None:
            # A warm index always lists the node under its label; a miss here
            # is index corruption and must fail at the corruption site.
            bucket = self._label_index[label]
            bucket.remove(node)
            if not bucket:
                del self._label_index[label]
        if self._succ_label_counts is not None:
            self._succ_label_counts.pop(node, None)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._labels

    def __len__(self) -> int:
        return len(self._labels)

    @property
    def n_nodes(self) -> int:
        """Number of nodes ``|V|``."""
        return len(self._labels)

    @property
    def n_edges(self) -> int:
        """Number of edges ``|E|``."""
        return self._n_edges

    @property
    def size(self) -> int:
        """``|G| = |V| + |E|``, the paper's size measure."""
        return self.n_nodes + self.n_edges

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes."""
        return iter(self._labels)

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges as ``(u, v)`` pairs."""
        for u, targets in self._succ.items():
            for v in targets:
                yield (u, v)

    def label(self, node: Node) -> Label:
        """Return ``L(node)``."""
        try:
            return self._labels[node]
        except KeyError:
            raise GraphError(f"unknown node {node!r}") from None

    def labels(self) -> Mapping[Node, Label]:
        """Read-only view of the full labeling ``L`` (no copy; live view)."""
        return MappingProxyType(self._labels)

    def label_alphabet(self) -> Set[Label]:
        """The set of labels actually used in the graph."""
        return set(self._labels.values())

    def has_edge(self, u: Node, v: Node) -> bool:
        """True iff ``(u, v)`` is an edge (O(1) via the shadow sets)."""
        return u in self._succ_set and v in self._succ_set[u]

    def successors(self, node: Node) -> List[Node]:
        """Children of ``node`` (targets of its out-edges)."""
        try:
            return self._succ[node]
        except KeyError:
            raise GraphError(f"unknown node {node!r}") from None

    def predecessors(self, node: Node) -> List[Node]:
        """Parents of ``node`` (sources of its in-edges)."""
        try:
            return self._pred[node]
        except KeyError:
            raise GraphError(f"unknown node {node!r}") from None

    def out_degree(self, node: Node) -> int:
        """Number of out-edges of ``node``."""
        return len(self.successors(node))

    def in_degree(self, node: Node) -> int:
        """Number of in-edges of ``node``."""
        return len(self.predecessors(node))

    def nodes_with_label(self, label: Label) -> List[Node]:
        """All nodes carrying ``label``, in insertion order.

        Served from a lazy label index built on first call and maintained in
        place by node additions/removals (dropped only on relabel), so
        resident graphs answer repeated queries in O(answer).  The build is
        double-checked under :attr:`_index_lock`: concurrent first calls on a
        quiescent graph build once and never see a partial index.
        """
        if self._label_index is None:
            with self._index_lock:
                if self._label_index is None:
                    index: Dict[Label, List[Node]] = {}
                    for v, lab in self._labels.items():
                        index.setdefault(lab, []).append(v)
                    self._label_index = index
        return list(self._label_index.get(label, ()))

    def successor_label_counts(self, node: Node) -> Mapping[Label, int]:
        """``label -> |{w in succ(node) : L(w) = label}|`` for ``node``.

        Lazily computed for the whole graph on first call and patched in
        place by edge mutations (dropped only on relabel); lets per-query
        evaluation state seed its HHK counters without walking adjacency
        lists even while the graph absorbs an update stream.
        """
        if self._succ_label_counts is None:
            with self._index_lock:
                if self._succ_label_counts is None:
                    counts: Dict[Node, Dict[Label, int]] = {}
                    labels = self._labels
                    for v, succs in self._succ.items():
                        per: Dict[Label, int] = {}
                        for w in succs:
                            lab = labels[w]
                            per[lab] = per.get(lab, 0) + 1
                        counts[v] = per
                    self._succ_label_counts = counts
        try:
            return MappingProxyType(self._succ_label_counts[node])
        except KeyError:
            raise GraphError(f"unknown node {node!r}") from None

    def warm_indexes(self) -> None:
        """Force both lazy indexes now (they otherwise build on first use)."""
        if self._labels:
            self.nodes_with_label(next(iter(self._labels.values())))
            self.successor_label_counts(next(iter(self._labels)))

    @property
    def version(self) -> int:
        """Mutation counter: bumped by every node/edge/label change.

        Consumers (e.g. the session layer) snapshot it to detect staleness of
        anything derived from the graph.
        """
        return self._version

    def dense_csr(self) -> tuple:
        """Columnar snapshot of the graph over dense node ids.

        Returns ``(nodes, index, fwd_indptr, fwd_indices, rev_indptr,
        rev_indices)``: ``nodes`` is a tuple mapping dense id -> node (the
        graph's insertion order, so the view is deterministic), ``index`` the
        inverse dict, and the two ``(indptr, indices)`` pairs are CSR
        adjacency (successors) and reverse CSR adjacency (predecessors) as
        numpy int64 arrays.  The snapshot is immutable and decoupled from the
        graph: later mutations do not touch it (consumers key their caches on
        :attr:`version`).

        Requires numpy (the array engine's dependency); the dict-based
        engine never calls this.
        """
        try:
            import numpy as np
        except ImportError:  # pragma: no cover - exercised via monkeypatch
            raise RuntimeError(
                "DiGraph.dense_csr requires numpy, which is not installed; "
                "install numpy or use the dict engine"
            ) from None
        nodes = tuple(self._labels)
        index = {node: i for i, node in enumerate(nodes)}
        n = len(nodes)
        fwd_indptr = np.zeros(n + 1, dtype=np.int64)
        rev_indptr = np.zeros(n + 1, dtype=np.int64)
        for i, node in enumerate(nodes):
            fwd_indptr[i + 1] = fwd_indptr[i] + len(self._succ[node])
            rev_indptr[i + 1] = rev_indptr[i] + len(self._pred[node])
        fwd_indices = np.fromiter(
            (index[w] for node in nodes for w in self._succ[node]),
            dtype=np.int64,
            count=int(fwd_indptr[-1]),
        )
        rev_indices = np.fromiter(
            (index[w] for node in nodes for w in self._pred[node]),
            dtype=np.int64,
            count=int(rev_indptr[-1]),
        )
        return nodes, index, fwd_indptr, fwd_indices, rev_indptr, rev_indices

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def induced_subgraph(self, keep: Iterable[Node]) -> "DiGraph":
        """Subgraph induced by ``keep``: those nodes and all edges among them."""
        keep_set = set(keep)
        sub = DiGraph()
        for node in keep_set:
            sub.add_node(node, self.label(node))
        for node in keep_set:
            for succ in self._succ[node]:
                if succ in keep_set:
                    sub.add_edge(node, succ)
        return sub

    def reversed(self) -> "DiGraph":
        """A new graph with every edge direction flipped."""
        rev = DiGraph()
        for node, lab in self._labels.items():
            rev.add_node(node, lab)
        for u, v in self.edges():
            rev.add_edge(v, u)
        return rev

    def copy(self) -> "DiGraph":
        """A deep structural copy."""
        return DiGraph(self._labels, self.edges())

    # ------------------------------------------------------------------
    # pickling (graphs ship to worker processes; locks cannot)
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, object]:
        return {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot != "_index_lock"
        }

    def __setstate__(self, state: Dict[str, object]) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)
        self._index_lock = threading.Lock()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return self._labels == other._labels and {
            (u, v) for u, v in self.edges()
        } == {(u, v) for u, v in other.edges()}

    def __hash__(self) -> int:  # graphs are mutable; identity hash
        return id(self)

    def __repr__(self) -> str:
        return f"DiGraph(n_nodes={self.n_nodes}, n_edges={self.n_edges})"


def reify_edge_labels(
    nodes: Mapping[Node, Label],
    labeled_edges: Iterable[Tuple[Node, Node, Label]],
) -> DiGraph:
    """Build a node-labeled graph from edge-labeled input.

    Implements the paper's reduction (Section 2.1): each labeled edge
    ``(u, v, ell)`` becomes ``u -> dummy -> v`` where the dummy node carries
    label ``ell``.  Unlabeled edges (``ell is None``) stay direct.
    """
    graph = DiGraph(nodes)
    counter = 0
    for u, v, ell in labeled_edges:
        if ell is None:
            graph.add_edge(u, v)
            continue
        dummy = ("__edge__", counter)
        counter += 1
        graph.add_node(dummy, ell)
        graph.add_edge(u, dummy)
        graph.add_edge(dummy, v)
    return graph
