"""Synthetic data-graph generators for the experiments (Section 6).

The paper evaluates on a Yahoo web graph, a Citation DAG, and synthetic
graphs from its own generator ("controlled by |V| and |E|, labels from a set
of 15 labels").  None of those datasets ship with the paper, so this module
provides laptop-scale stand-ins with the structural properties the
experiments actually exercise (see DESIGN.md §2):

* :func:`random_labeled_graph` -- the paper's synthetic generator: uniform
  random edges, ``n_labels`` labels (default 15).
* :func:`web_graph` -- Yahoo stand-in: scale-free in-degrees (preferential
  attachment) with *locality* (most edges stay within an id neighbourhood),
  domain-style labels.  Locality matters: it is what makes low crossing-edge
  partitions achievable, as for the real, geo-distributed graphs the paper
  targets.
* :func:`citation_dag` -- Citation stand-in: papers cite strictly older
  papers (a DAG by construction), layered so query diameter sweeps are
  meaningful, venue labels.
* :func:`random_tree` -- rooted labeled trees for dGPMt (Section 5.2).

All generators are deterministic in ``seed``.  Node ids are ``0..n-1``.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.errors import GraphError
from repro.graph.digraph import DiGraph

#: Default label alphabet size; the paper's synthetic generator uses 15.
DEFAULT_N_LABELS = 15


def _label_alphabet(n_labels: int, prefix: str = "L") -> List[str]:
    return [f"{prefix}{i}" for i in range(n_labels)]


def random_labeled_graph(
    n_nodes: int,
    n_edges: int,
    n_labels: int = DEFAULT_N_LABELS,
    seed: int = 0,
    locality: float = 0.0,
    window: Optional[int] = None,
) -> DiGraph:
    """Uniform random digraph with ``n_labels`` node labels.

    With ``locality > 0``, that fraction of edges lands within an id window
    around the source (default window: ``n_nodes // 50``), giving the graph a
    block-community structure that partitioners can exploit.  ``locality=0``
    reproduces the paper's fully uniform generator.
    """
    if n_nodes <= 0:
        raise GraphError("need at least one node")
    rng = random.Random(seed)
    labels = _label_alphabet(n_labels)
    graph = DiGraph({i: labels[rng.randrange(n_labels)] for i in range(n_nodes)})
    window = window or max(2, n_nodes // 50)
    attempts = 0
    max_attempts = 20 * n_edges + 100
    while graph.n_edges < n_edges and attempts < max_attempts:
        attempts += 1
        u = rng.randrange(n_nodes)
        if rng.random() < locality:
            v = (u + rng.randint(-window, window)) % n_nodes
        else:
            v = rng.randrange(n_nodes)
        if u != v:
            graph.add_edge(u, v)
    return graph


def web_graph(
    n_nodes: int,
    n_edges: int,
    n_labels: int = DEFAULT_N_LABELS,
    seed: int = 0,
    locality: float = 0.8,
    window: Optional[int] = None,
    hub_cap: Optional[int] = None,
) -> DiGraph:
    """Scale-free web-like digraph (Yahoo stand-in).

    Edges attach preferentially to already-popular targets (heavy-tailed
    in-degree, like hyperlink graphs); ``locality`` of them stay within an id
    window (site-internal links).  Labels model page domains, skewed so a few
    domains dominate -- pattern candidates are then label-selective, as with
    the paper's ``domain = '.uk'`` conditions.
    """
    if n_nodes <= 0:
        raise GraphError("need at least one node")
    rng = random.Random(seed)
    labels = _label_alphabet(n_labels, prefix="dom")
    # Zipf-ish label skew: label i gets weight 1/(i+1).
    weights = [1.0 / (i + 1) for i in range(n_labels)]
    graph = DiGraph(
        {i: rng.choices(labels, weights)[0] for i in range(n_nodes)}
    )
    window = window or max(2, n_nodes // 256)
    # Long-range links concentrate on a small hub set that grows
    # preferentially (and slowly) -- cross-site hyperlinks target popular
    # pages.  A fixed ``hub_cap`` (plus a fixed ``window``) keeps the
    # boundary-node population constant as the graph grows, the regime of
    # the paper's Exp-3 scalability claims (see EXPERIMENTS.md).
    pool: List[int] = [rng.randrange(n_nodes) for _ in range(max(4, n_nodes // 100))]
    pool_cap = hub_cap if hub_cap is not None else max(8, n_nodes // 8)
    attempts = 0
    max_attempts = 20 * n_edges + 100
    while graph.n_edges < n_edges and attempts < max_attempts:
        attempts += 1
        u = rng.randrange(n_nodes)
        if rng.random() < locality:
            v = (u + rng.randint(-window, window)) % n_nodes
        else:
            v = pool[rng.randrange(len(pool))]
        if u == v:
            continue
        before = graph.n_edges
        graph.add_edge(u, v)
        if graph.n_edges > before and len(pool) < pool_cap and rng.random() < 0.05:
            pool.append(v)  # rich get richer
    return graph


def citation_dag(
    n_nodes: int,
    n_edges: int,
    n_labels: int = DEFAULT_N_LABELS,
    seed: int = 0,
    n_layers: int = 24,
    locality: float = 0.85,
) -> DiGraph:
    """Layered citation-style DAG (Citation stand-in).

    Node ids increase with publication time; edges (citations) go from newer
    to strictly older nodes, so the graph is a DAG by construction.  Nodes are
    organized in ``n_layers`` eras; ``locality`` of citations target the few
    immediately preceding eras, giving the long directed paths that diameter-
    ``d`` query sweeps (Exp-2) need.  Labels model venues.
    """
    if n_nodes <= 1:
        raise GraphError("need at least two nodes")
    rng = random.Random(seed)
    labels = _label_alphabet(n_labels, prefix="venue")
    graph = DiGraph({i: labels[rng.randrange(n_labels)] for i in range(n_nodes)})
    layer_size = max(1, n_nodes // n_layers)
    # Long-range citations concentrate on seminal (well-cited) papers.
    classics: List[int] = [rng.randrange(max(1, n_nodes // 4)) for _ in range(max(4, n_nodes // 100))]
    attempts = 0
    max_attempts = 20 * n_edges + 100
    while graph.n_edges < n_edges and attempts < max_attempts:
        attempts += 1
        u = rng.randrange(1, n_nodes)
        if rng.random() < locality:
            lo = max(0, u - 2 * layer_size)
            v = rng.randrange(lo, u)
        else:
            v = classics[rng.randrange(len(classics))]
            if v >= u:
                continue
        graph.add_edge(u, v)  # newer cites older: u > v always, hence acyclic
        if v < u and len(classics) < n_nodes and rng.random() < 0.1:
            classics.append(v)
    return graph


def random_tree(
    n_nodes: int,
    n_labels: int = DEFAULT_N_LABELS,
    seed: int = 0,
    max_children: int = 4,
) -> DiGraph:
    """Random rooted labeled tree (edges parent -> child); root is node 0."""
    if n_nodes <= 0:
        raise GraphError("need at least one node")
    rng = random.Random(seed)
    labels = _label_alphabet(n_labels)
    graph = DiGraph({i: labels[rng.randrange(n_labels)] for i in range(n_nodes)})
    child_count = [0] * n_nodes
    for i in range(1, n_nodes):
        while True:
            parent = rng.randrange(0, i)
            if child_count[parent] < max_children:
                break
        graph.add_edge(parent, i)
        child_count[parent] += 1
    return graph


def contiguous_block_assignment(graph: DiGraph, n_fragments: int) -> dict:
    """Assign integer-id nodes to fragments by contiguous id blocks.

    For the locality-structured generators above this yields low crossing
    ratios, mimicking a locality-aware partitioner; combine with
    :func:`repro.partition.refine_to_vf_ratio` to hit the paper's
    ``|Vf|/|V|`` targets from below.
    """
    n = graph.n_nodes
    if n < n_fragments:
        raise GraphError("fewer nodes than fragments")
    return {node: min(int(node) * n_fragments // n, n_fragments - 1) for node in graph.nodes()}
