"""Graph serialization: JSON documents and labeled edge lists.

Real deployments load fragments from storage; these round-trip formats make
the examples reproducible from files and give the Match baseline's "ship the
whole graph" cost a concrete on-disk analogue.

Formats
-------
* **JSON**: ``{"nodes": {"id": "label", ...}, "edges": [["u", "v"], ...]}``.
  Node ids are stringified on write; :func:`load_json` keeps them as strings
  unless ``int_ids=True``.
* **Edge list**: one ``u<TAB>v`` pair per line, preceded by a node section
  ``#node<TAB>id<TAB>label`` -- the common exchange format for web/citation
  datasets like the paper's Yahoo and Citation inputs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import GraphError
from repro.graph.digraph import DiGraph

PathLike = Union[str, Path]


def dump_json(graph: DiGraph, path: PathLike) -> None:
    """Write ``graph`` as a JSON document."""
    doc = {
        "nodes": {str(v): graph.label(v) for v in graph.nodes()},
        "edges": [[str(u), str(v)] for u, v in graph.edges()],
    }
    Path(path).write_text(json.dumps(doc, indent=0, sort_keys=True))


def load_json(path: PathLike, int_ids: bool = False) -> DiGraph:
    """Read a graph written by :func:`dump_json`."""
    try:
        doc = json.loads(Path(path).read_text())
        nodes = doc["nodes"]
        edges = doc["edges"]
    except (OSError, KeyError, ValueError) as exc:
        raise GraphError(f"cannot load graph from {path!r}: {exc}") from exc
    convert = (lambda s: int(s)) if int_ids else (lambda s: s)
    graph = DiGraph({convert(k): lab for k, lab in nodes.items()})
    for u, v in edges:
        graph.add_edge(convert(u), convert(v))
    return graph


def dump_edgelist(graph: DiGraph, path: PathLike) -> None:
    """Write ``graph`` as a tab-separated node+edge list."""
    lines = [f"#node\t{v}\t{graph.label(v)}" for v in graph.nodes()]
    lines.extend(f"{u}\t{v}" for u, v in graph.edges())
    Path(path).write_text("\n".join(lines) + "\n")


def load_edgelist(path: PathLike, int_ids: bool = False) -> DiGraph:
    """Read a graph written by :func:`dump_edgelist`."""
    convert = (lambda s: int(s)) if int_ids else (lambda s: s)
    graph = DiGraph()
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise GraphError(f"cannot load graph from {path!r}: {exc}") from exc
    edge_lines = []
    for line_no, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        parts = line.split("\t")
        if parts[0] == "#node":
            if len(parts) != 3:
                raise GraphError(f"{path}:{line_no}: malformed node line")
            graph.add_node(convert(parts[1]), parts[2])
        else:
            if len(parts) != 2:
                raise GraphError(f"{path}:{line_no}: malformed edge line")
            edge_lines.append((convert(parts[0]), convert(parts[1])))
    for u, v in edge_lines:
        graph.add_edge(u, v)
    return graph


def serialized_size_bytes(graph: DiGraph) -> int:
    """Length of the JSON encoding -- a concrete 'ship the graph' cost."""
    doc = {
        "nodes": {str(v): graph.label(v) for v in graph.nodes()},
        "edges": [[str(u), str(v)] for u, v in graph.edges()],
    }
    return len(json.dumps(doc))
