"""Optional networkx interoperability.

The library's own :class:`~repro.graph.digraph.DiGraph` is the native
representation; these converters let users bring networkx graphs in (and
take results out) without networkx ever becoming a core dependency.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.errors import GraphError
from repro.graph.digraph import DiGraph


def _require_networkx() -> Any:
    try:
        import networkx
    except ImportError as exc:  # pragma: no cover - environment dependent
        raise GraphError("networkx is not installed; `pip install networkx`") from exc
    return networkx


def from_networkx(
    nx_graph: Any, label_attr: str = "label", default_label: Hashable = "_"
) -> DiGraph:
    """Convert a ``networkx.DiGraph`` into a repro :class:`DiGraph`.

    Node labels are read from the ``label_attr`` node attribute; nodes
    without it get ``default_label``.
    """
    networkx = _require_networkx()
    if not isinstance(nx_graph, networkx.DiGraph):
        raise GraphError("from_networkx expects a networkx.DiGraph")
    graph = DiGraph()
    for node, data in nx_graph.nodes(data=True):
        graph.add_node(node, data.get(label_attr, default_label))
    for u, v in nx_graph.edges():
        graph.add_edge(u, v)
    return graph


def to_networkx(graph: DiGraph, label_attr: str = "label") -> Any:
    """Convert a repro :class:`DiGraph` into a ``networkx.DiGraph``."""
    networkx = _require_networkx()
    out = networkx.DiGraph()
    for node in graph.nodes():
        out.add_node(node, **{label_attr: graph.label(node)})
    out.add_edges_from(graph.edges())
    return out
