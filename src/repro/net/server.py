"""The asyncio front door: many client connections, one serving stack.

:class:`NetworkSessionServer` listens on a TCP socket, speaks the frame
protocol of :mod:`repro.net.protocol`, and feeds every query into
:meth:`ConcurrentSessionServer.submit` -- the asyncio loop never computes a
relation itself.  Queries therefore keep the whole PR-3 contract: they run
concurrently under the read lock, mutation batches apply at quiescent
points, and every reply carries the mutation stamp its answer observed, so
a network client gets exactly the snapshot semantics an in-process caller
gets.

Concurrency model
-----------------

* Each connection has one reader coroutine; each request becomes its own
  task, so a connection can pipeline (the asyncio client keys replies by
  the frame ``seq``) and a slow query never blocks a cheap one -- on the
  same connection or across connections.
* Query futures from ``submit()`` are awaited with
  :func:`asyncio.wrap_future`; mutation batches and stats snapshots (which
  block on the writer protocol) run through the loop's default thread-pool
  executor.  The event loop only ever parses frames and pickles replies.
* Per-request failures travel back as ``ERROR`` frames carrying the pickled
  exception; the connection stays usable.  Only a framing violation (bad
  magic, oversized length...) hangs up, because byte-stream framing cannot
  be resynchronized.

Standing queries (protocol v2)
------------------------------

A ``SUBSCRIBE`` frame registers its query with the serving stack's
subscription registry (:meth:`ConcurrentSessionServer.subscribe`).  The
registry fires its callback at each batch's quiescent point (writer
thread, write lock held); the callback hands the delta to the event loop
with ``call_soon_threadsafe``, where it lands on a bounded per-subscription
queue drained by a dedicated writer task into ``PUSH`` frames that share
the ``SUBSCRIBE`` frame's ``seq``.  A subscriber that falls further behind
than its declared buffer is *lapsed*: dropped from the registry, with one
final ``PushDelta(lapsed=True)``.  Closing the connection unsubscribes
everything it registered.  Replies on v2 connections whose encoded size
exceeds :data:`CHUNK_SIZE` travel as consecutive ``RESULT_CHUNK`` slices.

Graceful shutdown: :meth:`aclose` stops accepting, lets every in-flight
request finish and flush its reply (bounded by ``drain_timeout``), then
closes connections -- a client that got its request in gets its answer.

For sync callers (tests, benchmarks, examples) :func:`serve_in_thread` runs
the whole ingress on a private event-loop thread and hands back address +
``close()``.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from typing import Dict, Optional, Set, Tuple

from repro.errors import ReproError, TransportError, WireFormatError
from repro.net import protocol
from repro.net.protocol import DEFAULT_MAX_FRAME, FrameKind
from repro.session.concurrent import ConcurrentSessionServer

#: replies whose encoded frame exceeds this are sliced into RESULT_CHUNK
#: frames (v2 connections only; v1 has no chunk kind)
CHUNK_SIZE = 512 * 1024


class _SubState:
    """Server-side per-connection state of one standing query.

    The registry callback (writer thread, write lock held) hands deltas to
    the event loop with ``call_soon_threadsafe``; the loop enqueues them on
    the bounded ``queue`` and a dedicated writer task drains it into PUSH
    frames.  An overflowing queue *lapses* the subscription: it is dropped
    from the registry and the final frame carries ``lapsed=True``.
    """

    __slots__ = ("sub_id", "seq", "queue", "task", "lapsed")

    def __init__(self, seq: int, buffer: int) -> None:
        self.sub_id = -1
        self.seq = seq
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=max(1, buffer))
        self.task: Optional[asyncio.Task] = None
        self.lapsed = False


class NetworkSessionServer:
    """Serve one :class:`ConcurrentSessionServer` over TCP.

    Parameters
    ----------
    source:
        An existing :class:`ConcurrentSessionServer` to front (not owned:
        closing the ingress leaves it running), or anything its constructor
        accepts -- a :class:`Fragmentation` or :class:`SimulationSession` --
        in which case the ingress builds and owns the serving stack,
        forwarding ``server_kwargs`` (``backend=``, ``n_workers=``, ...).
    host, port:
        Bind address; port 0 picks an ephemeral port (read
        :attr:`address` after :meth:`start`).
    max_frame:
        Per-frame byte ceiling, both directions.
    drain_timeout:
        Upper bound on how long :meth:`aclose` waits for in-flight
        requests to finish before tearing connections down.
    """

    def __init__(
        self,
        source,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame: int = DEFAULT_MAX_FRAME,
        drain_timeout: float = 30.0,
        **server_kwargs,
    ) -> None:
        if isinstance(source, ConcurrentSessionServer):
            if server_kwargs:
                raise ReproError(
                    "backend/worker kwargs belong to the ConcurrentSessionServer; "
                    "pass a Fragmentation to have the ingress build one"
                )
            self._server = source
            self._own_server = False
        else:
            self._server = ConcurrentSessionServer(source, **server_kwargs)
            self._own_server = True
        self._host = host
        self._port = port
        self._max_frame = max_frame
        self._drain_timeout = drain_timeout
        self._aio_server: Optional[asyncio.AbstractServer] = None
        self._requests: Set[asyncio.Task] = set()
        self._writers: Set[asyncio.StreamWriter] = set()
        self._closing = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def server(self) -> ConcurrentSessionServer:
        """The fronted serving stack."""
        return self._server

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._aio_server is None:
            raise ReproError("the ingress is not started")
        return self._aio_server.sockets[0].getsockname()[:2]

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound address."""
        if self._aio_server is not None:
            raise ReproError("the ingress is already started")
        self._aio_server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        return self.address

    async def serve_forever(self) -> None:
        """Block serving until cancelled (:meth:`start` first)."""
        if self._aio_server is None:
            await self.start()
        await self._aio_server.serve_forever()

    async def aclose(self) -> None:
        """Graceful shutdown: stop accepting, drain in-flight work, hang up."""
        if self._closing:
            return
        self._closing = True
        if self._aio_server is not None:
            self._aio_server.close()
            await self._aio_server.wait_closed()
        pending = {t for t in self._requests if not t.done()}
        if pending:
            # Every request that made it past the reader gets drain_timeout
            # to produce and flush its reply.
            await asyncio.wait(pending, timeout=self._drain_timeout)
        for writer in list(self._writers):
            writer.close()
        for writer in list(self._writers):
            with contextlib.suppress(Exception):
                await writer.wait_closed()
        self._writers.clear()
        if self._own_server:
            await asyncio.get_running_loop().run_in_executor(None, self._server.close)

    async def __aenter__(self) -> "NetworkSessionServer":
        try:
            await self.start()
        except BaseException:
            # __aexit__ never runs when __aenter__ raises: an owned serving
            # stack (built in __init__, workers already spawned) must not
            # leak on e.g. a bind failure.
            await self.aclose()
            raise
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # the per-connection protocol
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        write_lock = asyncio.Lock()  # replies from parallel tasks interleave
        inflight: Set[asyncio.Task] = set()
        subs: Dict[int, _SubState] = {}
        try:
            while True:
                try:
                    version, kind, seq, frame = await protocol.read_frame_async_ex(
                        reader, self._max_frame
                    )
                except (EOFError, ConnectionError):
                    break
                except (WireFormatError, TransportError) as exc:
                    # Framing is lost; report once (seq 0, v1: the safe
                    # guess when the bad header's version is unreadable)
                    # and hang up.
                    with contextlib.suppress(Exception):
                        await self._reply(
                            writer,
                            write_lock,
                            0,
                            FrameKind.ERROR,
                            protocol.ErrorReply.from_exception(exc),
                            protocol.PROTOCOL_V1,
                        )
                    break
                if kind == FrameKind.BYE:
                    break
                task = asyncio.create_task(
                    self._dispatch(
                        version, kind, seq, frame, writer, write_lock, subs
                    )
                )
                inflight.add(task)
                self._requests.add(task)
                task.add_done_callback(inflight.discard)
                task.add_done_callback(self._requests.discard)
            if inflight:
                # A goodbye (or EOF) after pipelined requests: finish them
                # and flush their replies before hanging up.
                await asyncio.wait(inflight)
        finally:
            for state in list(subs.values()):
                if state.sub_id >= 0:
                    self._server.unsubscribe(state.sub_id)
                if state.task is not None:
                    state.task.cancel()
            subs.clear()
            self._writers.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _reply(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        seq: int,
        kind: FrameKind,
        frame,
        version: int,
    ) -> None:
        data = protocol.encode_payload(
            kind, frame, seq=seq, max_frame=self._max_frame, version=version
        )
        if version != protocol.PROTOCOL_V1 and len(data) > CHUNK_SIZE:
            # Slice the complete encoded frame (header included) into
            # consecutive RESULT_CHUNK frames sharing the request's seq;
            # the write lock spans the whole set so chunks never interleave
            # with other replies.
            slices = [
                data[i : i + CHUNK_SIZE] for i in range(0, len(data), CHUNK_SIZE)
            ]
            async with write_lock:
                for index, payload in enumerate(slices):
                    writer.write(
                        protocol.encode_payload(
                            FrameKind.RESULT_CHUNK,
                            protocol.ResultChunk(index, len(slices), payload),
                            seq=seq,
                            max_frame=self._max_frame,
                            version=version,
                        )
                    )
                    await writer.drain()
            return
        async with write_lock:
            writer.write(data)
            await writer.drain()

    async def _dispatch(
        self,
        version: int,
        kind: FrameKind,
        seq: int,
        frame,
        writer,
        write_lock,
        subs: Dict[int, _SubState],
    ) -> None:
        loop = asyncio.get_running_loop()
        try:
            if kind == FrameKind.RUN:
                result = await asyncio.wrap_future(
                    self._server.submit(
                        frame.query, algorithm=frame.algorithm, config=frame.config
                    )
                )
                reply_kind = FrameKind.RESULT
                reply = protocol.RunReply(
                    relation=result.relation,
                    metrics=result.metrics,
                    stamp=result.stamp,
                )
            elif kind == FrameKind.MUTATE:
                outcomes = await loop.run_in_executor(
                    None, self._server.apply, list(frame.ops)
                )
                reply_kind = FrameKind.OUTCOMES
                reply = protocol.MutateReply(outcomes=tuple(outcomes))
            elif kind == FrameKind.STATS:
                # The cut-quality snapshot takes the server's read lock (it
                # must not interleave with a mutation batch or a rebalance),
                # so it runs off the event loop like every blocking call.
                partition = await loop.run_in_executor(
                    None, self._server.partition_snapshot
                )
                reply_kind = FrameKind.STATS_REPLY
                reply = protocol.StatsReply(
                    stats=self._server.stats,
                    stamp=self._server.stamp,
                    backend=self._server.backend,
                    n_workers=self._server.n_workers,
                    partition=partition,
                )
            elif kind == FrameKind.HELLO:
                reply_kind = FrameKind.HELLO
                reply = protocol.Hello(
                    role="server",
                    versions=tuple(sorted(protocol.SUPPORTED_VERSIONS)),
                )
            elif kind == FrameKind.SUBSCRIBE:
                if version == protocol.PROTOCOL_V1:
                    raise WireFormatError(
                        "SUBSCRIBE requires protocol v2 (negotiate in HELLO)"
                    )
                reply_kind = FrameKind.SUBSCRIBED
                reply = await self._subscribe(
                    loop, seq, frame, writer, write_lock, subs, version
                )
            elif kind == FrameKind.UNSUBSCRIBE:
                if version == protocol.PROTOCOL_V1:
                    raise WireFormatError(
                        "UNSUBSCRIBE requires protocol v2 (negotiate in HELLO)"
                    )
                self._server.unsubscribe(frame.sub_id)
                state = subs.pop(frame.sub_id, None)
                if state is not None and state.task is not None:
                    state.task.cancel()
                reply_kind = FrameKind.SUBSCRIBED
                reply = protocol.SubscribeReply(
                    sub_id=frame.sub_id, stamp=self._server.stamp, relation=None
                )
            else:
                raise WireFormatError(f"clients may not send {kind.name} frames")
        except Exception as exc:
            reply_kind = FrameKind.ERROR
            reply = protocol.ErrorReply.from_exception(exc)
        try:
            await self._reply(writer, write_lock, seq, reply_kind, reply, version)
        except WireFormatError as exc:
            # The reply itself would not frame (e.g. oversized relation):
            # tell the client *why* instead of leaving its future pending.
            with contextlib.suppress(Exception):
                await self._reply(
                    writer,
                    write_lock,
                    seq,
                    FrameKind.ERROR,
                    protocol.ErrorReply.from_exception(exc),
                    version,
                )
        except (ConnectionError, OSError):
            pass  # client left before its answer; nothing to tell it

    # ------------------------------------------------------------------
    # standing queries
    # ------------------------------------------------------------------
    async def _subscribe(
        self,
        loop: asyncio.AbstractEventLoop,
        seq: int,
        frame: "protocol.SubscribeRequest",
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        subs: Dict[int, _SubState],
        version: int,
    ) -> "protocol.SubscribeReply":
        """Register with the serving stack and wire up the push pipeline."""
        state = _SubState(seq, frame.buffer)

        def deliver(sub_id: int, stamp: int, added: Tuple, removed: Tuple) -> None:
            # Writer thread, write lock held: must not block.  The loop
            # enqueues in call order, so deltas stay stamp-ordered.
            loop.call_soon_threadsafe(
                self._enqueue_push, state, sub_id, stamp, added, removed
            )

        sub_id, baseline = await loop.run_in_executor(
            None,
            lambda: self._server.subscribe(
                frame.query, deliver, algorithm=frame.algorithm, config=frame.config
            ),
        )
        state.sub_id = sub_id
        subs[sub_id] = state
        state.task = asyncio.create_task(
            self._push_writer(state, writer, write_lock, version)
        )
        self._requests.add(state.task)
        state.task.add_done_callback(self._requests.discard)
        return protocol.SubscribeReply(
            sub_id=sub_id, stamp=baseline.stamp, relation=baseline.relation
        )

    def _enqueue_push(
        self, state: _SubState, sub_id: int, stamp: int, added: Tuple, removed: Tuple
    ) -> None:
        """Event-loop side of the registry callback: queue one PUSH."""
        if state.lapsed:
            return  # a snapshot race may deliver one delta past the lapse
        try:
            state.queue.put_nowait(
                protocol.PushDelta(
                    sub_id=sub_id, stamp=stamp, added=added, removed=removed
                )
            )
        except asyncio.QueueFull:
            # The subscriber fell behind its declared buffer: lapse it.
            # Pending deltas are void (the final frame says so), which
            # frees a slot for the lapse marker.
            state.lapsed = True
            self._server.unsubscribe(sub_id)
            while True:
                try:
                    state.queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
            state.queue.put_nowait(
                protocol.PushDelta(sub_id=sub_id, stamp=stamp, lapsed=True)
            )

    async def _push_writer(
        self,
        state: _SubState,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        version: int,
    ) -> None:
        """Drain one subscription's delta queue into PUSH frames."""
        try:
            while True:
                delta = await state.queue.get()
                await self._reply(
                    writer, write_lock, state.seq, FrameKind.PUSH, delta, version
                )
                if delta.lapsed:
                    break
        except asyncio.CancelledError:
            raise
        except (ConnectionError, OSError):
            self._server.unsubscribe(state.sub_id)


class ThreadedNetworkServer:
    """A :class:`NetworkSessionServer` on a private event-loop thread.

    For synchronous callers: construction binds the socket, serves in the
    background, and :meth:`close` performs the same graceful drain as
    :meth:`NetworkSessionServer.aclose`.  Use as a context manager::

        with serve_in_thread(fragmentation, backend="thread") as srv:
            client = SessionClient(*srv.address)
    """

    def __init__(self, source, **kwargs) -> None:
        self._startup_error: Optional[BaseException] = None
        self._started = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self.ingress: Optional[NetworkSessionServer] = None
        self.address: Optional[Tuple[str, int]] = None
        self._thread = threading.Thread(
            target=self._run,
            args=(source, kwargs),
            daemon=True,
            name="repro-net-server",
        )
        self._thread.start()
        self._started.wait(timeout=60.0)
        if self._startup_error is not None:
            raise self._startup_error
        if self.address is None:
            raise TransportError("network server failed to start within 60s")

    def _run(self, source, kwargs) -> None:
        asyncio.run(self._main(source, kwargs))

    async def _main(self, source, kwargs) -> None:
        try:
            self.ingress = NetworkSessionServer(source, **kwargs)
            await self.ingress.start()
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            self.address = self.ingress.address
        except BaseException as exc:
            self._startup_error = exc
            if self.ingress is not None:
                # An owned serving stack was already built (workers spawned);
                # a failed bind must not leak it.
                with contextlib.suppress(Exception):
                    await self.ingress.aclose()
            self._started.set()
            return
        self._started.set()
        await self._stop.wait()
        await self.ingress.aclose()

    def close(self) -> None:
        """Gracefully stop the ingress and join its thread (idempotent)."""
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60.0)
        if self._thread.is_alive():  # pragma: no cover - defensive
            raise TransportError("network server thread failed to stop")

    def __enter__(self) -> "ThreadedNetworkServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve_in_thread(source, **kwargs) -> ThreadedNetworkServer:
    """Start a background-thread ingress over ``source``; see
    :class:`ThreadedNetworkServer`."""
    return ThreadedNetworkServer(source, **kwargs)
