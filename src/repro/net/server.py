"""The asyncio front door: many client connections, one serving stack.

:class:`NetworkSessionServer` listens on a TCP socket, speaks the frame
protocol of :mod:`repro.net.protocol`, and feeds every query into
:meth:`ConcurrentSessionServer.submit` -- the asyncio loop never computes a
relation itself.  Queries therefore keep the whole PR-3 contract: they run
concurrently under the read lock, mutation batches apply at quiescent
points, and every reply carries the mutation stamp its answer observed, so
a network client gets exactly the snapshot semantics an in-process caller
gets.

Concurrency model
-----------------

* Each connection has one reader coroutine; each request becomes its own
  task, so a connection can pipeline (the asyncio client keys replies by
  the frame ``seq``) and a slow query never blocks a cheap one -- on the
  same connection or across connections.
* Query futures from ``submit()`` are awaited with
  :func:`asyncio.wrap_future`; mutation batches and stats snapshots (which
  block on the writer protocol) run through the loop's default thread-pool
  executor.  The event loop only ever parses frames and pickles replies.
* Per-request failures travel back as ``ERROR`` frames carrying the pickled
  exception; the connection stays usable.  Only a framing violation (bad
  magic, oversized length...) hangs up, because byte-stream framing cannot
  be resynchronized.

Graceful shutdown: :meth:`aclose` stops accepting, lets every in-flight
request finish and flush its reply (bounded by ``drain_timeout``), then
closes connections -- a client that got its request in gets its answer.

For sync callers (tests, benchmarks, examples) :func:`serve_in_thread` runs
the whole ingress on a private event-loop thread and hands back address +
``close()``.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from typing import Optional, Set, Tuple

from repro.errors import ReproError, TransportError, WireFormatError
from repro.net import protocol
from repro.net.protocol import DEFAULT_MAX_FRAME, FrameKind
from repro.session.concurrent import ConcurrentSessionServer


class NetworkSessionServer:
    """Serve one :class:`ConcurrentSessionServer` over TCP.

    Parameters
    ----------
    source:
        An existing :class:`ConcurrentSessionServer` to front (not owned:
        closing the ingress leaves it running), or anything its constructor
        accepts -- a :class:`Fragmentation` or :class:`SimulationSession` --
        in which case the ingress builds and owns the serving stack,
        forwarding ``server_kwargs`` (``backend=``, ``n_workers=``, ...).
    host, port:
        Bind address; port 0 picks an ephemeral port (read
        :attr:`address` after :meth:`start`).
    max_frame:
        Per-frame byte ceiling, both directions.
    drain_timeout:
        Upper bound on how long :meth:`aclose` waits for in-flight
        requests to finish before tearing connections down.
    """

    def __init__(
        self,
        source,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame: int = DEFAULT_MAX_FRAME,
        drain_timeout: float = 30.0,
        **server_kwargs,
    ) -> None:
        if isinstance(source, ConcurrentSessionServer):
            if server_kwargs:
                raise ReproError(
                    "backend/worker kwargs belong to the ConcurrentSessionServer; "
                    "pass a Fragmentation to have the ingress build one"
                )
            self._server = source
            self._own_server = False
        else:
            self._server = ConcurrentSessionServer(source, **server_kwargs)
            self._own_server = True
        self._host = host
        self._port = port
        self._max_frame = max_frame
        self._drain_timeout = drain_timeout
        self._aio_server: Optional[asyncio.AbstractServer] = None
        self._requests: Set[asyncio.Task] = set()
        self._writers: Set[asyncio.StreamWriter] = set()
        self._closing = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def server(self) -> ConcurrentSessionServer:
        """The fronted serving stack."""
        return self._server

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._aio_server is None:
            raise ReproError("the ingress is not started")
        return self._aio_server.sockets[0].getsockname()[:2]

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound address."""
        if self._aio_server is not None:
            raise ReproError("the ingress is already started")
        self._aio_server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        return self.address

    async def serve_forever(self) -> None:
        """Block serving until cancelled (:meth:`start` first)."""
        if self._aio_server is None:
            await self.start()
        await self._aio_server.serve_forever()

    async def aclose(self) -> None:
        """Graceful shutdown: stop accepting, drain in-flight work, hang up."""
        if self._closing:
            return
        self._closing = True
        if self._aio_server is not None:
            self._aio_server.close()
            await self._aio_server.wait_closed()
        pending = {t for t in self._requests if not t.done()}
        if pending:
            # Every request that made it past the reader gets drain_timeout
            # to produce and flush its reply.
            await asyncio.wait(pending, timeout=self._drain_timeout)
        for writer in list(self._writers):
            writer.close()
        for writer in list(self._writers):
            with contextlib.suppress(Exception):
                await writer.wait_closed()
        self._writers.clear()
        if self._own_server:
            await asyncio.get_running_loop().run_in_executor(None, self._server.close)

    async def __aenter__(self) -> "NetworkSessionServer":
        try:
            await self.start()
        except BaseException:
            # __aexit__ never runs when __aenter__ raises: an owned serving
            # stack (built in __init__, workers already spawned) must not
            # leak on e.g. a bind failure.
            await self.aclose()
            raise
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # the per-connection protocol
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        write_lock = asyncio.Lock()  # replies from parallel tasks interleave
        inflight: Set[asyncio.Task] = set()
        try:
            while True:
                try:
                    kind, seq, frame = await protocol.read_frame_async(
                        reader, self._max_frame
                    )
                except (EOFError, ConnectionError):
                    break
                except (WireFormatError, TransportError) as exc:
                    # Framing is lost; report once (seq 0) and hang up.
                    with contextlib.suppress(Exception):
                        await self._reply(
                            writer,
                            write_lock,
                            0,
                            FrameKind.ERROR,
                            protocol.ErrorReply.from_exception(exc),
                        )
                    break
                if kind == FrameKind.BYE:
                    break
                task = asyncio.create_task(
                    self._dispatch(kind, seq, frame, writer, write_lock)
                )
                inflight.add(task)
                self._requests.add(task)
                task.add_done_callback(inflight.discard)
                task.add_done_callback(self._requests.discard)
            if inflight:
                # A goodbye (or EOF) after pipelined requests: finish them
                # and flush their replies before hanging up.
                await asyncio.wait(inflight)
        finally:
            self._writers.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _reply(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        seq: int,
        kind: FrameKind,
        frame,
    ) -> None:
        data = protocol.encode_payload(kind, frame, seq=seq, max_frame=self._max_frame)
        async with write_lock:
            writer.write(data)
            await writer.drain()

    async def _dispatch(
        self, kind: FrameKind, seq: int, frame, writer, write_lock
    ) -> None:
        loop = asyncio.get_running_loop()
        try:
            if kind == FrameKind.RUN:
                result = await asyncio.wrap_future(
                    self._server.submit(
                        frame.query, algorithm=frame.algorithm, config=frame.config
                    )
                )
                reply_kind = FrameKind.RESULT
                reply = protocol.RunReply(
                    relation=result.relation,
                    metrics=result.metrics,
                    stamp=result.stamp,
                )
            elif kind == FrameKind.MUTATE:
                outcomes = await loop.run_in_executor(
                    None, self._server.apply, list(frame.ops)
                )
                reply_kind = FrameKind.OUTCOMES
                reply = protocol.MutateReply(outcomes=tuple(outcomes))
            elif kind == FrameKind.STATS:
                reply_kind = FrameKind.STATS_REPLY
                reply = protocol.StatsReply(
                    stats=self._server.stats,
                    stamp=self._server.stamp,
                    backend=self._server.backend,
                    n_workers=self._server.n_workers,
                )
            elif kind == FrameKind.HELLO:
                reply_kind = FrameKind.HELLO
                reply = protocol.Hello(role="server")
            else:
                raise WireFormatError(f"clients may not send {kind.name} frames")
        except Exception as exc:
            reply_kind = FrameKind.ERROR
            reply = protocol.ErrorReply.from_exception(exc)
        try:
            await self._reply(writer, write_lock, seq, reply_kind, reply)
        except WireFormatError as exc:
            # The reply itself would not frame (e.g. oversized relation):
            # tell the client *why* instead of leaving its future pending.
            with contextlib.suppress(Exception):
                await self._reply(
                    writer,
                    write_lock,
                    seq,
                    FrameKind.ERROR,
                    protocol.ErrorReply.from_exception(exc),
                )
        except (ConnectionError, OSError):
            pass  # client left before its answer; nothing to tell it


class ThreadedNetworkServer:
    """A :class:`NetworkSessionServer` on a private event-loop thread.

    For synchronous callers: construction binds the socket, serves in the
    background, and :meth:`close` performs the same graceful drain as
    :meth:`NetworkSessionServer.aclose`.  Use as a context manager::

        with serve_in_thread(fragmentation, backend="thread") as srv:
            client = SessionClient(*srv.address)
    """

    def __init__(self, source, **kwargs) -> None:
        self._startup_error: Optional[BaseException] = None
        self._started = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self.ingress: Optional[NetworkSessionServer] = None
        self.address: Optional[Tuple[str, int]] = None
        self._thread = threading.Thread(
            target=self._run,
            args=(source, kwargs),
            daemon=True,
            name="repro-net-server",
        )
        self._thread.start()
        self._started.wait(timeout=60.0)
        if self._startup_error is not None:
            raise self._startup_error
        if self.address is None:
            raise TransportError("network server failed to start within 60s")

    def _run(self, source, kwargs) -> None:
        asyncio.run(self._main(source, kwargs))

    async def _main(self, source, kwargs) -> None:
        try:
            self.ingress = NetworkSessionServer(source, **kwargs)
            await self.ingress.start()
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            self.address = self.ingress.address
        except BaseException as exc:
            self._startup_error = exc
            if self.ingress is not None:
                # An owned serving stack was already built (workers spawned);
                # a failed bind must not leak it.
                with contextlib.suppress(Exception):
                    await self.ingress.aclose()
            self._started.set()
            return
        self._started.set()
        await self._stop.wait()
        await self.ingress.aclose()

    def close(self) -> None:
        """Gracefully stop the ingress and join its thread (idempotent)."""
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60.0)
        if self._thread.is_alive():  # pragma: no cover - defensive
            raise TransportError("network server thread failed to stop")

    def __enter__(self) -> "ThreadedNetworkServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve_in_thread(source, **kwargs) -> ThreadedNetworkServer:
    """Start a background-thread ingress over ``source``; see
    :class:`ThreadedNetworkServer`."""
    return ThreadedNetworkServer(source, **kwargs)
