"""The protocol-v2 safe body codec: tagged values, no pickle, no surprises.

Pickle made protocol v1 easy but confined it to trusted links: a pickled
body can execute arbitrary code on load.  v2 bodies instead use this closed
tagged encoding -- a small vocabulary of primitives and containers plus an
explicit registry of the typed dataclasses that legitimately cross the
client-facing wire.  Decoding never constructs anything outside that
vocabulary, so the ingress can face untrusted clients.

Format: every value is one tag byte followed by a tag-specific payload;
lengths and counts are unsigned LEB128 varints.  Registered structs encode
as ``STRUCT tag, struct id, field count, field values`` with the fields in
registration order, and are rebuilt through their registered constructor --
not ``__reduce__``, not ``__setstate__``.

The registry is the source of truth for *what may cross the v2 wire*:
:data:`FRAME_STRUCTS` lists every protocol frame class (the
``protocol-exhaustive`` analyzer checker cross-references it against
``FrameKind``; a frame kind must appear here or carry an explicit
worker-only pickle exemption), and :data:`VALUE_STRUCTS` the payload types
those frames carry.  Encoding is deterministic: sets and frozensets are
serialized in sorted-bytes order, so equal values produce equal bytes.

Everything raises :class:`~repro.errors.WireFormatError` -- on unknown
tags, unknown struct ids, truncation, trailing bytes, arity drift, absurd
nesting, or an attempt to encode an unregistered type.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Dict, List, Tuple

from repro.errors import WireFormatError

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03  # 8-byte signed big-endian
_T_BIGINT = 0x04  # varint length + signed big-endian bytes
_T_FLOAT = 0x05  # 8-byte IEEE-754 big-endian
_T_STR = 0x06  # varint length + utf-8
_T_BYTES = 0x07  # varint length + raw
_T_TUPLE = 0x08  # varint count + values
_T_LIST = 0x09
_T_DICT = 0x0A  # varint count + key/value pairs
_T_SET = 0x0B  # varint count + values (sorted-bytes order)
_T_FROZENSET = 0x0C
_T_STRUCT = 0x0E  # varint struct id + varint field count + field values

_INT64 = struct.Struct(">q")
_FLOAT64 = struct.Struct(">d")
_INT64_MIN, _INT64_MAX = -(2**63), 2**63 - 1

#: nesting bound: no legitimate frame is anywhere near this deep, and a
#: crafted deep body must not be able to exhaust the decoder's stack
MAX_DEPTH = 64

# ----------------------------------------------------------------------
# struct registry
# ----------------------------------------------------------------------

#: protocol frame classes (net/protocol.py) -> struct id.  Every FrameKind's
#: body class must appear here (or be pickle-exempt for the worker
#: transport); the protocol-exhaustive checker enforces it.
FRAME_STRUCTS: Dict[str, int] = {
    "Hello": 1,
    "RunRequest": 2,
    "MutateRequest": 3,
    "StatsRequest": 4,
    "Bye": 5,
    "RunReply": 6,
    "MutateReply": 7,
    "StatsReply": 8,
    "ErrorReply": 9,
    "SubscribeRequest": 10,
    "SubscribeReply": 11,
    "UnsubscribeRequest": 12,
    "PushDelta": 13,
    "ResultChunk": 14,
}

#: payload types carried inside frames -> struct id
VALUE_STRUCTS: Dict[str, int] = {
    "Pattern": 32,
    "MatchRelation": 33,
    "RunMetrics": 34,
    "DgpmConfig": 35,
    "CostModel": 36,
    "SessionStats": 37,
    "MutationOutcome": 38,
    "MutationDelta": 39,
    "StampedOutcome": 40,
    "InsertEdge": 41,
    "DeleteEdge": 42,
    "AddNode": 43,
    "RemoveNode": 44,
    "PartitionStats": 45,
}

#: extract(obj) -> field tuple; build(*fields) -> obj
_Extract = Callable[[Any], Tuple[Any, ...]]
_Build = Callable[..., Any]


class _StructSpec:
    __slots__ = ("sid", "cls", "extract", "build")

    def __init__(self, sid: int, cls: type, extract: _Extract, build: _Build):
        self.sid = sid
        self.cls = cls
        self.extract = extract
        self.build = build


_BY_ID: Dict[int, _StructSpec] = {}
_BY_CLASS: Dict[type, _StructSpec] = {}


def _register(sid: int, cls: type, fields: Tuple[str, ...]) -> None:
    def extract(obj: Any, _fields: Tuple[str, ...] = fields) -> Tuple[Any, ...]:
        return tuple(getattr(obj, name) for name in _fields)

    _register_custom(sid, cls, extract, cls)


def _register_custom(sid: int, cls: type, extract: _Extract, build: _Build) -> None:
    spec = _StructSpec(sid, cls, extract, build)
    _BY_ID[sid] = spec
    _BY_CLASS[cls] = spec


def _extract_pattern(obj: Any) -> Tuple[Any, ...]:
    return ({u: obj.label(u) for u in obj.nodes()}, tuple(obj.edges()))


def _extract_relation(obj: Any) -> Tuple[Any, ...]:
    nodes = tuple(obj.query_nodes())
    return (nodes, {u: obj.raw_matches_of(u) for u in nodes})


def _build_stats(*counters: int) -> Any:
    from repro.session.session import SessionStats

    return SessionStats(*counters)


def _ensure_registered() -> None:
    """Populate the registry on first use.

    Imports live here, not at module top: the protocol module is imported by
    the worker transport while heavier packages (session, simulation) may
    still be mid-initialization, and v2 bodies are only ever encoded once
    the world is fully imported.
    """
    if _BY_ID:
        return
    from dataclasses import fields as dc_fields

    from repro.core.config import DgpmConfig
    from repro.graph.mutations import AddNode, DeleteEdge, InsertEdge, RemoveNode
    from repro.graph.pattern import Pattern
    from repro.net import protocol
    from repro.partition.fragmentation import MutationDelta
    from repro.partition.metrics import PartitionStats
    from repro.runtime.costmodel import CostModel
    from repro.runtime.metrics import RunMetrics
    from repro.session.concurrent import StampedOutcome
    from repro.session.session import MutationOutcome, SessionStats

    def auto(sid: int, cls: type) -> None:
        _register(sid, cls, tuple(f.name for f in dc_fields(cls)))

    for name, sid in FRAME_STRUCTS.items():
        auto(sid, getattr(protocol, name))
    auto(VALUE_STRUCTS["RunMetrics"], RunMetrics)
    auto(VALUE_STRUCTS["DgpmConfig"], DgpmConfig)
    auto(VALUE_STRUCTS["CostModel"], CostModel)
    auto(VALUE_STRUCTS["MutationOutcome"], MutationOutcome)
    auto(VALUE_STRUCTS["MutationDelta"], MutationDelta)
    auto(VALUE_STRUCTS["StampedOutcome"], StampedOutcome)
    auto(VALUE_STRUCTS["InsertEdge"], InsertEdge)
    auto(VALUE_STRUCTS["DeleteEdge"], DeleteEdge)
    auto(VALUE_STRUCTS["AddNode"], AddNode)
    auto(VALUE_STRUCTS["RemoveNode"], RemoveNode)
    auto(VALUE_STRUCTS["PartitionStats"], PartitionStats)
    _register_custom(
        VALUE_STRUCTS["Pattern"], Pattern, _extract_pattern, Pattern
    )
    from repro.simulation.matchrel import MatchRelation

    _register_custom(
        VALUE_STRUCTS["MatchRelation"],
        MatchRelation,
        _extract_relation,
        MatchRelation,
    )
    _register_custom(
        VALUE_STRUCTS["SessionStats"],
        SessionStats,
        lambda s: tuple(getattr(s, f.name) for f in dc_fields(SessionStats)),
        _build_stats,
    )


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def _write_varint(out: bytearray, n: int) -> None:
    while True:
        byte = n & 0x7F
        n >>= 7
        if n:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _encode_value(out: bytearray, obj: Any, depth: int) -> None:
    if depth > MAX_DEPTH:
        raise WireFormatError(f"value nesting exceeds {MAX_DEPTH} levels")
    if obj is None:
        out.append(_T_NONE)
    elif obj is True:
        out.append(_T_TRUE)
    elif obj is False:
        out.append(_T_FALSE)
    elif type(obj) is int:
        if _INT64_MIN <= obj <= _INT64_MAX:
            out.append(_T_INT)
            out += _INT64.pack(obj)
        else:
            raw = obj.to_bytes((obj.bit_length() + 8) // 8, "big", signed=True)
            out.append(_T_BIGINT)
            _write_varint(out, len(raw))
            out += raw
    elif type(obj) is float:
        out.append(_T_FLOAT)
        out += _FLOAT64.pack(obj)
    elif type(obj) is str:
        raw = obj.encode("utf-8")
        out.append(_T_STR)
        _write_varint(out, len(raw))
        out += raw
    elif type(obj) is bytes:
        out.append(_T_BYTES)
        _write_varint(out, len(obj))
        out += obj
    elif type(obj) is tuple or type(obj) is list:
        out.append(_T_TUPLE if type(obj) is tuple else _T_LIST)
        _write_varint(out, len(obj))
        for item in obj:
            _encode_value(out, item, depth + 1)
    elif type(obj) is dict:
        out.append(_T_DICT)
        _write_varint(out, len(obj))
        for key, value in obj.items():
            _encode_value(out, key, depth + 1)
            _encode_value(out, value, depth + 1)
    elif type(obj) is set or type(obj) is frozenset:
        out.append(_T_SET if type(obj) is set else _T_FROZENSET)
        _write_varint(out, len(obj))
        encoded: List[bytes] = []
        for item in obj:
            buf = bytearray()
            _encode_value(buf, item, depth + 1)
            encoded.append(bytes(buf))
        for raw in sorted(encoded):
            out += raw
    else:
        spec = _BY_CLASS.get(type(obj))
        if spec is None:
            raise WireFormatError(
                f"{type(obj).__name__} is not encodable on the v2 wire "
                "(not a registered struct)"
            )
        fields = spec.extract(obj)
        out.append(_T_STRUCT)
        _write_varint(out, spec.sid)
        _write_varint(out, len(fields))
        for item in fields:
            _encode_value(out, item, depth + 1)


def encode(obj: Any) -> bytes:
    """Encode one value (typically a protocol frame) to v2 wire bytes."""
    _ensure_registered()
    out = bytearray()
    _encode_value(out, obj, 0)
    return bytes(out)


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------
class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if n < 0 or self.pos + n > len(self.data):
            raise WireFormatError(
                f"truncated value: need {n} bytes at offset {self.pos}, "
                f"have {len(self.data) - self.pos}"
            )
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def varint(self) -> int:
        shift = 0
        value = 0
        while True:
            if self.pos >= len(self.data):
                raise WireFormatError("truncated varint")
            byte = self.data[self.pos]
            self.pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift > 63:
                raise WireFormatError("varint too long")


def _decode_value(reader: _Reader, depth: int) -> Any:
    if depth > MAX_DEPTH:
        raise WireFormatError(f"value nesting exceeds {MAX_DEPTH} levels")
    tag = reader.take(1)[0]
    if tag == _T_NONE:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT:
        return _INT64.unpack(reader.take(8))[0]
    if tag == _T_BIGINT:
        raw = reader.take(reader.varint())
        return int.from_bytes(raw, "big", signed=True)
    if tag == _T_FLOAT:
        return _FLOAT64.unpack(reader.take(8))[0]
    if tag == _T_STR:
        raw = reader.take(reader.varint())
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireFormatError(f"invalid utf-8 in string value: {exc}") from exc
    if tag == _T_BYTES:
        return reader.take(reader.varint())
    if tag in (_T_TUPLE, _T_LIST):
        count = reader.varint()
        items = [_decode_value(reader, depth + 1) for _ in range(count)]
        return tuple(items) if tag == _T_TUPLE else items
    if tag == _T_DICT:
        count = reader.varint()
        out: Dict[Any, Any] = {}
        for _ in range(count):
            key = _decode_value(reader, depth + 1)
            out[key] = _decode_value(reader, depth + 1)
        return out
    if tag in (_T_SET, _T_FROZENSET):
        count = reader.varint()
        items = [_decode_value(reader, depth + 1) for _ in range(count)]
        return set(items) if tag == _T_SET else frozenset(items)
    if tag == _T_STRUCT:
        sid = reader.varint()
        spec = _BY_ID.get(sid)
        if spec is None:
            raise WireFormatError(f"unknown struct id {sid}")
        count = reader.varint()
        fields = [_decode_value(reader, depth + 1) for _ in range(count)]
        try:
            return spec.build(*fields)
        except WireFormatError:
            raise
        except Exception as exc:
            raise WireFormatError(
                f"cannot rebuild {spec.cls.__name__} from wire fields: {exc!r}"
            ) from exc
    raise WireFormatError(f"unknown value tag {tag:#04x}")


def decode(data: bytes) -> Any:
    """Decode one value from v2 wire bytes (trailing bytes are rejected)."""
    _ensure_registered()
    reader = _Reader(data)
    value = _decode_value(reader, 0)
    if reader.pos != len(data):
        raise WireFormatError(
            f"{len(data) - reader.pos} stray bytes after a v2 value"
        )
    return value
