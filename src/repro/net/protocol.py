"""The wire protocol: length-prefixed, versioned, typed frames.

Every message on a repro socket -- client/server traffic through the asyncio
ingress *and* parent/worker traffic through the TCP transport of
:mod:`repro.runtime.transport` -- is one *frame*:

.. code-block:: text

    +-------+---------+------+----------+-----+--------+  +------------+
    | magic | version | kind | reserved | seq | length |  |    body    |
    |  4B   |   1B    |  1B  |    2B    | 4B  |   4B   |  | length  B  |
    +-------+---------+------+----------+-----+--------+  +------------+

``magic`` guards against a stray peer, ``version`` against a protocol skew,
``kind`` names one of the :class:`FrameKind` values, ``reserved`` must be
zero (room for future flags), ``seq`` correlates a reply with its request
(the asyncio ingress answers out of order; pipelining clients key pending
futures by it), and ``length`` bounds the pickled body.  A frame whose
header fails any of these checks -- or whose body is truncated, oversized,
undecodable, or of the wrong type for its kind -- is rejected with
:class:`~repro.errors.WireFormatError` before any payload object is touched.

Bodies are pickled Python objects: the request/response dataclasses below
carry :class:`~repro.graph.pattern.Pattern`,
:class:`~repro.simulation.matchrel.MatchRelation`, mutation outcomes, and
session stats verbatim, so a client sees exactly the objects an in-process
caller would.  Pickle implies the usual trust boundary: this protocol is for
localhost and trusted-cluster links, the paper's coordinator/site setting --
not for the open internet.

The encode -> decode round-trip is the identity for every frame type
(property-tested in ``tests/net/test_protocol.py``).
"""

from __future__ import annotations

import enum
import pickle
import struct
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from repro.core.config import DgpmConfig
from repro.errors import TransportError, WireFormatError
from repro.graph.pattern import Pattern
from repro.runtime.metrics import RunMetrics
from repro.simulation.matchrel import MatchRelation

MAGIC = b"RGSP"
PROTOCOL_VERSION = 1

#: 64 MiB -- generous for any relation this library produces, small enough
#: that a garbled length field cannot make a peer allocate the moon
DEFAULT_MAX_FRAME = 64 * 1024 * 1024

_HEADER = struct.Struct(">4sBBHII")
HEADER_SIZE = _HEADER.size


class FrameKind(enum.IntEnum):
    """Discriminant of every frame on the wire."""

    HELLO = 1  # either side announces itself (role + optional token)
    RUN = 2  # client -> server: evaluate one query
    MUTATE = 3  # client -> server: apply one mutation batch
    STATS = 4  # client -> server: serving counters snapshot
    BYE = 5  # client -> server: clean goodbye
    RESULT = 6  # server -> client: the stamped answer to a RUN
    OUTCOMES = 7  # server -> client: stamped outcomes of a MUTATE
    STATS_REPLY = 8  # server -> client: the counters
    ERROR = 9  # server -> client: the request raised
    OBJ = 10  # raw payload (the worker transport's command tuples)


@dataclass(frozen=True)
class Hello:
    """Connection opener: who is speaking, and (for workers) their token."""

    role: str
    token: bytes = b""


@dataclass(frozen=True)
class RunRequest:
    """Evaluate ``query`` with ``algorithm`` under ``config`` (None = server
    default)."""

    query: Pattern
    algorithm: str = "auto"
    config: Optional[DgpmConfig] = None


@dataclass(frozen=True)
class MutateRequest:
    """Apply ``ops`` as one atomic batch (syntax of
    :meth:`SimulationSession.apply`)."""

    ops: Tuple[Tuple, ...]


@dataclass(frozen=True)
class StatsRequest:
    """Ask for the serving counters."""


@dataclass(frozen=True)
class Bye:
    """Clean goodbye; the server finishes in-flight replies, then hangs up."""


@dataclass(frozen=True)
class RunReply:
    """The answer to a :class:`RunRequest`, with the stamp it observed."""

    relation: MatchRelation
    metrics: RunMetrics
    stamp: int


@dataclass(frozen=True)
class MutateReply:
    """Per-update stamped outcomes of an applied :class:`MutateRequest`."""

    outcomes: Tuple[Any, ...]


@dataclass(frozen=True)
class StatsReply:
    """Serving counters plus the server's identity facts."""

    stats: Any
    stamp: int
    backend: str
    n_workers: int


@dataclass(frozen=True)
class ErrorReply:
    """A request failed; carries the exception for faithful re-raising.

    ``payload`` is the pickled exception (empty when it would not pickle);
    ``kind`` its class name and ``message`` its text, so a client can always
    report *something* even when the class is not importable on its side.
    """

    message: str
    kind: str = "ReproError"
    payload: bytes = field(default=b"", repr=False)

    @classmethod
    def from_exception(cls, exc: BaseException) -> "ErrorReply":
        try:
            payload = pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            payload = b""
        return cls(message=str(exc), kind=type(exc).__name__, payload=payload)

    def to_exception(self) -> BaseException:
        """The carried exception, or a :class:`TransportError` stand-in."""
        if self.payload:
            try:
                exc = pickle.loads(self.payload)
                if isinstance(exc, BaseException):
                    return exc
            except Exception:
                pass
        return TransportError(f"server error ({self.kind}): {self.message}")


FRAME_CLASSES = {
    FrameKind.HELLO: Hello,
    FrameKind.RUN: RunRequest,
    FrameKind.MUTATE: MutateRequest,
    FrameKind.STATS: StatsRequest,
    FrameKind.BYE: Bye,
    FrameKind.RESULT: RunReply,
    FrameKind.OUTCOMES: MutateReply,
    FrameKind.STATS_REPLY: StatsReply,
    FrameKind.ERROR: ErrorReply,
}
_KIND_OF = {cls: kind for kind, cls in FRAME_CLASSES.items()}


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def encode_payload(
    kind: FrameKind,
    payload: Any,
    seq: int = 0,
    max_frame: int = DEFAULT_MAX_FRAME,
) -> bytes:
    """One wire-ready frame around an arbitrary payload object."""
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if len(body) > max_frame:
        raise WireFormatError(
            f"refusing to send a {len(body)}-byte {FrameKind(kind).name} "
            f"frame (max {max_frame})"
        )
    header = _HEADER.pack(
        MAGIC, PROTOCOL_VERSION, int(kind), 0, seq & 0xFFFFFFFF, len(body)
    )
    return header + body


def encode(frame: Any, seq: int = 0, max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """Encode one typed frame (kind inferred from the dataclass type)."""
    kind = _KIND_OF.get(type(frame))
    if kind is None:
        raise WireFormatError(f"{type(frame).__name__} is not a protocol frame type")
    return encode_payload(kind, frame, seq=seq, max_frame=max_frame)


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------
def decode_header(
    header: bytes, max_frame: int = DEFAULT_MAX_FRAME
) -> Tuple[FrameKind, int, int]:
    """Validate a 16-byte header; returns ``(kind, seq, body_length)``."""
    if len(header) != HEADER_SIZE:
        raise WireFormatError(
            f"truncated header: {len(header)} bytes (need {HEADER_SIZE})"
        )
    magic, version, kind, reserved, seq, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise WireFormatError(f"bad magic {magic!r} (not a repro peer?)")
    if version != PROTOCOL_VERSION:
        raise WireFormatError(
            f"protocol version {version} (this side speaks {PROTOCOL_VERSION})"
        )
    try:
        kind = FrameKind(kind)
    except ValueError:
        raise WireFormatError(f"unknown frame kind {kind}") from None
    if reserved != 0:
        raise WireFormatError(f"reserved header bits set ({reserved:#x})")
    if length > max_frame:
        raise WireFormatError(
            f"oversized frame: {length} bytes declared (max {max_frame})"
        )
    return kind, seq, length


def decode_body(kind: FrameKind, body: bytes) -> Any:
    """Unpickle a frame body and check its type against ``kind``."""
    try:
        payload = pickle.loads(body)
    except Exception as exc:
        raise WireFormatError(f"undecodable {kind.name} body: {exc!r}") from exc
    expected = FRAME_CLASSES.get(kind)
    if expected is not None and not isinstance(payload, expected):
        raise WireFormatError(
            f"{kind.name} frame carried a {type(payload).__name__} "
            f"(expected {expected.__name__})"
        )
    return payload


def decode(data: bytes, max_frame: int = DEFAULT_MAX_FRAME) -> Tuple[Any, int]:
    """Decode exactly one whole frame from ``data``; returns ``(frame, seq)``.

    Trailing bytes beyond the declared length are rejected (stream framing
    never produces them; their presence means the framing is lost).
    """
    kind, seq, length = decode_header(data[:HEADER_SIZE], max_frame)
    body = data[HEADER_SIZE:]
    if len(body) < length:
        raise WireFormatError(
            f"truncated frame: {len(body)} of {length} body bytes present"
        )
    if len(body) > length:
        raise WireFormatError(
            f"{len(body) - length} stray bytes after a {kind.name} frame"
        )
    return decode_body(kind, body), seq


# ----------------------------------------------------------------------
# stream adapters (blocking socket / asyncio)
# ----------------------------------------------------------------------
def _recv_exactly(sock, n: int) -> bytes:
    """Read exactly ``n`` bytes from a blocking socket.

    A clean close before any byte raises :class:`EOFError` (matching
    ``multiprocessing.Connection``, so dead-peer handling is shared with the
    pipe transport); a close mid-frame raises :class:`TransportError`.
    """
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(n - got)
        if not chunk:
            if got == 0:
                raise EOFError("peer closed the connection")
            raise TransportError(f"peer closed mid-frame ({got} of {n} bytes read)")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def read_frame(sock, max_frame: int = DEFAULT_MAX_FRAME) -> Tuple[FrameKind, int, Any]:
    """Read one frame from a blocking socket: ``(kind, seq, payload)``."""
    kind, seq, length = decode_header(_recv_exactly(sock, HEADER_SIZE), max_frame)
    body = _recv_exactly(sock, length) if length else b""
    return kind, seq, decode_body(kind, body)


def write_frame(
    sock,
    kind: FrameKind,
    payload: Any,
    seq: int = 0,
    max_frame: int = DEFAULT_MAX_FRAME,
) -> None:
    """Send one frame on a blocking socket."""
    sock.sendall(encode_payload(kind, payload, seq=seq, max_frame=max_frame))


async def read_frame_async(
    reader, max_frame: int = DEFAULT_MAX_FRAME
) -> Tuple[FrameKind, int, Any]:
    """Read one frame from an :class:`asyncio.StreamReader`.

    Raises :class:`EOFError` on a clean close between frames and
    :class:`TransportError` on a close mid-frame, like :func:`read_frame`.
    """
    import asyncio

    try:
        header = await reader.readexactly(HEADER_SIZE)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise EOFError("peer closed the connection") from None
        raise TransportError(
            f"peer closed mid-header ({len(exc.partial)} of {HEADER_SIZE} "
            "bytes read)"
        ) from exc
    kind, seq, length = decode_header(header, max_frame)
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise TransportError(
                f"peer closed mid-frame ({len(exc.partial)} of {length} "
                "body bytes read)"
            ) from exc
    else:
        body = b""
    return kind, seq, decode_body(kind, body)
