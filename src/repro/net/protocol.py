"""The wire protocol: length-prefixed, versioned, typed frames.

Every message on a repro socket -- client/server traffic through the asyncio
ingress *and* parent/worker traffic through the TCP transport of
:mod:`repro.runtime.transport` -- is one *frame*:

.. code-block:: text

    +-------+---------+------+----------+-----+--------+  +------------+
    | magic | version | kind | reserved | seq | length |  |    body    |
    |  4B   |   1B    |  1B  |    2B    | 4B  |   4B   |  | length  B  |
    +-------+---------+------+----------+-----+--------+  +------------+

``magic`` guards against a stray peer, ``version`` against a protocol skew,
``kind`` names one of the :class:`FrameKind` values, ``reserved`` must be
zero (room for future flags), ``seq`` correlates a reply with its request
(the asyncio ingress answers out of order; pipelining clients key pending
futures by it), and ``length`` bounds the pickled body.  A frame whose
header fails any of these checks -- or whose body is truncated, oversized,
undecodable, or of the wrong type for its kind -- is rejected with
:class:`~repro.errors.WireFormatError` before any payload object is touched.

Two body encodings coexist, keyed by the header's ``version`` byte:

* **v1** bodies are pickled Python objects -- the original encoding, kept
  verbatim so old peers interoperate.  Pickle implies the usual trust
  boundary: v1 is for localhost and trusted-cluster links only.
* **v2** bodies use the tagged safe codec of :mod:`repro.net.codec`: a
  closed value vocabulary (primitives, containers, and the registered frame
  dataclasses) that never constructs arbitrary objects, so the ingress can
  face untrusted clients.  v2 also adds the standing-query frames
  (``SUBSCRIBE`` / ``SUBSCRIBED`` / ``UNSUBSCRIBE`` / ``PUSH``) and chunked
  ``RESULT`` bodies (``RESULT_CHUNK``) for large relations.

The one exception is :attr:`FrameKind.OBJ` -- the worker transport's raw
command tuples -- which stays pickled at every version: that link is
token-authenticated and parent-spawned (see :mod:`repro.runtime.transport`).

Versions are negotiated in ``HELLO``: a client opens at v1 announcing
``Hello.versions`` and upgrades iff the server's reply announces v2; servers
always reply in the version the request arrived in, so an un-negotiated v1
peer keeps working unchanged.

The encode -> decode round-trip is the identity for every frame type at
both versions (property-tested in ``tests/net/test_protocol.py`` and
``tests/net/test_codec.py``).
"""

from __future__ import annotations

import enum
import pickle
import struct
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from repro.core.config import DgpmConfig
from repro.errors import TransportError, WireFormatError
from repro.graph.pattern import Pattern
from repro.runtime.metrics import RunMetrics
from repro.simulation.matchrel import MatchRelation

MAGIC = b"RGSP"
#: highest protocol version this build speaks (and the default for frames
#: whose version is not chosen by negotiation, e.g. the worker transport)
PROTOCOL_VERSION = 2
#: the legacy pickle encoding, still accepted and emitted for old peers
PROTOCOL_V1 = 1
SUPPORTED_VERSIONS = frozenset({PROTOCOL_V1, PROTOCOL_VERSION})

#: 64 MiB -- generous for any relation this library produces, small enough
#: that a garbled length field cannot make a peer allocate the moon
DEFAULT_MAX_FRAME = 64 * 1024 * 1024

_HEADER = struct.Struct(">4sBBHII")
HEADER_SIZE = _HEADER.size


class FrameKind(enum.IntEnum):
    """Discriminant of every frame on the wire."""

    HELLO = 1  # either side announces itself (role + optional token)
    RUN = 2  # client -> server: evaluate one query
    MUTATE = 3  # client -> server: apply one mutation batch
    STATS = 4  # client -> server: serving counters snapshot
    BYE = 5  # client -> server: clean goodbye
    RESULT = 6  # server -> client: the stamped answer to a RUN
    OUTCOMES = 7  # server -> client: stamped outcomes of a MUTATE
    STATS_REPLY = 8  # server -> client: the counters
    ERROR = 9  # server -> client: the request raised
    OBJ = 10  # raw payload (the worker transport's command tuples)
    SUBSCRIBE = 11  # client -> server: register a standing query (v2)
    UNSUBSCRIBE = 12  # client -> server: cancel a standing query (v2)
    PUSH = 13  # server -> client: stamped match delta for a subscription (v2)
    SUBSCRIBED = 14  # server -> client: subscription ack (initial snapshot)
    RESULT_CHUNK = 15  # server -> client: one slice of a chunked reply (v2)


@dataclass(frozen=True)
class Hello:
    """Connection opener: who is speaking, and (for workers) their token.

    ``versions`` announces every protocol version the sender can speak; the
    field defaults to ``(1,)`` so a pickled v1 ``Hello`` from an old peer
    decodes into an honest announcement.
    """

    role: str
    token: bytes = b""
    versions: Tuple[int, ...] = (PROTOCOL_V1,)


@dataclass(frozen=True)
class RunRequest:
    """Evaluate ``query`` with ``algorithm`` under ``config`` (None = server
    default)."""

    query: Pattern
    algorithm: str = "auto"
    config: Optional[DgpmConfig] = None


@dataclass(frozen=True)
class MutateRequest:
    """Apply ``ops`` as one atomic batch (syntax of
    :meth:`SimulationSession.apply`).

    Ops are :class:`~repro.graph.mutations.MutationOp` instances; the legacy
    bare-tuple spelling is still accepted by the session layer (with a
    :class:`DeprecationWarning`) and therefore on the wire too.
    """

    ops: Tuple[Any, ...]


@dataclass(frozen=True)
class StatsRequest:
    """Ask for the serving counters."""


@dataclass(frozen=True)
class Bye:
    """Clean goodbye; the server finishes in-flight replies, then hangs up."""


@dataclass(frozen=True)
class RunReply:
    """The answer to a :class:`RunRequest`, with the stamp it observed."""

    relation: MatchRelation
    metrics: RunMetrics
    stamp: int


@dataclass(frozen=True)
class MutateReply:
    """Per-update stamped outcomes of an applied :class:`MutateRequest`."""

    outcomes: Tuple[Any, ...]


@dataclass(frozen=True)
class StatsReply:
    """Serving counters plus the server's identity facts.

    ``partition`` carries the cut-quality snapshot
    (:class:`~repro.partition.metrics.PartitionStats`) of the currently
    served fragmentation -- None only from pre-rebalance servers.
    """

    stats: Any
    stamp: int
    backend: str
    n_workers: int
    partition: Any = None


@dataclass(frozen=True)
class ErrorReply:
    """A request failed; carries the exception for faithful re-raising.

    ``payload`` is the pickled exception (empty when it would not pickle);
    ``kind`` its class name and ``message`` its text, so a client can always
    report *something* even when the class is not importable on its side.
    """

    message: str
    kind: str = "ReproError"
    payload: bytes = field(default=b"", repr=False)

    @classmethod
    def from_exception(cls, exc: BaseException) -> "ErrorReply":
        try:
            payload = pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            payload = b""
        return cls(message=str(exc), kind=type(exc).__name__, payload=payload)

    def to_exception(self) -> BaseException:
        """The carried exception, or a :class:`TransportError` stand-in."""
        if self.payload:
            try:
                exc = pickle.loads(self.payload)
                if isinstance(exc, BaseException):
                    return exc
            except Exception:
                pass
        return TransportError(f"server error ({self.kind}): {self.message}")


@dataclass(frozen=True)
class SubscribeRequest:
    """Register a standing query: PUSH a stamped delta after every mutation
    batch that changes its match set.

    ``buffer`` bounds the server-side delta queue for this subscription; a
    subscriber that falls further behind than that is *lapsed* (it receives
    one final ``PushDelta(lapsed=True)`` and must re-subscribe).
    """

    query: Pattern
    algorithm: str = "auto"
    config: Optional[DgpmConfig] = None
    buffer: int = 256


@dataclass(frozen=True)
class SubscribeReply:
    """Subscription ack: the id, the baseline stamp, and the full relation
    at that stamp (``None`` when acking an ``UNSUBSCRIBE``).

    Deltas pushed later apply on top of ``relation``; their stamps are
    strictly increasing and start above ``stamp``.
    """

    sub_id: int
    stamp: int
    relation: Optional[MatchRelation] = None


@dataclass(frozen=True)
class UnsubscribeRequest:
    """Cancel the standing query ``sub_id`` (acked with a
    :class:`SubscribeReply` carrying ``relation=None``)."""

    sub_id: int


@dataclass(frozen=True)
class PushDelta:
    """One stamped match delta for a subscription.

    ``added`` / ``removed`` are ``(query node, data node)`` pairs relative
    to the subscriber's previous view (the baseline relation plus every
    earlier delta), sorted for determinism.  ``lapsed=True`` is the final
    frame of an overflowed subscription: the server dropped it and the
    subscriber's view can no longer be trusted.
    """

    sub_id: int
    stamp: int
    added: Tuple[Tuple[Any, Any], ...] = ()
    removed: Tuple[Tuple[Any, Any], ...] = ()
    lapsed: bool = False


@dataclass(frozen=True)
class ResultChunk:
    """One slice of a chunked reply (v2 only).

    A reply whose encoded size exceeds the chunk threshold is sent as
    ``total`` consecutive ``RESULT_CHUNK`` frames sharing the request's
    ``seq``; concatenating the payloads yields one complete encoded frame
    (header included), which the client decodes as the real reply.  Chunking
    keeps every wire frame small, so one huge relation cannot monopolize a
    pipelined connection.
    """

    index: int
    total: int
    payload: bytes


FRAME_CLASSES = {
    FrameKind.HELLO: Hello,
    FrameKind.RUN: RunRequest,
    FrameKind.MUTATE: MutateRequest,
    FrameKind.STATS: StatsRequest,
    FrameKind.BYE: Bye,
    FrameKind.RESULT: RunReply,
    FrameKind.OUTCOMES: MutateReply,
    FrameKind.STATS_REPLY: StatsReply,
    FrameKind.ERROR: ErrorReply,
    FrameKind.SUBSCRIBE: SubscribeRequest,
    FrameKind.UNSUBSCRIBE: UnsubscribeRequest,
    FrameKind.PUSH: PushDelta,
    FrameKind.SUBSCRIBED: SubscribeReply,
    FrameKind.RESULT_CHUNK: ResultChunk,
}
_KIND_OF = {cls: kind for kind, cls in FRAME_CLASSES.items()}


def kind_of(frame: Any) -> FrameKind:
    """The :class:`FrameKind` a typed frame travels as."""
    kind = _KIND_OF.get(type(frame))
    if kind is None:
        raise WireFormatError(f"{type(frame).__name__} is not a protocol frame type")
    return kind

#: kinds whose bodies stay pickled at *every* version: the worker transport's
#: raw command tuples never face an untrusted peer (token-authenticated,
#: parent-spawned links only), and their payloads are arbitrary objects the
#: closed v2 vocabulary intentionally cannot express.
PICKLE_KINDS = frozenset({FrameKind.OBJ})


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def _encode_body(kind: FrameKind, payload: Any, version: int) -> bytes:
    """Encode one body with the codec its version mandates."""
    if version not in SUPPORTED_VERSIONS:
        raise WireFormatError(
            f"cannot encode protocol version {version} "
            f"(this side speaks {sorted(SUPPORTED_VERSIONS)})"
        )
    if version == PROTOCOL_V1 or kind in PICKLE_KINDS:
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    from repro.net import codec

    return codec.encode(payload)


def encode_payload(
    kind: FrameKind,
    payload: Any,
    seq: int = 0,
    max_frame: int = DEFAULT_MAX_FRAME,
    version: int = PROTOCOL_VERSION,
) -> bytes:
    """One wire-ready frame around an arbitrary payload object."""
    body = _encode_body(FrameKind(kind), payload, version)
    if len(body) > max_frame:
        raise WireFormatError(
            f"refusing to send a {len(body)}-byte {FrameKind(kind).name} "
            f"frame (max {max_frame})"
        )
    header = _HEADER.pack(
        MAGIC, version, int(kind), 0, seq & 0xFFFFFFFF, len(body)
    )
    return header + body


def encode(
    frame: Any,
    seq: int = 0,
    max_frame: int = DEFAULT_MAX_FRAME,
    version: int = PROTOCOL_VERSION,
) -> bytes:
    """Encode one typed frame (kind inferred from the dataclass type)."""
    return encode_payload(
        kind_of(frame), frame, seq=seq, max_frame=max_frame, version=version
    )


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------
def decode_header_ex(
    header: bytes, max_frame: int = DEFAULT_MAX_FRAME
) -> Tuple[int, FrameKind, int, int]:
    """Validate a 16-byte header; returns ``(version, kind, seq, length)``."""
    if len(header) != HEADER_SIZE:
        raise WireFormatError(
            f"truncated header: {len(header)} bytes (need {HEADER_SIZE})"
        )
    magic, version, kind, reserved, seq, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise WireFormatError(f"bad magic {magic!r} (not a repro peer?)")
    if version not in SUPPORTED_VERSIONS:
        raise WireFormatError(
            f"protocol version {version} "
            f"(this side speaks {sorted(SUPPORTED_VERSIONS)})"
        )
    try:
        kind = FrameKind(kind)
    except ValueError:
        raise WireFormatError(f"unknown frame kind {kind}") from None
    if reserved != 0:
        raise WireFormatError(f"reserved header bits set ({reserved:#x})")
    if length > max_frame:
        raise WireFormatError(
            f"oversized frame: {length} bytes declared (max {max_frame})"
        )
    return version, kind, seq, length


def decode_header(
    header: bytes, max_frame: int = DEFAULT_MAX_FRAME
) -> Tuple[FrameKind, int, int]:
    """Validate a 16-byte header; returns ``(kind, seq, body_length)``."""
    _, kind, seq, length = decode_header_ex(header, max_frame)
    return kind, seq, length


def decode_body(kind: FrameKind, body: bytes, version: int = PROTOCOL_V1) -> Any:
    """Decode a frame body (per its version) and type-check it for ``kind``."""
    if version == PROTOCOL_V1 or kind in PICKLE_KINDS:
        try:
            payload = pickle.loads(body)
        except Exception as exc:
            raise WireFormatError(f"undecodable {kind.name} body: {exc!r}") from exc
    else:
        from repro.net import codec

        try:
            payload = codec.decode(body)
        except WireFormatError as exc:
            raise WireFormatError(f"undecodable {kind.name} body: {exc}") from exc
    expected = FRAME_CLASSES.get(kind)
    if expected is not None and not isinstance(payload, expected):
        raise WireFormatError(
            f"{kind.name} frame carried a {type(payload).__name__} "
            f"(expected {expected.__name__})"
        )
    return payload


def decode(data: bytes, max_frame: int = DEFAULT_MAX_FRAME) -> Tuple[Any, int]:
    """Decode exactly one whole frame from ``data``; returns ``(frame, seq)``.

    Trailing bytes beyond the declared length are rejected (stream framing
    never produces them; their presence means the framing is lost).
    """
    version, kind, seq, length = decode_header_ex(data[:HEADER_SIZE], max_frame)
    body = data[HEADER_SIZE:]
    if len(body) < length:
        raise WireFormatError(
            f"truncated frame: {len(body)} of {length} body bytes present"
        )
    if len(body) > length:
        raise WireFormatError(
            f"{len(body) - length} stray bytes after a {kind.name} frame"
        )
    return decode_body(kind, body, version), seq


# ----------------------------------------------------------------------
# stream adapters (blocking socket / asyncio)
# ----------------------------------------------------------------------
def _recv_exactly(sock, n: int) -> bytes:
    """Read exactly ``n`` bytes from a blocking socket.

    A clean close before any byte raises :class:`EOFError` (matching
    ``multiprocessing.Connection``, so dead-peer handling is shared with the
    pipe transport); a close mid-frame raises :class:`TransportError`.
    """
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(n - got)
        if not chunk:
            if got == 0:
                raise EOFError("peer closed the connection")
            raise TransportError(f"peer closed mid-frame ({got} of {n} bytes read)")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def read_frame_ex(
    sock, max_frame: int = DEFAULT_MAX_FRAME
) -> Tuple[int, FrameKind, int, Any]:
    """Read one frame from a blocking socket: ``(version, kind, seq, payload)``."""
    version, kind, seq, length = decode_header_ex(
        _recv_exactly(sock, HEADER_SIZE), max_frame
    )
    body = _recv_exactly(sock, length) if length else b""
    return version, kind, seq, decode_body(kind, body, version)


def read_frame(sock, max_frame: int = DEFAULT_MAX_FRAME) -> Tuple[FrameKind, int, Any]:
    """Read one frame from a blocking socket: ``(kind, seq, payload)``."""
    _, kind, seq, payload = read_frame_ex(sock, max_frame)
    return kind, seq, payload


def write_frame(
    sock,
    kind: FrameKind,
    payload: Any,
    seq: int = 0,
    max_frame: int = DEFAULT_MAX_FRAME,
    version: int = PROTOCOL_VERSION,
) -> None:
    """Send one frame on a blocking socket."""
    sock.sendall(
        encode_payload(kind, payload, seq=seq, max_frame=max_frame, version=version)
    )


async def read_frame_async_ex(
    reader, max_frame: int = DEFAULT_MAX_FRAME
) -> Tuple[int, FrameKind, int, Any]:
    """Read one frame from an :class:`asyncio.StreamReader` (with version).

    Raises :class:`EOFError` on a clean close between frames and
    :class:`TransportError` on a close mid-frame, like :func:`read_frame`.
    """
    import asyncio

    try:
        header = await reader.readexactly(HEADER_SIZE)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise EOFError("peer closed the connection") from None
        raise TransportError(
            f"peer closed mid-header ({len(exc.partial)} of {HEADER_SIZE} "
            "bytes read)"
        ) from exc
    version, kind, seq, length = decode_header_ex(header, max_frame)
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise TransportError(
                f"peer closed mid-frame ({len(exc.partial)} of {length} "
                "body bytes read)"
            ) from exc
    else:
        body = b""
    return version, kind, seq, decode_body(kind, body, version)


async def read_frame_async(
    reader, max_frame: int = DEFAULT_MAX_FRAME
) -> Tuple[FrameKind, int, Any]:
    """Read one frame from an :class:`asyncio.StreamReader`.

    Raises :class:`EOFError` on a clean close between frames and
    :class:`TransportError` on a close mid-frame, like :func:`read_frame`.
    """
    _, kind, seq, payload = await read_frame_async_ex(reader, max_frame)
    return kind, seq, payload
