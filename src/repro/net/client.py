"""Clients for the network ingress: blocking and asyncio, one protocol core.

Both clients return the same objects an in-process caller gets from
:class:`~repro.session.concurrent.ConcurrentSessionServer`:
:class:`StampedResult` for queries and :class:`StampedOutcome` lists for
mutations, so parity checks and stamp reasoning are written once whichever
side of the socket the caller is on.  Server-side exceptions arrive in
``ERROR`` frames and are re-raised as their original type
(:class:`GraphError`, :class:`MutationBatchError`, ...); if the class fails
to reconstruct the client raises :class:`~repro.errors.TransportError`
carrying the server's message.

The request-building surface lives once, in :class:`_ClientCore`; the two
clients differ only in transport style:

* :class:`SessionClient` -- blocking, one request in flight at a time
  (thread-safe: calls serialize on an internal lock).  Open several clients
  for concurrency; each costs one TCP connection.
* :class:`AsyncSessionClient` -- asyncio, *pipelined*: any number of
  coroutines can have requests in flight on one connection; a background
  reader task keys replies to waiters by the frame ``seq``.

:func:`connect` is the one entry point for both: it dials, performs the
``HELLO`` handshake (negotiating protocol v2 when the server speaks it),
and returns the ready client.

Standing queries (protocol v2) arrive through :meth:`subscribe`: the
blocking client hands back a :class:`Subscription` (an iterator of
:class:`~repro.net.protocol.PushDelta` on a dedicated connection), the
asyncio client an :class:`AsyncSubscription` (an async iterator sharing
the pipelined connection).

>>> with connect((host, port)) as client:
...     result = client.run(query)            # StampedResult
...     client.delete_edge(u, v)              # StampedOutcome, stamp advanced
...     client.run(query).stamp
1
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import queue as queue_mod
import socket
import threading
import time
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.config import DgpmConfig
from repro.errors import ReproError, TransportError, WireFormatError
from repro.graph.digraph import Label, Node
from repro.graph.mutations import (
    AddNode,
    DeleteEdge,
    InsertEdge,
    OpLike,
    RemoveNode,
    normalize_ops,
)
from repro.graph.pattern import Pattern
from repro.net import protocol
from repro.net.protocol import DEFAULT_MAX_FRAME, FrameKind
from repro.runtime.transport import RetryPolicy
# Import from the concrete module (not the repro.session package): this
# module loads while the package may still be mid-initialization.
from repro.session.concurrent import StampedOutcome, StampedResult

#: the versions a client announces by default: v1 for old servers, v2
#: preferred when the server's HELLO reply offers it
DEFAULT_VERSIONS: Tuple[int, ...] = (protocol.PROTOCOL_V1, protocol.PROTOCOL_VERSION)


def _unwrap(kind: FrameKind, payload: Any, expected: FrameKind) -> Any:
    """Turn a reply frame into a return value or a raised server error."""
    if kind == FrameKind.ERROR:
        raise payload.to_exception()
    if kind != expected:
        raise WireFormatError(
            f"server answered {kind.name} where {expected.name} was expected"
        )
    return payload


def _stamped(reply: protocol.RunReply) -> StampedResult:
    return StampedResult(
        relation=reply.relation, metrics=reply.metrics, stamp=reply.stamp
    )


def _next_seq(counter: "itertools.count") -> int:
    """The next wire seq: 32 bits, never 0 (0 is the server's error filler).

    The header field is a u32; an unmasked Python int would stop matching
    replies after 2**32 requests on one long-lived connection.
    """
    seq = next(counter) & 0xFFFFFFFF
    if seq == 0:
        seq = next(counter) & 0xFFFFFFFF
    return seq


def _reassemble_chunks(
    slices: Dict[int, bytes], total: int, seq: int, max_frame: int
) -> Tuple[FrameKind, Any]:
    """Decode the frame carried by a complete set of RESULT_CHUNK slices."""
    if sorted(slices) != list(range(total)):
        raise WireFormatError("chunked reply with missing or duplicate slices")
    inner, inner_seq = protocol.decode(
        b"".join(slices[i] for i in range(total)), max_frame
    )
    if inner_seq != seq:
        raise WireFormatError(
            f"chunked reply reassembled with seq {inner_seq} "
            f"(its slices carried {seq})"
        )
    return protocol.kind_of(inner), inner


def _read_reply_sync(sock: socket.socket, max_frame: int) -> Tuple[FrameKind, int, Any]:
    """Read one logical reply from a blocking socket, reassembling chunks.

    The server holds its write lock across all slices of one chunked reply,
    so they arrive consecutively; anything interleaved means the stream is
    broken.
    """
    kind, seq, payload = protocol.read_frame(sock, max_frame)
    if kind != FrameKind.RESULT_CHUNK:
        return kind, seq, payload
    slices = {payload.index: payload.payload}
    total = payload.total
    while len(slices) < total:
        next_kind, next_seq, chunk = protocol.read_frame(sock, max_frame)
        if next_kind != FrameKind.RESULT_CHUNK or next_seq != seq:
            raise WireFormatError(
                f"a {next_kind.name} frame interleaved inside a chunked reply"
            )
        slices[chunk.index] = chunk.payload
    inner_kind, inner = _reassemble_chunks(slices, total, seq, max_frame)
    return inner_kind, seq, inner


class _ClientCore:
    """The request-building surface shared by both clients.

    Every public method is written once: it builds its request frame, hands
    it to the transport hook :meth:`_req`, and post-processes the reply
    through :meth:`_map`.  The blocking client implements ``_req`` as a
    synchronous round-trip and ``_map`` as direct application; the asyncio
    client returns a coroutine from ``_req`` and chains ``fn`` onto it in
    ``_map``, so the one definition yields both the blocking and the
    awaitable surface.

    ``versions`` is what the client announces in ``HELLO``; after the
    handshake the connection speaks the highest version both sides listed
    (``versions=(1,)`` pins a connection to the legacy pickle protocol).
    """

    def __init__(self, max_frame: int, versions: Tuple[int, ...]) -> None:
        bad = set(versions) - protocol.SUPPORTED_VERSIONS
        if bad or not versions:
            raise ReproError(
                f"cannot announce protocol versions {tuple(versions)!r} "
                f"(this build speaks {sorted(protocol.SUPPORTED_VERSIONS)})"
            )
        self._max_frame = max_frame
        self._announce: Tuple[int, ...] = tuple(sorted(set(versions)))
        self._version = protocol.PROTOCOL_V1
        self._seq = itertools.count(1)

    # ------------------------------------------------------------------
    # transport hooks (subclass responsibility)
    # ------------------------------------------------------------------
    def _req(self, kind: FrameKind, frame: Any, expected: FrameKind) -> Any:
        raise NotImplementedError

    def _map(self, pending: Any, fn: Callable[[Any], Any]) -> Any:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # negotiation
    # ------------------------------------------------------------------
    @property
    def protocol_version(self) -> int:
        """The negotiated wire version (1 until :meth:`hello` upgrades it)."""
        return self._version

    def _negotiated(self, reply: protocol.Hello) -> protocol.Hello:
        common = (
            set(reply.versions) & set(self._announce) & protocol.SUPPORTED_VERSIONS
        )
        if common:
            self._version = max(common)
        return reply

    def hello(self, role: str = "client", token: bytes = b"") -> Any:
        """Handshake: announce our versions, adopt the best both sides speak.

        Returns/resolves to the server's :class:`~repro.net.protocol.Hello`
        (doubling as a liveness probe).  An old server that never heard of
        ``versions`` announces ``(1,)`` and the connection stays at v1.
        """
        return self._map(
            self._req(
                FrameKind.HELLO,
                protocol.Hello(role=role, token=token, versions=self._announce),
                FrameKind.HELLO,
            ),
            self._negotiated,
        )

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def run(
        self,
        query: Pattern,
        algorithm: str = "auto",
        config: Optional[DgpmConfig] = None,
    ) -> Any:
        """Evaluate one query; returns/resolves to the stamped answer."""
        return self._map(
            self._req(
                FrameKind.RUN,
                protocol.RunRequest(query=query, algorithm=algorithm, config=config),
                FrameKind.RESULT,
            ),
            _stamped,
        )

    def stats(self) -> Any:
        """The server's serving counters, stamp, and identity facts."""
        return self._req(
            FrameKind.STATS, protocol.StatsRequest(), FrameKind.STATS_REPLY
        )

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def apply(self, updates: Sequence[OpLike]) -> Any:
        """Apply a mutation batch (atomic to readers); see
        :meth:`ConcurrentSessionServer.apply`.

        Ops are :class:`~repro.graph.mutations.MutationOp` instances; the
        legacy bare-tuple spelling still works, with a client-side
        :class:`DeprecationWarning`.
        """
        ops = tuple(normalize_ops(updates))
        return self._map(
            self._req(
                FrameKind.MUTATE, protocol.MutateRequest(ops=ops), FrameKind.OUTCOMES
            ),
            lambda reply: list(reply.outcomes),
        )

    def delete_edge(self, u: Node, v: Node) -> Any:
        """Delete edge ``(u, v)``; completes once applied, with its stamp."""
        return self._map(self.apply([DeleteEdge(u, v)]), lambda outcomes: outcomes[0])

    def insert_edge(self, u: Node, v: Node) -> Any:
        """Insert edge ``(u, v)``; completes once applied, with its stamp."""
        return self._map(self.apply([InsertEdge(u, v)]), lambda outcomes: outcomes[0])

    def add_node(self, node: Node, label: Label, fid: Optional[int] = None) -> Any:
        """Add an isolated labeled node; completes once applied."""
        return self._map(
            self.apply([AddNode(node, label, fid)]), lambda outcomes: outcomes[0]
        )

    def remove_node(self, node: Node) -> Any:
        """Remove ``node`` and every incident edge; completes once applied."""
        return self._map(self.apply([RemoveNode(node)]), lambda outcomes: outcomes[0])


class SessionClient(_ClientCore):
    """A blocking client for one :class:`NetworkSessionServer`.

    Pass ``reconnect=RetryPolicy(...)`` to opt into bounded redial: a broken
    stream (timeout, server restart, mid-exchange disconnect) still fails
    the request it struck -- its reply can no longer be trusted to pair up
    -- but instead of marking the client permanently broken, the *next*
    request dials a fresh connection under the policy's backoff schedule.
    Without a policy, any stream break closes the client for good (the
    original conservative semantics).  The negotiated protocol version
    survives a redial: the server treats every frame by its own header.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = None,
        max_frame: int = DEFAULT_MAX_FRAME,
        reconnect: Optional[RetryPolicy] = None,
        versions: Tuple[int, ...] = DEFAULT_VERSIONS,
    ) -> None:
        super().__init__(max_frame, versions)
        self._host = host
        self._port = port
        self._timeout = timeout
        self._reconnect = reconnect
        self._sock: Optional[socket.socket] = self._dial()
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    def _dial(self) -> socket.socket:
        try:
            sock = socket.create_connection(
                (self._host, self._port), timeout=self._timeout
            )
        except OSError as exc:
            raise TransportError(
                f"cannot reach server at {self._host}:{self._port}: {exc}"
            ) from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _broken(self, message: str) -> TransportError:
        """Drop the connection and build the error to raise.

        A timeout or mid-exchange disconnect leaves the byte stream
        desynchronized (the late reply may still arrive and would pair with
        the *next* request), so the socket is never reused.  Without a
        ``reconnect`` policy the whole client is closed for good; with one,
        only the socket dies and the next request redials.
        """
        if self._reconnect is None:
            self._closed = True
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass
            self._sock = None
        return TransportError(message)

    def _redial_locked(self) -> None:
        """Bounded reconnect (fresh socket, fresh stream) under the policy."""
        if self._reconnect is None:  # pragma: no cover - guarded by _broken
            raise TransportError("the client is closed")
        last: Optional[BaseException] = None
        for delay in self._reconnect.delays():
            try:
                self._sock = self._dial()
                return
            except TransportError as exc:
                last = exc
                time.sleep(delay)
        raise TransportError(
            f"reconnect to {self._host}:{self._port} failed after "
            f"{self._reconnect.attempts} attempts: {last}"
        ) from last

    def _map(self, pending: Any, fn: Callable[[Any], Any]) -> Any:
        return fn(pending)

    def _req(self, kind: FrameKind, frame: Any, expected: FrameKind) -> Any:
        with self._lock:
            if self._closed:
                raise TransportError("the client is closed")
            if self._sock is None:
                self._redial_locked()
            seq = _next_seq(self._seq)
            try:
                protocol.write_frame(
                    self._sock,
                    kind,
                    frame,
                    seq=seq,
                    max_frame=self._max_frame,
                    version=self._version,
                )
                reply_kind, reply_seq, payload = _read_reply_sync(
                    self._sock, self._max_frame
                )
            except EOFError as exc:
                raise self._broken("server closed the connection") from exc
            except (ConnectionError, socket.timeout) as exc:
                raise self._broken(f"connection to server lost: {exc}") from exc
            except (TransportError, WireFormatError) as exc:
                # Mid-frame disconnects and framing garbage also leave the
                # stream unusable; keep the original error, refuse reuse.
                self._broken(str(exc))
                raise
            if reply_seq != seq:
                raise self._broken(
                    f"reply seq {reply_seq} does not match request seq {seq}; "
                    "the stream is desynchronized"
                )
        return _unwrap(reply_kind, payload, expected)

    # ------------------------------------------------------------------
    def run_many(
        self,
        queries: Iterable[Pattern],
        algorithm: str = "auto",
        config: Optional[DgpmConfig] = None,
    ) -> List[StampedResult]:
        """Evaluate queries one after another (one connection, in order)."""
        return [self.run(q, algorithm=algorithm, config=config) for q in queries]

    def subscribe(
        self,
        query: Pattern,
        algorithm: str = "auto",
        config: Optional[DgpmConfig] = None,
        buffer: int = 256,
    ) -> "Subscription":
        """Open a standing query; returns a :class:`Subscription` iterator.

        The subscription runs on its own dedicated connection (this
        client's request/reply stream stays strictly paired), opened
        against the same server.  Requires protocol v2: if this client has
        not negotiated yet, a ``HELLO`` handshake runs first, and a server
        that only speaks v1 raises :class:`TransportError`.
        """
        if self._version == protocol.PROTOCOL_V1:
            self.hello()
            if self._version == protocol.PROTOCOL_V1:
                raise TransportError(
                    "the server does not speak protocol v2; "
                    "standing queries are unavailable"
                )
        return Subscription(
            self._host,
            self._port,
            query,
            algorithm=algorithm,
            config=config,
            buffer=buffer,
            timeout=self._timeout,
            max_frame=self._max_frame,
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Say goodbye and drop the connection (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._sock is None:  # broken earlier, awaiting a redial
                return
            try:
                protocol.write_frame(
                    self._sock, FrameKind.BYE, protocol.Bye(), seq=_next_seq(self._seq)
                )
            except OSError:
                pass
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "SessionClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class Subscription:
    """A standing query on a dedicated connection: iterate to receive deltas.

    Yields :class:`~repro.net.protocol.PushDelta` frames in stamp order.
    ``sub_id``, ``stamp``, and ``relation`` describe the baseline: the full
    match relation at registration time, which the deltas apply on top of.

    Iteration ends when :meth:`close` is called, when the server hangs up,
    or after yielding a ``lapsed=True`` delta (the server dropped the
    subscription because this consumer fell further behind than its
    declared ``buffer``; re-subscribe for a fresh baseline).
    """

    def __init__(
        self,
        host: str,
        port: int,
        query: Pattern,
        algorithm: str,
        config: Optional[DgpmConfig],
        buffer: int,
        timeout: Optional[float],
        max_frame: int,
    ) -> None:
        self._max_frame = max_frame
        self._queue: "queue_mod.Queue[Optional[protocol.PushDelta]]" = queue_mod.Queue(
            maxsize=max(1, buffer)
        )
        self._closed = False
        self._seq = itertools.count(2)
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise TransportError(
                f"cannot reach server at {host}:{port}: {exc}"
            ) from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        try:
            protocol.write_frame(
                sock,
                FrameKind.SUBSCRIBE,
                protocol.SubscribeRequest(
                    query=query, algorithm=algorithm, config=config, buffer=buffer
                ),
                seq=1,
                max_frame=max_frame,
                version=protocol.PROTOCOL_VERSION,
            )
            kind, _seq, payload = _read_reply_sync(sock, max_frame)
            reply = _unwrap(kind, payload, FrameKind.SUBSCRIBED)
        except BaseException:
            with contextlib.suppress(OSError):
                sock.close()
            raise
        #: the subscription id (quote it to :meth:`close`'s UNSUBSCRIBE)
        self.sub_id: int = reply.sub_id
        #: the stamp the baseline relation describes
        self.stamp: int = reply.stamp
        #: the full match relation at ``stamp``; deltas apply on top of it
        self.relation = reply.relation
        self._reader = threading.Thread(
            target=self._read_loop, daemon=True, name="repro-subscription"
        )
        self._reader.start()

    def _read_loop(self) -> None:
        try:
            while True:
                kind, _seq, payload = _read_reply_sync(self._sock, self._max_frame)
                if kind == FrameKind.PUSH:
                    self._put(payload)
                    if payload.lapsed:
                        break
                elif kind == FrameKind.SUBSCRIBED:
                    break  # the UNSUBSCRIBE ack: a clean goodbye
                else:
                    break  # ERROR (or garbage): nothing more will arrive
        except (EOFError, OSError, TransportError, WireFormatError):
            pass
        finally:
            self._put(None)

    def _put(self, item: Optional[protocol.PushDelta]) -> None:
        # Bounded blocking put that stays responsive to close(): TCP
        # backpressure (and eventually the server-side lapse) handles a
        # consumer that stops draining.
        while True:
            try:
                self._queue.put(item, timeout=0.1)
                return
            except queue_mod.Full:
                if self._closed:
                    return

    def __iter__(self) -> "Subscription":
        return self

    def __next__(self) -> protocol.PushDelta:
        item = self._queue.get()
        if item is None:
            raise StopIteration
        return item

    def close(self) -> None:
        """Unsubscribe, say goodbye, and drop the connection (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            protocol.write_frame(
                self._sock,
                FrameKind.UNSUBSCRIBE,
                protocol.UnsubscribeRequest(sub_id=self.sub_id),
                seq=_next_seq(self._seq),
                max_frame=self._max_frame,
                version=protocol.PROTOCOL_VERSION,
            )
            protocol.write_frame(
                self._sock,
                FrameKind.BYE,
                protocol.Bye(),
                seq=_next_seq(self._seq),
                max_frame=self._max_frame,
                version=protocol.PROTOCOL_VERSION,
            )
        except OSError:
            pass
        # The reader exits on the UNSUBSCRIBE ack (or on EOF when the
        # server hangs up first); closing the socket unblocks it either way.
        self._reader.join(timeout=5.0)
        with contextlib.suppress(OSError):
            self._sock.close()
        if self._reader.is_alive():  # pragma: no cover - defensive
            self._reader.join(timeout=5.0)

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class AsyncSessionClient(_ClientCore):
    """A pipelining asyncio client: many requests in flight on one socket.

    Build with :meth:`connect` (or the module-level :func:`connect`
    factory); every request coroutine writes its frame and awaits a future
    keyed by the frame ``seq``, which the background reader resolves as
    replies arrive (in whatever order the server finishes them).
    ``asyncio.gather(*[client.run(q) for q in queries])`` therefore
    overlaps all the queries on a single connection.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        max_frame: int = DEFAULT_MAX_FRAME,
        versions: Tuple[int, ...] = DEFAULT_VERSIONS,
    ) -> None:
        super().__init__(max_frame, versions)
        self._reader = reader
        self._writer = writer
        self._pending: Dict[int, asyncio.Future] = {}
        self._chunks: Dict[int, Dict[int, bytes]] = {}
        self._chunk_totals: Dict[int, int] = {}
        self._subs: Dict[int, "AsyncSubscription"] = {}
        self._write_lock = asyncio.Lock()
        self._closed = False
        self._broken: Optional[BaseException] = None
        self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        max_frame: int = DEFAULT_MAX_FRAME,
        versions: Tuple[int, ...] = DEFAULT_VERSIONS,
    ) -> "AsyncSessionClient":
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except OSError as exc:
            raise TransportError(
                f"cannot reach server at {host}:{port}: {exc}"
            ) from exc
        return cls(reader, writer, max_frame=max_frame, versions=versions)

    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        try:
            while True:
                kind, seq, payload = await protocol.read_frame_async(
                    self._reader, self._max_frame
                )
                if kind == FrameKind.RESULT_CHUNK:
                    slices = self._chunks.setdefault(seq, {})
                    slices[payload.index] = payload.payload
                    self._chunk_totals[seq] = payload.total
                    if len(slices) < payload.total:
                        continue
                    del self._chunks[seq]
                    total = self._chunk_totals.pop(seq)
                    kind, payload = _reassemble_chunks(
                        slices, total, seq, self._max_frame
                    )
                if kind == FrameKind.PUSH:
                    sub = self._subs.get(seq)
                    if sub is not None:
                        sub._deliver(payload)
                    continue
                waiter = self._pending.pop(seq, None)
                if waiter is not None and not waiter.done():
                    waiter.set_result((kind, payload))
        except BaseException as exc:  # EOF, cancellation, wire garbage
            if isinstance(exc, EOFError):
                exc = TransportError("server closed the connection")
            self._broken = exc
            for waiter in self._pending.values():
                if not waiter.done():
                    waiter.set_exception(
                        TransportError(f"connection to server lost: {exc}")
                    )
            self._pending.clear()
            for sub in list(self._subs.values()):
                sub._connection_lost()
            self._subs.clear()
            if isinstance(exc, asyncio.CancelledError):
                raise

    async def _send_locked(self, data: bytes, seq: int) -> None:
        try:
            async with self._write_lock:
                self._writer.write(data)
                await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            self._pending.pop(seq, None)
            raise TransportError(f"connection to server lost: {exc}") from exc

    async def _round_trip(self, kind: FrameKind, frame: Any, seq: int) -> Tuple:
        if self._closed:
            raise TransportError("the client is closed")
        if self._broken is not None:
            raise TransportError(f"connection to server lost: {self._broken}")
        waiter = asyncio.get_running_loop().create_future()
        self._pending[seq] = waiter
        data = protocol.encode_payload(
            kind, frame, seq=seq, max_frame=self._max_frame, version=self._version
        )
        await self._send_locked(data, seq)
        return await waiter

    async def _req(self, kind: FrameKind, frame: Any, expected: FrameKind) -> Any:
        reply_kind, payload = await self._round_trip(kind, frame, _next_seq(self._seq))
        return _unwrap(reply_kind, payload, expected)

    def _map(self, pending: Any, fn: Callable[[Any], Any]) -> Any:
        async def chained() -> Any:
            return fn(await pending)

        return chained()

    # ------------------------------------------------------------------
    async def run_many(
        self,
        queries: Iterable[Pattern],
        algorithm: str = "auto",
        config: Optional[DgpmConfig] = None,
    ) -> List[StampedResult]:
        """Evaluate queries concurrently (pipelined); results in input order."""
        return list(
            await asyncio.gather(
                *[self.run(q, algorithm=algorithm, config=config) for q in queries]
            )
        )

    async def subscribe(
        self,
        query: Pattern,
        algorithm: str = "auto",
        config: Optional[DgpmConfig] = None,
        buffer: int = 256,
    ) -> "AsyncSubscription":
        """Open a standing query on this connection; returns an async
        iterator of :class:`~repro.net.protocol.PushDelta`.

        PUSH frames share the pipelined connection (routed by the
        ``SUBSCRIBE`` frame's ``seq``), so any number of subscriptions and
        requests coexist.  Requires protocol v2: if this client has not
        negotiated yet, a ``HELLO`` handshake runs first, and a server
        that only speaks v1 raises :class:`TransportError`.
        """
        if self._version == protocol.PROTOCOL_V1:
            await self.hello()
            if self._version == protocol.PROTOCOL_V1:
                raise TransportError(
                    "the server does not speak protocol v2; "
                    "standing queries are unavailable"
                )
        seq = _next_seq(self._seq)
        sub = AsyncSubscription(self, seq, buffer)
        # Registered before the ack is awaited: the first PUSH may win the
        # race with the SUBSCRIBED reply on the server's write lock.
        self._subs[seq] = sub
        try:
            reply_kind, payload = await self._round_trip(
                FrameKind.SUBSCRIBE,
                protocol.SubscribeRequest(
                    query=query, algorithm=algorithm, config=config, buffer=buffer
                ),
                seq,
            )
            reply = _unwrap(reply_kind, payload, FrameKind.SUBSCRIBED)
        except BaseException:
            self._subs.pop(seq, None)
            raise
        sub._opened(reply)
        return sub

    async def _unsubscribe(self, sub_id: int) -> None:
        await self._req(
            FrameKind.UNSUBSCRIBE,
            protocol.UnsubscribeRequest(sub_id=sub_id),
            FrameKind.SUBSCRIBED,
        )

    # ------------------------------------------------------------------
    async def aclose(self) -> None:
        """Say goodbye, stop the reader, drop the connection (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for sub in list(self._subs.values()):
            sub._connection_lost()
        self._subs.clear()
        try:
            async with self._write_lock:
                self._writer.write(
                    protocol.encode_payload(
                        FrameKind.BYE, protocol.Bye(), seq=_next_seq(self._seq)
                    )
                )
                await self._writer.drain()
        except (ConnectionError, OSError):
            pass
        self._reader_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self._reader_task
        self._writer.close()
        with contextlib.suppress(Exception):
            await self._writer.wait_closed()

    async def __aenter__(self) -> "AsyncSessionClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()


class AsyncSubscription:
    """A standing query on a pipelined connection: ``async for`` the deltas.

    Yields :class:`~repro.net.protocol.PushDelta` frames in stamp order;
    ``sub_id``, ``stamp``, and ``relation`` describe the baseline the
    deltas apply on top of.

    Deltas buffer locally up to ``buffer``; a consumer that falls further
    behind lapses the subscription *locally* (a final ``lapsed=True`` delta
    is yielded and an UNSUBSCRIBE is fired off) -- same contract as the
    server-side lapse, decided by whichever side's buffer fills first.
    Iteration ends after a lapse, after :meth:`aclose`, or when the
    connection is lost (undelivered deltas are dropped: a gapped stream
    cannot be trusted).
    """

    def __init__(self, client: AsyncSessionClient, seq: int, buffer: int) -> None:
        self._client = client
        self._seq = seq
        self._queue: "asyncio.Queue[Optional[protocol.PushDelta]]" = asyncio.Queue(
            maxsize=max(1, buffer)
        )
        self._finished = False
        self._detached = False
        self.sub_id: int = -1
        self.stamp: int = -1
        self.relation = None

    def _opened(self, reply: protocol.SubscribeReply) -> None:
        self.sub_id = reply.sub_id
        self.stamp = reply.stamp
        self.relation = reply.relation

    # -- reader-task side ----------------------------------------------
    def _drain(self) -> None:
        while True:
            try:
                self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return

    def _deliver(self, delta: protocol.PushDelta) -> None:
        if self._detached:
            return
        try:
            self._queue.put_nowait(delta)
        except asyncio.QueueFull:
            # Local lapse: pending deltas are void (the marker says so),
            # which frees the slot for it; tell the server to stop pushing.
            self._detached = True
            self._client._subs.pop(self._seq, None)
            self._drain()
            self._queue.put_nowait(
                protocol.PushDelta(sub_id=self.sub_id, stamp=delta.stamp, lapsed=True)
            )
            asyncio.get_running_loop().create_task(self._fire_unsubscribe())

    def _connection_lost(self) -> None:
        if self._detached:
            return
        self._detached = True
        self._drain()
        self._queue.put_nowait(None)

    async def _fire_unsubscribe(self) -> None:
        with contextlib.suppress(Exception):
            await self._client._unsubscribe(self.sub_id)

    # -- consumer side -------------------------------------------------
    def __aiter__(self) -> "AsyncSubscription":
        return self

    async def __anext__(self) -> protocol.PushDelta:
        if self._finished and self._queue.empty():
            raise StopAsyncIteration
        item = await self._queue.get()
        if item is None:
            self._finished = True
            raise StopAsyncIteration
        if item.lapsed:
            self._finished = True
        return item

    async def aclose(self) -> None:
        """Unsubscribe and end iteration (idempotent)."""
        if self._finished and self._detached:
            return
        self._finished = True
        already_detached = self._detached
        self._detached = True
        self._client._subs.pop(self._seq, None)
        self._drain()
        with contextlib.suppress(asyncio.QueueFull):
            self._queue.put_nowait(None)
        if not already_detached:
            with contextlib.suppress(Exception):
                await self._client._unsubscribe(self.sub_id)

    async def __aenter__(self) -> "AsyncSubscription":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()


# ----------------------------------------------------------------------
# the one entry point
# ----------------------------------------------------------------------
Address = Union[Tuple[str, int], str]


def _parse_addr(addr: Address) -> Tuple[str, int]:
    if isinstance(addr, str):
        host, sep, port = addr.rpartition(":")
        if not sep or not host:
            raise ReproError(f"cannot parse address {addr!r} (want 'host:port')")
        try:
            return host, int(port)
        except ValueError:
            raise ReproError(
                f"cannot parse address {addr!r} (want 'host:port')"
            ) from None
    host, port = addr
    return host, int(port)


def connect(
    addr: Address,
    *,
    async_: bool = False,
    reconnect: Optional[RetryPolicy] = None,
    timeout: Optional[float] = None,
    max_frame: int = DEFAULT_MAX_FRAME,
    versions: Tuple[int, ...] = DEFAULT_VERSIONS,
) -> Any:
    """Dial a session server and perform the ``HELLO`` handshake.

    ``addr`` is a ``(host, port)`` pair or a ``"host:port"`` string.  With
    ``async_=False`` (the default) returns a ready :class:`SessionClient`;
    with ``async_=True`` returns an *awaitable* resolving to an
    :class:`AsyncSessionClient` (await it inside a running loop).  Either
    way the handshake has already negotiated the protocol version --
    ``client.protocol_version`` is 2 against a current server, and
    ``versions=(1,)`` pins the connection to the legacy pickle protocol.

    ``reconnect`` (a :class:`~repro.runtime.transport.RetryPolicy`) opts
    the blocking client into bounded redial; the pipelined asyncio client
    does not support it.
    """
    host, port = _parse_addr(addr)
    if async_:
        if reconnect is not None:
            raise ReproError("reconnect policies apply to the blocking client only")
        if timeout is not None:
            raise ReproError(
                "timeout applies to the blocking client only "
                "(use asyncio.wait_for around awaits)"
            )
        return _connect_async(host, port, max_frame=max_frame, versions=versions)
    client = SessionClient(
        host,
        port,
        timeout=timeout,
        max_frame=max_frame,
        reconnect=reconnect,
        versions=versions,
    )
    try:
        client.hello()
    except BaseException:
        client.close()
        raise
    return client


async def _connect_async(
    host: str, port: int, max_frame: int, versions: Tuple[int, ...]
) -> AsyncSessionClient:
    client = await AsyncSessionClient.connect(
        host, port, max_frame=max_frame, versions=versions
    )
    try:
        await client.hello()
    except BaseException:
        await client.aclose()
        raise
    return client
