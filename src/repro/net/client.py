"""Clients for the network ingress: blocking and asyncio, one protocol.

Both clients return the same objects an in-process caller gets from
:class:`~repro.session.concurrent.ConcurrentSessionServer`:
:class:`StampedResult` for queries and :class:`StampedOutcome` lists for
mutations, so parity checks and stamp reasoning are written once whichever
side of the socket the caller is on.  Server-side exceptions arrive pickled
in ``ERROR`` frames and are re-raised as their original type
(:class:`GraphError`, :class:`MutationBatchError`, ...); if the class fails
to unpickle the client raises :class:`~repro.errors.TransportError` carrying
the server's message.

* :class:`SessionClient` -- blocking, one request in flight at a time
  (thread-safe: calls serialize on an internal lock).  Open several clients
  for concurrency; each costs one TCP connection.
* :class:`AsyncSessionClient` -- asyncio, *pipelined*: any number of
  coroutines can have requests in flight on one connection; a background
  reader task keys replies to waiters by the frame ``seq``.

>>> with SessionClient(host, port) as client:
...     result = client.run(query)            # StampedResult
...     client.delete_edge(u, v)              # StampedOutcome, stamp advanced
...     client.run(query).stamp
1
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import socket
import threading
import time
from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import DgpmConfig
from repro.errors import TransportError, WireFormatError
from repro.graph.digraph import Label, Node
from repro.graph.pattern import Pattern
from repro.net import protocol
from repro.net.protocol import DEFAULT_MAX_FRAME, FrameKind
from repro.runtime.transport import RetryPolicy
# Import from the concrete module (not the repro.session package): this
# module loads while the package may still be mid-initialization.
from repro.session.concurrent import StampedOutcome, StampedResult


def _unwrap(kind: FrameKind, payload: Any, expected: FrameKind) -> Any:
    """Turn a reply frame into a return value or a raised server error."""
    if kind == FrameKind.ERROR:
        raise payload.to_exception()
    if kind != expected:
        raise WireFormatError(
            f"server answered {kind.name} where {expected.name} was expected"
        )
    return payload


def _stamped(reply: protocol.RunReply) -> StampedResult:
    return StampedResult(
        relation=reply.relation, metrics=reply.metrics, stamp=reply.stamp
    )


def _next_seq(counter: "itertools.count") -> int:
    """The next wire seq: 32 bits, never 0 (0 is the server's error filler).

    The header field is a u32; an unmasked Python int would stop matching
    replies after 2**32 requests on one long-lived connection.
    """
    seq = next(counter) & 0xFFFFFFFF
    if seq == 0:
        seq = next(counter) & 0xFFFFFFFF
    return seq


class SessionClient:
    """A blocking client for one :class:`NetworkSessionServer`.

    Pass ``reconnect=RetryPolicy(...)`` to opt into bounded redial: a broken
    stream (timeout, server restart, mid-exchange disconnect) still fails
    the request it struck -- its reply can no longer be trusted to pair up
    -- but instead of marking the client permanently broken, the *next*
    request dials a fresh connection under the policy's backoff schedule.
    Without a policy, any stream break closes the client for good (the
    original conservative semantics).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = None,
        max_frame: int = DEFAULT_MAX_FRAME,
        reconnect: Optional[RetryPolicy] = None,
    ) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout
        self._reconnect = reconnect
        self._sock: Optional[socket.socket] = self._dial()
        self._max_frame = max_frame
        self._lock = threading.Lock()
        self._seq = itertools.count(1)
        self._closed = False

    # ------------------------------------------------------------------
    def _dial(self) -> socket.socket:
        try:
            sock = socket.create_connection(
                (self._host, self._port), timeout=self._timeout
            )
        except OSError as exc:
            raise TransportError(
                f"cannot reach server at {self._host}:{self._port}: {exc}"
            ) from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _broken(self, message: str) -> TransportError:
        """Drop the connection and build the error to raise.

        A timeout or mid-exchange disconnect leaves the byte stream
        desynchronized (the late reply may still arrive and would pair with
        the *next* request), so the socket is never reused.  Without a
        ``reconnect`` policy the whole client is closed for good; with one,
        only the socket dies and the next request redials.
        """
        if self._reconnect is None:
            self._closed = True
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass
            self._sock = None
        return TransportError(message)

    def _redial_locked(self) -> None:
        """Bounded reconnect (fresh socket, fresh stream) under the policy."""
        if self._reconnect is None:  # pragma: no cover - guarded by _broken
            raise TransportError("the client is closed")
        last: Optional[BaseException] = None
        for delay in self._reconnect.delays():
            try:
                self._sock = self._dial()
                return
            except TransportError as exc:
                last = exc
                time.sleep(delay)
        raise TransportError(
            f"reconnect to {self._host}:{self._port} failed after "
            f"{self._reconnect.attempts} attempts: {last}"
        ) from last

    def _request(self, kind: FrameKind, frame: Any, expected: FrameKind) -> Any:
        with self._lock:
            if self._closed:
                raise TransportError("the client is closed")
            if self._sock is None:
                self._redial_locked()
            seq = _next_seq(self._seq)
            try:
                protocol.write_frame(
                    self._sock, kind, frame, seq=seq, max_frame=self._max_frame
                )
                reply_kind, reply_seq, payload = protocol.read_frame(
                    self._sock, self._max_frame
                )
            except EOFError as exc:
                raise self._broken("server closed the connection") from exc
            except (ConnectionError, socket.timeout) as exc:
                raise self._broken(f"connection to server lost: {exc}") from exc
            except (TransportError, WireFormatError) as exc:
                # Mid-frame disconnects and framing garbage also leave the
                # stream unusable; keep the original error, refuse reuse.
                self._broken(str(exc))
                raise
            if reply_seq != seq:
                raise self._broken(
                    f"reply seq {reply_seq} does not match request seq {seq}; "
                    "the stream is desynchronized"
                )
        return _unwrap(reply_kind, payload, expected)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def run(
        self,
        query: Pattern,
        algorithm: str = "auto",
        config: Optional[DgpmConfig] = None,
    ) -> StampedResult:
        """Evaluate one query; returns the stamped answer."""
        reply = self._request(
            FrameKind.RUN,
            protocol.RunRequest(query=query, algorithm=algorithm, config=config),
            FrameKind.RESULT,
        )
        return _stamped(reply)

    def run_many(
        self,
        queries: Iterable[Pattern],
        algorithm: str = "auto",
        config: Optional[DgpmConfig] = None,
    ) -> List[StampedResult]:
        """Evaluate queries one after another (one connection, in order)."""
        return [self.run(q, algorithm=algorithm, config=config) for q in queries]

    def stats(self) -> protocol.StatsReply:
        """The server's serving counters, stamp, and identity facts."""
        return self._request(
            FrameKind.STATS, protocol.StatsRequest(), FrameKind.STATS_REPLY
        )

    def hello(self, role: str = "client", token: bytes = b"") -> protocol.Hello:
        """Announce ourselves; returns the server's Hello (a liveness probe)."""
        return self._request(
            FrameKind.HELLO, protocol.Hello(role=role, token=token), FrameKind.HELLO
        )

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def apply(self, updates: Sequence[Tuple]) -> List[StampedOutcome]:
        """Apply a mutation batch (atomic to readers); see
        :meth:`ConcurrentSessionServer.apply`."""
        reply = self._request(
            FrameKind.MUTATE,
            protocol.MutateRequest(ops=tuple(tuple(op) for op in updates)),
            FrameKind.OUTCOMES,
        )
        return list(reply.outcomes)

    def delete_edge(self, u: Node, v: Node) -> StampedOutcome:
        """Delete edge ``(u, v)``; blocks until applied, returns its stamp."""
        return self.apply([("delete", u, v)])[0]

    def insert_edge(self, u: Node, v: Node) -> StampedOutcome:
        """Insert edge ``(u, v)``; blocks until applied, returns its stamp."""
        return self.apply([("insert", u, v)])[0]

    def add_node(
        self, node: Node, label: Label, fid: Optional[int] = None
    ) -> StampedOutcome:
        """Add an isolated labeled node; blocks until applied."""
        if fid is None:
            op = ("add_node", node, label)
        else:
            op = ("add_node", node, label, fid)
        return self.apply([op])[0]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Say goodbye and drop the connection (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._sock is None:  # broken earlier, awaiting a redial
                return
            try:
                protocol.write_frame(
                    self._sock, FrameKind.BYE, protocol.Bye(), seq=_next_seq(self._seq)
                )
            except OSError:
                pass
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "SessionClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class AsyncSessionClient:
    """A pipelining asyncio client: many requests in flight on one socket.

    Build with :meth:`connect`; every request coroutine writes its frame and
    awaits a future keyed by the frame ``seq``, which the background reader
    resolves as replies arrive (in whatever order the server finishes
    them).  ``asyncio.gather(*[client.run(q) for q in queries])`` therefore
    overlaps all the queries on a single connection.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        max_frame: int = DEFAULT_MAX_FRAME,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._max_frame = max_frame
        self._seq = itertools.count(1)
        self._pending: dict = {}
        self._write_lock = asyncio.Lock()
        self._closed = False
        self._broken: Optional[BaseException] = None
        self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        max_frame: int = DEFAULT_MAX_FRAME,
    ) -> "AsyncSessionClient":
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except OSError as exc:
            raise TransportError(
                f"cannot reach server at {host}:{port}: {exc}"
            ) from exc
        return cls(reader, writer, max_frame=max_frame)

    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        try:
            while True:
                kind, seq, payload = await protocol.read_frame_async(
                    self._reader, self._max_frame
                )
                waiter = self._pending.pop(seq, None)
                if waiter is not None and not waiter.done():
                    waiter.set_result((kind, payload))
        except BaseException as exc:  # EOF, cancellation, wire garbage
            if isinstance(exc, EOFError):
                exc = TransportError("server closed the connection")
            self._broken = exc
            for waiter in self._pending.values():
                if not waiter.done():
                    waiter.set_exception(
                        TransportError(f"connection to server lost: {exc}")
                    )
            self._pending.clear()
            if isinstance(exc, asyncio.CancelledError):
                raise

    async def _request(self, kind: FrameKind, frame: Any, expected: FrameKind) -> Any:
        if self._closed:
            raise TransportError("the client is closed")
        if self._broken is not None:
            raise TransportError(f"connection to server lost: {self._broken}")
        seq = _next_seq(self._seq)
        waiter = asyncio.get_running_loop().create_future()
        self._pending[seq] = waiter
        data = protocol.encode_payload(kind, frame, seq=seq, max_frame=self._max_frame)
        try:
            async with self._write_lock:
                self._writer.write(data)
                await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            self._pending.pop(seq, None)
            raise TransportError(f"connection to server lost: {exc}") from exc
        reply_kind, payload = await waiter
        return _unwrap(reply_kind, payload, expected)

    # ------------------------------------------------------------------
    async def run(
        self,
        query: Pattern,
        algorithm: str = "auto",
        config: Optional[DgpmConfig] = None,
    ) -> StampedResult:
        """Evaluate one query; concurrent calls pipeline on the connection."""
        reply = await self._request(
            FrameKind.RUN,
            protocol.RunRequest(query=query, algorithm=algorithm, config=config),
            FrameKind.RESULT,
        )
        return _stamped(reply)

    async def run_many(
        self,
        queries: Iterable[Pattern],
        algorithm: str = "auto",
        config: Optional[DgpmConfig] = None,
    ) -> List[StampedResult]:
        """Evaluate queries concurrently (pipelined); results in input order."""
        return list(
            await asyncio.gather(
                *[self.run(q, algorithm=algorithm, config=config) for q in queries]
            )
        )

    async def stats(self) -> protocol.StatsReply:
        """The server's serving counters, stamp, and identity facts."""
        return await self._request(
            FrameKind.STATS, protocol.StatsRequest(), FrameKind.STATS_REPLY
        )

    async def hello(
        self, role: str = "client", token: bytes = b""
    ) -> protocol.Hello:
        """Announce ourselves; resolves to the server's Hello (liveness probe)."""
        return await self._request(
            FrameKind.HELLO, protocol.Hello(role=role, token=token), FrameKind.HELLO
        )

    async def apply(self, updates: Sequence[Tuple]) -> List[StampedOutcome]:
        """Apply a mutation batch (atomic to readers)."""
        reply = await self._request(
            FrameKind.MUTATE,
            protocol.MutateRequest(ops=tuple(tuple(op) for op in updates)),
            FrameKind.OUTCOMES,
        )
        return list(reply.outcomes)

    async def delete_edge(self, u: Node, v: Node) -> StampedOutcome:
        """Delete edge ``(u, v)``; resolves once applied, with its stamp."""
        return (await self.apply([("delete", u, v)]))[0]

    async def insert_edge(self, u: Node, v: Node) -> StampedOutcome:
        """Insert edge ``(u, v)``; resolves once applied, with its stamp."""
        return (await self.apply([("insert", u, v)]))[0]

    async def add_node(
        self, node: Node, label: Label, fid: Optional[int] = None
    ) -> StampedOutcome:
        """Add an isolated labeled node; resolves once applied."""
        if fid is None:
            op = ("add_node", node, label)
        else:
            op = ("add_node", node, label, fid)
        return (await self.apply([op]))[0]

    # ------------------------------------------------------------------
    async def aclose(self) -> None:
        """Say goodbye, stop the reader, drop the connection (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            async with self._write_lock:
                self._writer.write(
                    protocol.encode_payload(
                        FrameKind.BYE, protocol.Bye(), seq=_next_seq(self._seq)
                    )
                )
                await self._writer.drain()
        except (ConnectionError, OSError):
            pass
        self._reader_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self._reader_task
        self._writer.close()
        with contextlib.suppress(Exception):
            await self._writer.wait_closed()

    async def __aenter__(self) -> "AsyncSessionClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()
