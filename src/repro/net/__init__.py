"""repro.net: a network front door for the concurrent serving stack.

The paper's algorithms are message-passing protocols, but until this package
every run lived inside one OS process.  ``repro.net`` is the system boundary:

* :mod:`repro.net.protocol` -- a length-prefixed, versioned wire protocol
  with typed request/response frames (queries, mutation batches, stats,
  errors), shared by the ingress below and by the TCP worker transport of
  :mod:`repro.runtime.transport`;
* :mod:`repro.net.server` -- an asyncio ingress
  (:class:`NetworkSessionServer`) that accepts many client connections and
  feeds :meth:`ConcurrentSessionServer.submit`, preserving the
  snapshot/stamp contract end-to-end, with graceful shutdown that drains
  in-flight work;
* :mod:`repro.net.codec` -- protocol v2's tagged safe body encoding (no
  pickle on the client-facing wire);
* :mod:`repro.net.client` -- a blocking :class:`SessionClient` and a
  pipelining :class:`AsyncSessionClient` sharing one request core; build
  either through :func:`connect`, which also negotiates the protocol
  version and unlocks standing queries (:meth:`subscribe`).

``examples/network_query_server.py`` runs the full topology on localhost;
``examples/subscription_server.py`` demonstrates standing queries;
``benchmarks/bench_net.py`` gates the TCP ingress's throughput against the
in-process thread backend.
"""

# Exports resolve lazily (PEP 562): the worker transport imports
# ``repro.net.protocol`` while ``repro.session`` is still initializing, and
# an eager ``from repro.net.client import ...`` here would re-enter the
# half-built ``repro.session.concurrent`` module.
_EXPORTS = {
    "AsyncSessionClient": "repro.net.client",
    "AsyncSubscription": "repro.net.client",
    "SessionClient": "repro.net.client",
    "Subscription": "repro.net.client",
    "connect": "repro.net.client",
    "NetworkSessionServer": "repro.net.server",
    "ThreadedNetworkServer": "repro.net.server",
    "serve_in_thread": "repro.net.server",
    "FrameKind": "repro.net.protocol",
    "encode": "repro.net.protocol",
    "decode": "repro.net.protocol",
    "PROTOCOL_VERSION": "repro.net.protocol",
    "PROTOCOL_V1": "repro.net.protocol",
    "SUPPORTED_VERSIONS": "repro.net.protocol",
    "DEFAULT_MAX_FRAME": "repro.net.protocol",
    "AddNode": "repro.graph.mutations",
    "DeleteEdge": "repro.graph.mutations",
    "InsertEdge": "repro.graph.mutations",
    "MutationOp": "repro.graph.mutations",
    "RemoveNode": "repro.graph.mutations",
}


def __getattr__(name: str) -> object:
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module), name)
    globals()[name] = value  # cache: __getattr__ runs once per name
    return value


def __dir__() -> list:
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = [
    "AsyncSessionClient",
    "AsyncSubscription",
    "SessionClient",
    "Subscription",
    "connect",
    "NetworkSessionServer",
    "ThreadedNetworkServer",
    "serve_in_thread",
    "FrameKind",
    "encode",
    "decode",
    "PROTOCOL_VERSION",
    "PROTOCOL_V1",
    "SUPPORTED_VERSIONS",
    "DEFAULT_MAX_FRAME",
    "AddNode",
    "DeleteEdge",
    "InsertEdge",
    "MutationOp",
    "RemoveNode",
]
