"""Resident multi-query serving over a persistent, *mutable* fragmentation.

The paper's setting is a resident distributed graph queried repeatedly --
sites hold their fragments, the boundary tables are known, and queries
arrive as a stream.  :class:`SimulationSession` is that architecture in one
object: it loads a :class:`~repro.partition.fragmentation.Fragmentation`
once, precomputes every structure that depends only on the graph, and then
serves queries through the uniform driver registry of
:mod:`repro.session.drivers`, so the per-query cost excludes the per-graph
cost.

Amortized across queries:

* the boundary/watcher tables (:class:`~repro.core.depgraph.DependencyGraphs`,
  the paper's local dependency graphs ``G_d^i``), built lazily on the first
  algorithm that needs them;
* the per-fragment label indexes and successor-label counters, which live on
  each :class:`~repro.graph.digraph.DiGraph` (built on first use, reused by
  every subsequent ``LocalEvalState``);
* an interned label-id table over the fragmentation's alphabet;
* an LRU cache of final results keyed by ``(algorithm, config, canonical
  query hash)`` -- repeated queries are answered without touching a site.

Mutation API and its invariant contract
---------------------------------------

The session is the write path for a graph that changes while being served:
:meth:`delete_edge`, :meth:`insert_edge`, :meth:`add_node`,
:meth:`remove_node`, and the batched :meth:`apply` (typed
:class:`~repro.graph.mutations.MutationOp` values; legacy tuples keep
working under a :class:`DeprecationWarning`) patch the resident
fragmentation **in place** through
:meth:`Fragmentation.delete_edge` and friends, which maintain the
Section-2.2 invariants (``Fi.O``/``Fi.I`` membership, induced fragment
subgraphs) per update -- ``fragmentation.validate()`` holds after any
sequence of session-applied mutations.  The watcher/boundary tables are
patched incrementally (:meth:`DependencyGraphs.apply_delta`), never rebuilt,
and the result cache is *maintained*, not dropped:

* entries whose answers provably cannot change (no query edge carries the
  mutated edge's label pair; Section 2.1's simulation conditions only
  inspect an edge as a witness for a same-labeled query edge) are kept;
* hot entries hold a warm :class:`~repro.core.incremental.\
IncrementalMatchState` (the paper's incremental lEval, Section 4.2 / [13]):
  an edge deletion repairs their answers through the affected area only
  (``O(|AFF|)``), and the repaired relation replaces the cached one --
  entries are only rewritten when the answer actually changed;
* insertions, which can revive matches, fall back to a targeted
  re-evaluation of the affected warm entries (counters are merely patched
  when the insert is label-irrelevant);
* remaining affected entries are evicted individually.

``maintenance="invalidate"`` keeps the old drop-everything behavior (the
baseline that ``benchmarks/bench_updates.py`` gates against).

Mutations applied *around* the session (directly to the stored graphs) are
still detected: the session snapshots the fragmentation's mutation stamp
(:attr:`Fragmentation.version`), and a stale stamp on the next ``run``
re-validates the fragmentation and drops every cache -- external mutations
that break the Section-2.2 invariants raise
:class:`~repro.errors.FragmentationError` instead of being answered from
stale boundary tables.

>>> session = SimulationSession(fragmentation)
>>> first = session.run(query)                      # pays setup once
>>> again = session.run(query)                      # served from cache
>>> outcome = session.delete_edge(u, v)             # patches, not drops
>>> outcome.cache_repaired, outcome.cache_kept
...
>>> session.run(query).relation                     # still oracle-exact
"""

from __future__ import annotations

import threading
import time
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import DgpmConfig
from repro.core.depgraph import DependencyGraphs
from repro.core.incremental import (
    IncrementalMatchState,
    edge_update_may_change_answer,
    node_update_may_change_answer,
)
from repro.errors import ReproError
from repro.graph.digraph import Label, Node
from repro.graph.mutations import (
    AddNode,
    DeleteEdge,
    InsertEdge,
    OpLike,
    RemoveNode,
    normalize_op,
)
from repro.graph.pattern import Pattern
from repro.partition.fragmentation import Fragmentation, MutationDelta
from repro.runtime.metrics import RunResult
from repro.session.cache import LabelInterner, LruResultCache, canonical_form
from repro.session.drivers import DRIVERS, AlgorithmDriver
from repro.simulation.matchrel import MatchRelation

#: algorithm-name aliases accepted by :meth:`SimulationSession.run`
#: (``dgpmnopt`` is handled separately: it is the dgpm driver plus
#: ``config.without_optimizations()``)
_ALIASES = {
    "dgpm_mp": "dgpm-mp",
}


def _translate(
    relation: MatchRelation, stored_order: Tuple, hit_order: Tuple
) -> MatchRelation:
    """Rename a cached relation onto an isomorphic pattern's node names.

    Equal canonical digests guarantee that position ``i`` of both orders
    carries the same label and the same incident edges, so
    ``stored_order[i] -> hit_order[i]`` is an isomorphism; per-node candidate
    sets transfer verbatim (simulation only inspects labels and shape).
    """
    if stored_order == hit_order:
        return relation
    return MatchRelation(
        hit_order,
        {
            hit_u: relation.raw_matches_of(stored_u)
            for stored_u, hit_u in zip(stored_order, hit_order)
        },
    )


@dataclass
class SessionStats:
    """Serving counters of one session (cumulative since construction).

    Increments go through :meth:`bump`, which holds an internal lock --
    concurrent readers (the thread backend of
    :class:`~repro.session.concurrent.ConcurrentSessionServer`) never lose
    an update to an interleaved read-modify-write.  Plain attribute reads
    stay lock-free (single loads are atomic under the GIL).
    """

    #: queries answered (cache hits included)
    queries_served: int = 0
    #: queries answered straight from the result cache
    cache_hits: int = 0
    #: queries that ran the distributed protocol
    cache_misses: int = 0
    #: results dropped because the LRU overflowed
    cache_evictions: int = 0
    #: times every derived structure was dropped at once (external mutation
    #: detected, explicit ``invalidate()``, or ``maintenance="invalidate"``)
    invalidations: int = 0
    #: mutations applied through the session's mutation API
    mutations: int = 0
    #: cache entries kept across a mutation (answer provably unchanged)
    entries_kept: int = 0
    #: cache entries whose answers were repaired in place by a warm state
    entries_repaired: int = 0
    #: cache entries evicted because a mutation may have changed them
    entries_evicted: int = 0
    #: per-fragment query traffic: fid -> queries whose answer touched the
    #: fragment (matched nodes owned by it); feeds traffic-weighted
    #: repartitioning.  Bounded to :data:`MAX_FRAGMENT_KEYS` keys -- spill
    #: folds into the overflow key ``-1`` so totals stay exact.
    fragment_queries: Dict[int, int] = field(default_factory=dict)
    #: per-fragment mutation traffic: fid -> mutations whose delta touched
    #: the fragment (source/target owners, cascade included); same bound.
    fragment_mutations: Dict[int, int] = field(default_factory=dict)

    #: cap on distinct fids tracked per traffic counter (a rebalancing
    #: stream of add_node/remove_node cycles must not grow the dicts
    #: forever); far above any realistic |F|
    MAX_FRAGMENT_KEYS = 4096

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def __getstate__(self):
        state = dict(self.__dict__)
        del state["_lock"]  # stats cross process pipes; locks cannot
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def bump(self, counter: str, n: int = 1) -> None:
        """Atomically add ``n`` to ``counter`` (one of the fields above)."""
        with self._lock:
            setattr(self, counter, getattr(self, counter) + n)

    def sync_evictions(self, value: int) -> None:
        """Mirror the cache's (monotonic) eviction counter without regressing.

        Concurrent misses race to copy the cache's counter; taking the max
        under the lock keeps a stale snapshot from overwriting a newer one.
        """
        with self._lock:
            if value > self.cache_evictions:
                self.cache_evictions = value

    def bump_fragment(self, counter: str, fids: Iterable[int], n: int = 1) -> None:
        """Atomically add ``n`` to a traffic counter for every fid in ``fids``.

        ``counter`` is ``"fragment_queries"`` or ``"fragment_mutations"``.
        Bounded: once a dict holds :data:`MAX_FRAGMENT_KEYS` distinct fids,
        further *new* fids fold into the overflow key ``-1`` -- totals stay
        exact while attribution degrades gracefully instead of the counters
        growing without bound under node-churn workloads.
        """
        with self._lock:
            table: Dict[int, int] = getattr(self, counter)
            for fid in fids:
                if fid not in table and len(table) >= self.MAX_FRAGMENT_KEYS:
                    fid = -1
                table[fid] = table.get(fid, 0) + n

    def traffic_snapshot(self) -> Dict[int, int]:
        """One consistent ``fid -> load`` copy merging queries + mutations.

        This is the input :func:`~repro.partition.partitioners.\
traffic_node_weights` consumes when the rebalancer re-partitions by
        observed load.
        """
        with self._lock:
            merged = dict(self.fragment_queries)
            for fid, count in self.fragment_mutations.items():
                merged[fid] = merged.get(fid, 0) + count
        return merged

    def reset_fragment_traffic(self) -> None:
        """Open a fresh traffic window (after a rebalance the old fids are
        meaningless -- they name fragments that no longer exist)."""
        with self._lock:
            self.fragment_queries.clear()
            self.fragment_mutations.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of served queries answered from cache."""
        return self.cache_hits / self.queries_served if self.queries_served else 0.0


@dataclass(frozen=True)
class MutationOutcome:
    """What one session-applied mutation did to the serving state.

    Frozen: outcomes are handed across threads by the concurrent front-end.
    """

    kind: str            # "delete" | "insert" | "add_node" | "remove_node"
    wall_seconds: float
    #: cached results untouched (answer provably or verifiably unchanged)
    cache_kept: int
    #: cached results whose relation was repaired in place
    cache_repaired: int
    #: cached results dropped (answer may have changed, no warm state)
    cache_evicted: int
    #: falsified variables across warm-state repairs (the |AFF| proxy;
    #: deletions only)
    falsified: int
    #: the fragmentation delta this mutation produced -- the sharded
    #: backend routes it to owning/watching workers (None on legacy paths)
    delta: Optional[MutationDelta] = None


@dataclass
class _CacheEntryMeta:
    """Per-entry bookkeeping the digest key cannot recover."""

    query: Pattern
    algorithm: str
    config: DgpmConfig
    #: the stored pattern's canonical node order -- a hit whose (isomorphic)
    #: pattern uses different node names translates the cached relation
    #: through position-wise correspondence of the two orders
    order: Tuple = ()
    hits: int = 0
    #: fragments owning the entry's matched nodes, computed once on the
    #: miss -- hits attribute per-fragment traffic from this tuple instead
    #: of re-walking the (possibly huge) relation
    fids: Tuple[int, ...] = ()


class SimulationSession:
    """A resident fragmentation plus everything amortizable across queries.

    Parameters
    ----------
    fragmentation:
        The distributed graph to serve; held by reference (not copied).
    config:
        Default :class:`DgpmConfig` for every query; ``run``/``run_many``
        accept a per-query override.
    cache_size:
        Maximum number of cached results (0 disables result caching; the
        structural caches are unaffected).
    maintenance:
        ``"incremental"`` (default) patches caches across session-applied
        mutations as described in the module docstring;
        ``"invalidate"`` drops every derived structure on any mutation
        (the pre-maintenance behavior, kept as the benchmark baseline).
    deps:
        Pre-built :class:`DependencyGraphs` for ``fragmentation`` (e.g.
        shipped to a worker process once and reused across its whole
        lifetime); built lazily here when omitted.
    max_warm_states:
        Cap on warm per-query incremental states (each keeps every site's
        evaluation state alive for one hot query).
    warm_after_hits:
        A cached query is promoted to a warm state once it has been served
        from cache this many times (promotion itself costs one fixpoint).
    engine:
        Default execution engine for every query (``"dict"`` or
        ``"array"``); ``run``/``run_many`` accept a per-query override.  The
        array engine compiles fragments to columnar CSR snapshots
        (:mod:`repro.core.arraycompile`) cached on the session and
        invalidated per fragment by mutation stamp; it requires numpy at
        query time (a clear ``RuntimeError`` otherwise).
    """

    def __init__(
        self,
        fragmentation: Fragmentation,
        config: Optional[DgpmConfig] = None,
        cache_size: int = 128,
        maintenance: str = "incremental",
        max_warm_states: int = 8,
        warm_after_hits: int = 1,
        deps: Optional[DependencyGraphs] = None,
        engine: str = "dict",
    ) -> None:
        if maintenance not in ("incremental", "invalidate"):
            raise ReproError(
                f"unknown maintenance mode {maintenance!r} "
                "(known: incremental, invalidate)"
            )
        self.fragmentation = fragmentation
        self.config = config or DgpmConfig()
        self.engine = self._validate_engine_name(engine)
        self.maintenance = maintenance
        self.max_warm_states = max_warm_states
        self.warm_after_hits = warm_after_hits
        self.stats = SessionStats()
        self.drivers: Dict[str, AlgorithmDriver] = dict(DRIVERS)
        self.labels = LabelInterner()
        self._cache = LruResultCache(cache_size, on_evict=self._on_cache_evict)
        self._meta: Dict[Tuple, _CacheEntryMeta] = {}
        self._warm: "OrderedDict[Tuple, IncrementalMatchState]" = OrderedDict()
        self._deps = deps
        #: compiled-CSR fragment cache for the array engine (lazy; entries
        #: are revalidated per fragment on every access, so mutations only
        #: force recompilation of the fragments they touched)
        self._compiled = None
        #: guards the lazy deps build (never held while computing a query)
        self._deps_lock = threading.Lock()
        #: guards the lazy compiled-CSR build the same way: concurrent first
        #: array-engine queries must share one CompiledFragmentation
        self._compiled_lock = threading.Lock()
        #: guards ``_meta``/``_warm`` against concurrent readers; acquired
        #: *after* the cache's lock when both are needed (the cache's
        #: ``on_evict`` fires under its lock), never the other way around
        self._state_lock = threading.RLock()
        #: canonical forms memoized per live Pattern object (weak keys: the
        #: memo never pins a pattern) -- repeat submissions of the same
        #: object skip the WL-refinement/permutation work on the hit path
        self._form_memo: "weakref.WeakKeyDictionary[Pattern, object]" = (
            weakref.WeakKeyDictionary()
        )
        self._version = fragmentation.version
        self.labels.intern_all(
            sorted(fragmentation.graph.label_alphabet(), key=repr)
        )

    # ------------------------------------------------------------------
    # cached immutable structures
    # ------------------------------------------------------------------
    @property
    def deps(self) -> DependencyGraphs:
        """The boundary/watcher tables, built once and shared by all drivers.

        The lazy build is double-checked under a lock so concurrent first
        queries build the tables exactly once.
        """
        if self._deps is None:
            with self._deps_lock:
                if self._deps is None:
                    self._deps = DependencyGraphs(self.fragmentation)
        return self._deps

    def compiled_fragments(self):
        """The array engine's compiled-CSR cache, shared across queries.

        Built lazily on the first array-engine query (so dict-only sessions
        never import numpy).  Fragment snapshots self-invalidate: every
        access revalidates against the fragment's mutation stamp, so this
        cache survives mutations and recompiles exactly the touched
        fragments.
        """
        if self._compiled is None:
            from repro.core.arraycompile import CompiledFragmentation

            with self._compiled_lock:
                if self._compiled is None:
                    self._compiled = CompiledFragmentation(
                        self.fragmentation, self.labels
                    )
        return self._compiled

    def canonical_form_of(self, query: Pattern):
        """The query's canonical form, memoized per live ``Pattern`` object.

        Serving layers call this on every dispatch (cache key, worker
        routing); the WL-refinement/permutation work runs once per pattern
        object instead of once per call.
        """
        form = self._form_memo.get(query)
        if form is None:
            form = canonical_form(query, self.labels)
            self._form_memo[query] = form
        return form

    def warm(self) -> "SimulationSession":
        """Eagerly build every amortizable structure (optional; they are lazy).

        Useful before benchmarking or before the first latency-sensitive
        query: forces the dependency graphs plus the label index and
        successor-label counters of the base graph *and* of every fragment
        (the base graph serves dispatch and the centralized baselines).
        """
        _ = self.deps
        self.fragmentation.graph.warm_indexes()
        for frag in self.fragmentation:
            frag.graph.warm_indexes()
        return self

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop every derived structure; the next query rebuilds them."""
        self._deps = None
        self._compiled = None
        self._cache.clear()
        with self._state_lock:
            self._meta.clear()
            self._warm.clear()
        self._version = self.fragmentation.version
        self.stats.bump("invalidations")

    def swap_fragmentation(
        self,
        fragmentation: Fragmentation,
        deps: Optional[DependencyGraphs] = None,
    ) -> None:
        """Atomically adopt a re-partitioning of the same graph.

        The online-rebalance hand-off: answers are partition-independent
        (the protocols compute the unique maximum simulation on *any*
        fragmentation of ``G``), so only partition-*derived* state goes --
        the boundary/watcher tables (replaced by ``deps``, or rebuilt lazily
        when omitted), the compiled CSR snapshots, the result cache and warm
        states (their repair states embed fragment structure), and the
        per-fragment traffic window (the old fids name fragments that no
        longer exist).  Callers must hold write exclusion; the concurrent
        front-end's ``rebalance()`` runs this at a quiescent point.
        """
        old = self.fragmentation
        if (
            fragmentation.graph.n_nodes != old.graph.n_nodes
            or fragmentation.graph.n_edges != old.graph.n_edges
        ):
            raise ReproError(
                "swap_fragmentation requires a re-partition of the same graph "
                f"(got |V|={fragmentation.graph.n_nodes} "
                f"|E|={fragmentation.graph.n_edges}; serving "
                f"|V|={old.graph.n_nodes} |E|={old.graph.n_edges})"
            )
        self.fragmentation = fragmentation
        with self._deps_lock:
            self._deps = deps
        with self._compiled_lock:
            self._compiled = None
        self._cache.clear()
        with self._state_lock:
            self._meta.clear()
            self._warm.clear()
        self._version = fragmentation.version
        self.labels.intern_all(
            sorted(fragmentation.graph.label_alphabet(), key=repr)
        )
        self.stats.bump("invalidations")
        self.stats.reset_fragment_traffic()

    def _refresh_if_stale(self) -> None:
        if self.fragmentation.version != self._version:
            # A mutation applied around the session's API (e.g. a new
            # crossing edge with no virtual-node bookkeeping) must fail here,
            # loudly, not be answered from stale boundary tables.
            self.fragmentation.validate()
            self.invalidate()

    def _on_cache_evict(self, key: Tuple) -> None:
        # Fires under the cache's lock; take the state lock inside it (the
        # one sanctioned ordering) so metadata drops atomically with the entry.
        with self._state_lock:
            self._meta.pop(key, None)
            self._warm.pop(key, None)

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def run(
        self,
        query: Pattern,
        algorithm: str = "auto",
        config: Optional[DgpmConfig] = None,
        engine: Optional[str] = None,
    ) -> RunResult:
        """Serve one query; identical in answer and metrics to the one-shot
        ``run_*`` function of the same algorithm.

        Cache hits return a result whose ``metrics.extras`` carries
        ``cache_hit: 1.0``; the relation object is shared (safe:
        :class:`~repro.simulation.matchrel.MatchRelation` is frozen) and the
        metrics are copied, so callers can never poison the cache.  A hit
        whose pattern is an isomorphic *renaming* of the stored one gets the
        relation translated onto its own node names (the canonical orders of
        the two patterns give the bijection).  An entry repaired across
        mutations additionally carries ``maintained: <n>`` (updates absorbed
        since it was computed) -- its metrics describe the original run, its
        relation the current graph.

        Safe to call from many threads at once **between** mutations:
        concurrent identical queries coalesce into one protocol run
        (:meth:`LruResultCache.get_or_compute`); mutations require the write
        exclusion that :class:`~repro.session.concurrent.\
ConcurrentSessionServer` provides.
        """
        self._refresh_if_stale()
        config = config or self.config
        engine = self._validate_args(algorithm, engine)
        if algorithm.lower() == "dgpmnopt":
            config = config.without_optimizations()
            algorithm = "dgpm"
        driver = self._resolve_for_query(algorithm, query)
        if engine not in driver.engines:
            raise ReproError(
                f"algorithm {driver.name!r} does not support engine {engine!r} "
                f"(supported: {', '.join(driver.engines)})"
            )
        form = self.canonical_form_of(query)
        key = (driver.name, engine, repr(config), form.digest)
        self.stats.bump("queries_served")

        computed: List[RunResult] = []

        def compute() -> RunResult:
            result = driver.run(self, query, config, engine=engine)
            computed.append(result)
            touched = self._touched_fids(result.relation)
            self.stats.bump_fragment("fragment_queries", touched)
            # Record the entry's pattern/order *before* the result becomes
            # visible to coalesced waiters, so a renamed hit can always
            # translate; store a defensive snapshot -- the caller owns the
            # returned metrics object, and mutating its extras must not leak
            # into later hits.
            if self._cache.max_entries:
                with self._state_lock:
                    self._meta[key] = _CacheEntryMeta(
                        query=query, algorithm=driver.name, config=config,
                        order=form.order, fids=touched,
                    )
            return RunResult(
                relation=result.relation,
                metrics=replace(result.metrics, extras=dict(result.metrics.extras)),
            )

        stored, _ = self._cache.get_or_compute(key, compute)
        if computed:
            # This thread ran the protocol; hand back the original result.
            self.stats.bump("cache_misses")
            self.stats.sync_evictions(self._cache.stats.evictions)
            return computed[0]

        self.stats.bump("cache_hits")
        promote = None
        with self._state_lock:
            meta = self._meta.get(key)
            if meta is not None:
                meta.hits += 1
                if key in self._warm:
                    self._warm.move_to_end(key)  # recency for slot rotation
                elif (
                    self.maintenance == "incremental"
                    and meta.hits >= self.warm_after_hits
                    and not meta.config.boolean_only
                ):
                    promote = meta
            stored_order = meta.order if meta is not None else None
            touched = meta.fids if meta is not None else ()
        if touched:
            self.stats.bump_fragment("fragment_queries", touched)
        if promote is not None:
            self._promote(key, promote)
        if stored_order is None:
            # The entry raced an eviction between our hit and the metadata
            # read; without the stored order a renamed pattern cannot be
            # translated -- fall back to evaluating (rare, always correct).
            # This query ran the protocol after all: correct the counters.
            self.stats.bump("cache_hits", -1)
            self.stats.bump("cache_misses")
            return driver.run(self, query, config, engine=engine)
        metrics = replace(
            stored.metrics, extras={**stored.metrics.extras, "cache_hit": 1.0}
        )
        return RunResult(
            relation=_translate(stored.relation, stored_order, form.order),
            metrics=metrics,
        )

    def run_many(
        self,
        queries: Iterable[Pattern],
        algorithm: str = "auto",
        config: Optional[DgpmConfig] = None,
        engine: Optional[str] = None,
    ) -> List[RunResult]:
        """Serve a stream of queries in order; one result per query."""
        return [
            self.run(query, algorithm=algorithm, config=config, engine=engine)
            for query in queries
        ]

    def _touched_fids(self, relation: MatchRelation) -> Tuple[int, ...]:
        """Fragments owning the relation's matched data nodes (sorted).

        Feeds the per-fragment traffic window.  Empty answers attribute no
        traffic: the window drives load *balance*, and an empty relation
        names no fragment.  Boolean-only answers carry sentinel witness
        tokens instead of graph nodes -- they carry no placement signal
        either, so the first unowned node short-circuits to no attribution.
        """
        owner = self.fragmentation.owner
        fids = set()
        for q in relation.query_nodes():
            for v in relation.raw_matches_of(q):
                try:
                    fids.add(owner(v))
                except ReproError:
                    return ()
        return tuple(sorted(fids))

    # ------------------------------------------------------------------
    # mutations (the write path; see the module docstring for the contract)
    # ------------------------------------------------------------------
    def delete_edge(self, u: Node, v: Node) -> MutationOutcome:
        """Delete edge ``(u, v)`` from the resident graph, maintaining caches.

        Warm entries are repaired through the affected area only
        (``O(|AFF|)``); label-irrelevant entries are kept; the rest are
        evicted.
        """
        start = time.perf_counter()
        self._refresh_if_stale()
        delta = self.fragmentation.delete_edge(u, v)
        return self._absorb(delta, start)

    def insert_edge(self, u: Node, v: Node) -> MutationOutcome:
        """Insert edge ``(u, v)``; affected warm entries re-evaluate.

        Insertions can revive matches, which falsification-only repair
        cannot express -- warm entries whose answers may change run a fresh
        fixpoint over the (already patched) structures; label-irrelevant
        inserts only patch one successor counter.
        """
        start = time.perf_counter()
        self._refresh_if_stale()
        delta = self.fragmentation.insert_edge(u, v)
        return self._absorb(delta, start)

    def add_node(self, node: Node, label: Label, fid: Optional[int] = None) -> MutationOutcome:
        """Add an isolated labeled node to fragment ``fid`` (default: smallest)."""
        start = time.perf_counter()
        self._refresh_if_stale()
        delta = self.fragmentation.add_node(node, label, fid)
        return self._absorb(delta, start)

    def remove_node(self, node: Node) -> MutationOutcome:
        """Remove ``node`` with every incident edge, maintaining caches.

        The fragmentation turns the removal into a cascade of ordinary edge
        deletions (warm entries repair each one natively, in cascade order)
        followed by scrubbing the then-isolated node from candidate sets and
        counters.
        """
        start = time.perf_counter()
        self._refresh_if_stale()
        delta = self.fragmentation.remove_node(node)
        return self._absorb(delta, start)

    def apply_op(self, op: OpLike) -> MutationOutcome:
        """Apply one typed :class:`~repro.graph.mutations.MutationOp`.

        Legacy tuples (``("delete", u, v)`` and friends) are still accepted,
        with a :class:`DeprecationWarning`.
        """
        op = normalize_op(op)
        if isinstance(op, DeleteEdge):
            return self.delete_edge(op.u, op.v)
        if isinstance(op, InsertEdge):
            return self.insert_edge(op.u, op.v)
        if isinstance(op, AddNode):
            return self.add_node(op.node, op.label, op.fid)
        if isinstance(op, RemoveNode):
            return self.remove_node(op.node)
        raise ReproError(
            f"unknown update kind {op.kind!r} "
            "(known: delete, insert, add_node, remove_node)"
        )

    def apply(self, updates: Sequence[OpLike]) -> List[MutationOutcome]:
        """Apply a batch of updates in order; one outcome per update.

        Each update is a :class:`~repro.graph.mutations.MutationOp`
        (:class:`~repro.graph.mutations.InsertEdge`,
        :class:`~repro.graph.mutations.DeleteEdge`,
        :class:`~repro.graph.mutations.AddNode`, or
        :class:`~repro.graph.mutations.RemoveNode`); the pre-typed tuple
        spellings remain accepted under a :class:`DeprecationWarning`.
        """
        return [self.apply_op(update) for update in updates]

    # ------------------------------------------------------------------
    # maintenance internals
    # ------------------------------------------------------------------
    def _absorb(self, delta: MutationDelta, start: float) -> MutationOutcome:
        """Propagate one fragmentation delta into every derived structure.

        Mutations are *not* safe against concurrent ``run`` calls on their
        own -- the concurrent front-end applies them at quiescent points
        behind its writer lock; direct multi-threaded use must provide the
        same exclusion.
        """
        self.stats.bump("mutations")
        touched = {delta.source_fid, delta.target_fid}
        for edge_delta in delta.cascade:
            touched.add(edge_delta.source_fid)
            touched.add(edge_delta.target_fid)
        self.stats.bump_fragment("fragment_mutations", sorted(touched))
        if self.maintenance == "invalidate":
            evicted = len(self._cache)
            self.invalidate()
            return MutationOutcome(
                kind=delta.kind,
                wall_seconds=time.perf_counter() - start,
                cache_kept=0, cache_repaired=0, cache_evicted=evicted,
                falsified=0, delta=delta,
            )

        if self._deps is not None:
            self._deps.apply_delta(delta)
        kept = repaired = evicted = falsified = 0
        for key in self._cache.keys():
            warm = self._warm.get(key)
            if warm is not None:
                changed, n_falsified = self._repair_warm(warm, delta)
                falsified += n_falsified
                if changed and self._rewrite_entry(key, warm):
                    repaired += 1
                else:
                    kept += 1
                continue
            meta = self._meta.get(key)
            if meta is None or self._may_change_answer(meta.query, delta):
                self._cache.pop(key)
                evicted += 1
            else:
                kept += 1
        self._version = self.fragmentation.version
        self.stats.bump("entries_kept", kept)
        self.stats.bump("entries_repaired", repaired)
        self.stats.bump("entries_evicted", evicted)
        return MutationOutcome(
            kind=delta.kind,
            wall_seconds=time.perf_counter() - start,
            cache_kept=kept, cache_repaired=repaired, cache_evicted=evicted,
            falsified=falsified, delta=delta,
        )

    @staticmethod
    def _may_change_answer(query: Pattern, delta: MutationDelta) -> bool:
        if delta.kind == "add_node":
            return node_update_may_change_answer(query, delta.u_label)
        if delta.kind == "remove_node":
            # The node itself was a potential match iff its label appears in
            # the query; otherwise only its (cascaded) edges could matter.
            return any(
                query.label(q) == delta.u_label for q in query.nodes()
            ) or any(
                edge_update_may_change_answer(query, d.u_label, d.v_label)
                for d in delta.cascade
            )
        return edge_update_may_change_answer(query, delta.u_label, delta.v_label)

    def _repair_warm(
        self, warm: IncrementalMatchState, delta: MutationDelta
    ) -> Tuple[bool, int]:
        """Absorb one delta into a warm state; (answer may differ, |AFF|)."""
        if delta.kind == "delete":
            cost = warm.apply_delete(delta.u, delta.v, delta.v_label)
            return cost.n_falsified > 0, cost.n_falsified
        if delta.kind == "insert":
            if edge_update_may_change_answer(warm.query, delta.u_label, delta.v_label):
                cost = warm.apply_insert(delta)
                return True, cost.n_falsified
            warm.absorb_irrelevant_insert(delta.u, delta.v, delta.v_label)
            return False, 0
        if delta.kind == "remove_node":
            changed, cost = warm.apply_remove_node(delta)
            return changed, cost.n_falsified
        return warm.absorb_add_node(delta.u, delta.u_label, delta.source_fid), 0

    def _rewrite_entry(self, key: Tuple, warm: IncrementalMatchState) -> bool:
        """Replace a cached relation with the repaired one; False if equal
        (the "answer actually changed" check -- unchanged entries are kept
        verbatim, repaired ones keep their metrics with a ``maintained``
        marker)."""
        cached = self._cache.peek(key)
        if cached is None:
            return False
        new_relation = warm.relation()
        if cached.relation == new_relation:
            return False
        extras = dict(cached.metrics.extras)
        extras["maintained"] = extras.get("maintained", 0.0) + 1.0
        self._cache.replace(
            key,
            RunResult(
                relation=new_relation,
                metrics=replace(cached.metrics, extras=extras),
            ),
        )
        return True

    def _promote(self, key: Tuple, meta: _CacheEntryMeta) -> None:
        """Give a hot cached query a warm incremental state.

        When every slot is taken, the least-recently-hit warm state is
        retired to make room -- the warm set tracks the *currently* hottest
        queries, not the first ones that ever got hot.  The state is built
        (one fixpoint) outside the state lock so other hits keep flowing;
        concurrent promotions of the same key keep the first one in.
        """
        warm = IncrementalMatchState(
            meta.query,
            self.fragmentation,
            self.deps,
            DgpmConfig(incremental=True, enable_push=False, cost=meta.config.cost),
        )
        with self._state_lock:
            if key in self._warm:
                self._warm.move_to_end(key)
                return
            while len(self._warm) >= self.max_warm_states:
                self._warm.popitem(last=False)
            self._warm[key] = warm

    # ------------------------------------------------------------------
    @staticmethod
    def _validate_engine_name(engine: str) -> str:
        from repro.core.arraycompile import ENGINES

        name = engine.lower()
        if name not in ENGINES:
            raise ReproError(
                f"unknown engine {engine!r} (known: {', '.join(ENGINES)})"
            )
        return name

    def _validate_args(self, algorithm: str, engine: Optional[str]) -> str:
        """Validate ``run``'s names up front; one error listing every problem.

        Historically a bad algorithm name surfaced as a registry ``KeyError``
        only after alias/auto resolution, and a bad engine name would have
        failed deep inside a protocol function; both are now rejected here,
        together, with the valid names spelled out.  Returns the normalized
        engine name (the session default when ``engine`` is None).
        """
        from repro.core.arraycompile import ENGINES

        problems: List[str] = []
        name = _ALIASES.get(algorithm.lower(), algorithm.lower())
        valid = {"auto", "dgpmnopt", *self.drivers}
        if name not in valid:
            known = ", ".join(sorted(valid | set(_ALIASES)))
            problems.append(f"unknown algorithm {algorithm!r} (known: {known})")
        engine_name = (engine if engine is not None else self.engine).lower()
        if engine_name not in ENGINES:
            problems.append(
                f"unknown engine {engine!r} (known: {', '.join(ENGINES)})"
            )
        if problems:
            raise ReproError("; ".join(problems))
        return engine_name

    def _resolve_for_query(self, algorithm: str, query: Pattern) -> AlgorithmDriver:
        name = _ALIASES.get(algorithm.lower(), algorithm.lower())
        if name == "auto":
            from repro.core.dispatch import choose_algorithm

            paper_name = choose_algorithm(query, self.fragmentation)
            name = paper_name.lower()
        try:
            return self.drivers[name]
        except KeyError:
            known = ", ".join(sorted(self.drivers))
            raise ReproError(
                f"unknown algorithm {algorithm!r} (known: auto, {known})"
            ) from None

    def __repr__(self) -> str:
        return (
            f"SimulationSession({self.fragmentation!r}, served={self.stats.queries_served}, "
            f"hit_rate={self.stats.hit_rate:.2f})"
        )
