"""Resident multi-query serving over a persistent fragmentation.

The paper's setting is a *resident* distributed graph queried repeatedly --
sites hold their fragments, the boundary tables are known, and queries
arrive as a stream.  :class:`SimulationSession` is that architecture in one
object: it loads a :class:`~repro.partition.fragmentation.Fragmentation`
once, precomputes every structure that depends only on the graph, and then
serves queries through the uniform driver registry of
:mod:`repro.session.drivers`, so the per-query cost excludes the per-graph
cost.

Amortized across queries:

* the boundary/watcher tables (:class:`~repro.core.depgraph.DependencyGraphs`,
  the paper's local dependency graphs ``G_d^i``), built lazily on the first
  algorithm that needs them;
* the per-fragment label indexes and successor-label counters, which live on
  each :class:`~repro.graph.digraph.DiGraph` (built on first use, reused by
  every subsequent ``LocalEvalState``);
* an interned label-id table over the fragmentation's alphabet;
* an LRU cache of final results keyed by ``(algorithm, config, canonical
  query hash)`` -- repeated queries are answered without touching a site.

Mutation safety: the session snapshots the fragmentation's mutation stamp
(:attr:`Fragmentation.version`, derived from every stored graph's version
counter).  If any fragment graph or the base graph is mutated, the next
``run`` notices the stale stamp, drops every cache, re-validates the
fragmentation, and rebuilds -- results are never served from a graph that no
longer exists.  The contract: mutations must keep the *fragmentation*
consistent (update the base graph and the owning fragment's copy together,
as :mod:`repro.core.incremental` and ``examples/query_server.py`` do);
mutations that break the Section-2.2 invariants -- e.g. a new crossing edge
that should have created a virtual node in a frozen ``Fi.O`` -- raise
:class:`~repro.errors.FragmentationError` on the next ``run`` instead of
silently answering from stale boundary tables.

>>> session = SimulationSession(fragmentation)
>>> first = session.run(query)                      # pays setup once
>>> again = session.run(query)                      # served from cache
>>> results = session.run_many(stream, algorithm="dgpm")
>>> session.stats.cache_hits
...
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional

from repro.core.config import DgpmConfig
from repro.core.depgraph import DependencyGraphs
from repro.errors import ReproError
from repro.graph.pattern import Pattern
from repro.partition.fragmentation import Fragmentation
from repro.runtime.metrics import RunResult
from repro.session.cache import LabelInterner, LruResultCache, canonical_query_key
from repro.session.drivers import DRIVERS, AlgorithmDriver

#: algorithm-name aliases accepted by :meth:`SimulationSession.run`
#: (``dgpmnopt`` is handled separately: it is the dgpm driver plus
#: ``config.without_optimizations()``)
_ALIASES = {
    "dgpm_mp": "dgpm-mp",
}


@dataclass
class SessionStats:
    """Serving counters of one session (cumulative since construction)."""

    #: queries answered (cache hits included)
    queries_served: int = 0
    #: queries answered straight from the result cache
    cache_hits: int = 0
    #: queries that ran the distributed protocol
    cache_misses: int = 0
    #: results dropped because the LRU overflowed
    cache_evictions: int = 0
    #: times a mutation of the fragmentation forced a cache rebuild
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of served queries answered from cache."""
        return self.cache_hits / self.queries_served if self.queries_served else 0.0


class SimulationSession:
    """A resident fragmentation plus everything amortizable across queries.

    Parameters
    ----------
    fragmentation:
        The distributed graph to serve; held by reference (not copied).
    config:
        Default :class:`DgpmConfig` for every query; ``run``/``run_many``
        accept a per-query override.
    cache_size:
        Maximum number of cached results (0 disables result caching; the
        structural caches are unaffected).
    """

    def __init__(
        self,
        fragmentation: Fragmentation,
        config: Optional[DgpmConfig] = None,
        cache_size: int = 128,
    ) -> None:
        self.fragmentation = fragmentation
        self.config = config or DgpmConfig()
        self.stats = SessionStats()
        self.drivers: Dict[str, AlgorithmDriver] = dict(DRIVERS)
        self.labels = LabelInterner()
        self._cache = LruResultCache(cache_size)
        self._deps: Optional[DependencyGraphs] = None
        self._version = fragmentation.version
        self.labels.intern_all(
            sorted(fragmentation.graph.label_alphabet(), key=repr)
        )

    # ------------------------------------------------------------------
    # cached immutable structures
    # ------------------------------------------------------------------
    @property
    def deps(self) -> DependencyGraphs:
        """The boundary/watcher tables, built once and shared by all drivers."""
        if self._deps is None:
            self._deps = DependencyGraphs(self.fragmentation)
        return self._deps

    def warm(self) -> "SimulationSession":
        """Eagerly build every amortizable structure (optional; they are lazy).

        Useful before benchmarking or before the first latency-sensitive
        query: forces the dependency graphs plus each fragment's label index
        and successor-label counters.
        """
        _ = self.deps
        for frag in self.fragmentation:
            frag.graph.warm_indexes()
        return self

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop every derived structure; the next query rebuilds them."""
        self._deps = None
        self._cache.clear()
        self._version = self.fragmentation.version
        self.stats.invalidations += 1

    def _refresh_if_stale(self) -> None:
        if self.fragmentation.version != self._version:
            # A mutation that broke the fragmentation invariants (e.g. a new
            # crossing edge with no virtual-node bookkeeping) must fail here,
            # loudly, not be answered from stale boundary tables.
            self.fragmentation.validate()
            self.invalidate()

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def run(
        self,
        query: Pattern,
        algorithm: str = "auto",
        config: Optional[DgpmConfig] = None,
    ) -> RunResult:
        """Serve one query; identical in answer and metrics to the one-shot
        ``run_*`` function of the same algorithm.

        Cache hits return a result whose ``metrics.extras`` carries
        ``cache_hit: 1.0`` (the underlying relation object is shared -- match
        relations are immutable in practice).
        """
        self._refresh_if_stale()
        config = config or self.config
        if algorithm.lower() == "dgpmnopt":
            config = config.without_optimizations()
            algorithm = "dgpm"
        driver = self._resolve_for_query(algorithm, query)
        key = (driver.name, repr(config), canonical_query_key(query, self.labels))
        self.stats.queries_served += 1
        cached = self._cache.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            metrics = replace(
                cached.metrics, extras={**cached.metrics.extras, "cache_hit": 1.0}
            )
            return RunResult(relation=cached.relation, metrics=metrics)
        self.stats.cache_misses += 1
        result = driver.run(self, query, config)
        self._cache.put(key, result)
        self.stats.cache_evictions = self._cache.stats.evictions
        return result

    def run_many(
        self,
        queries: Iterable[Pattern],
        algorithm: str = "auto",
        config: Optional[DgpmConfig] = None,
    ) -> List[RunResult]:
        """Serve a stream of queries in order; one result per query."""
        return [self.run(query, algorithm=algorithm, config=config) for query in queries]

    # ------------------------------------------------------------------
    def _resolve_for_query(self, algorithm: str, query: Pattern) -> AlgorithmDriver:
        name = _ALIASES.get(algorithm.lower(), algorithm.lower())
        if name == "auto":
            from repro.core.dispatch import choose_algorithm

            paper_name = choose_algorithm(query, self.fragmentation)
            name = paper_name.lower()
        try:
            return self.drivers[name]
        except KeyError:
            known = ", ".join(sorted(self.drivers))
            raise ReproError(
                f"unknown algorithm {algorithm!r} (known: auto, {known})"
            ) from None

    def __repr__(self) -> str:
        return (
            f"SimulationSession({self.fragmentation!r}, served={self.stats.queries_served}, "
            f"hit_rate={self.stats.hit_rate:.2f})"
        )
