"""Resident multi-query serving over a persistent, *mutable* fragmentation.

The paper's setting is a resident distributed graph queried repeatedly --
sites hold their fragments, the boundary tables are known, and queries
arrive as a stream.  :class:`SimulationSession` is that architecture in one
object: it loads a :class:`~repro.partition.fragmentation.Fragmentation`
once, precomputes every structure that depends only on the graph, and then
serves queries through the uniform driver registry of
:mod:`repro.session.drivers`, so the per-query cost excludes the per-graph
cost.

Amortized across queries:

* the boundary/watcher tables (:class:`~repro.core.depgraph.DependencyGraphs`,
  the paper's local dependency graphs ``G_d^i``), built lazily on the first
  algorithm that needs them;
* the per-fragment label indexes and successor-label counters, which live on
  each :class:`~repro.graph.digraph.DiGraph` (built on first use, reused by
  every subsequent ``LocalEvalState``);
* an interned label-id table over the fragmentation's alphabet;
* an LRU cache of final results keyed by ``(algorithm, config, canonical
  query hash)`` -- repeated queries are answered without touching a site.

Mutation API and its invariant contract
---------------------------------------

The session is the write path for a graph that changes while being served:
:meth:`delete_edge`, :meth:`insert_edge`, :meth:`add_node`, and the batched
:meth:`apply` patch the resident fragmentation **in place** through
:meth:`Fragmentation.delete_edge` and friends, which maintain the
Section-2.2 invariants (``Fi.O``/``Fi.I`` membership, induced fragment
subgraphs) per update -- ``fragmentation.validate()`` holds after any
sequence of session-applied mutations.  The watcher/boundary tables are
patched incrementally (:meth:`DependencyGraphs.apply_delta`), never rebuilt,
and the result cache is *maintained*, not dropped:

* entries whose answers provably cannot change (no query edge carries the
  mutated edge's label pair; Section 2.1's simulation conditions only
  inspect an edge as a witness for a same-labeled query edge) are kept;
* hot entries hold a warm :class:`~repro.core.incremental.\
IncrementalMatchState` (the paper's incremental lEval, Section 4.2 / [13]):
  an edge deletion repairs their answers through the affected area only
  (``O(|AFF|)``), and the repaired relation replaces the cached one --
  entries are only rewritten when the answer actually changed;
* insertions, which can revive matches, fall back to a targeted
  re-evaluation of the affected warm entries (counters are merely patched
  when the insert is label-irrelevant);
* remaining affected entries are evicted individually.

``maintenance="invalidate"`` keeps the old drop-everything behavior (the
baseline that ``benchmarks/bench_updates.py`` gates against).

Mutations applied *around* the session (directly to the stored graphs) are
still detected: the session snapshots the fragmentation's mutation stamp
(:attr:`Fragmentation.version`), and a stale stamp on the next ``run``
re-validates the fragmentation and drops every cache -- external mutations
that break the Section-2.2 invariants raise
:class:`~repro.errors.FragmentationError` instead of being answered from
stale boundary tables.

>>> session = SimulationSession(fragmentation)
>>> first = session.run(query)                      # pays setup once
>>> again = session.run(query)                      # served from cache
>>> outcome = session.delete_edge(u, v)             # patches, not drops
>>> outcome.cache_repaired, outcome.cache_kept
...
>>> session.run(query).relation                     # still oracle-exact
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import DgpmConfig
from repro.core.depgraph import DependencyGraphs
from repro.core.incremental import (
    IncrementalMatchState,
    edge_update_may_change_answer,
    node_update_may_change_answer,
)
from repro.errors import ReproError
from repro.graph.digraph import Label, Node
from repro.graph.pattern import Pattern
from repro.partition.fragmentation import Fragmentation, MutationDelta
from repro.runtime.metrics import RunResult
from repro.session.cache import LabelInterner, LruResultCache, canonical_query_key
from repro.session.drivers import DRIVERS, AlgorithmDriver

#: algorithm-name aliases accepted by :meth:`SimulationSession.run`
#: (``dgpmnopt`` is handled separately: it is the dgpm driver plus
#: ``config.without_optimizations()``)
_ALIASES = {
    "dgpm_mp": "dgpm-mp",
}


@dataclass
class SessionStats:
    """Serving counters of one session (cumulative since construction)."""

    #: queries answered (cache hits included)
    queries_served: int = 0
    #: queries answered straight from the result cache
    cache_hits: int = 0
    #: queries that ran the distributed protocol
    cache_misses: int = 0
    #: results dropped because the LRU overflowed
    cache_evictions: int = 0
    #: times every derived structure was dropped at once (external mutation
    #: detected, explicit ``invalidate()``, or ``maintenance="invalidate"``)
    invalidations: int = 0
    #: mutations applied through the session's mutation API
    mutations: int = 0
    #: cache entries kept across a mutation (answer provably unchanged)
    entries_kept: int = 0
    #: cache entries whose answers were repaired in place by a warm state
    entries_repaired: int = 0
    #: cache entries evicted because a mutation may have changed them
    entries_evicted: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of served queries answered from cache."""
        return self.cache_hits / self.queries_served if self.queries_served else 0.0


@dataclass
class MutationOutcome:
    """What one session-applied mutation did to the serving state."""

    kind: str            # "delete" | "insert" | "add_node"
    wall_seconds: float
    #: cached results untouched (answer provably or verifiably unchanged)
    cache_kept: int
    #: cached results whose relation was repaired in place
    cache_repaired: int
    #: cached results dropped (answer may have changed, no warm state)
    cache_evicted: int
    #: falsified variables across warm-state repairs (the |AFF| proxy;
    #: deletions only)
    falsified: int


@dataclass
class _CacheEntryMeta:
    """Per-entry bookkeeping the digest key cannot recover."""

    query: Pattern
    algorithm: str
    config: DgpmConfig
    hits: int = 0


class SimulationSession:
    """A resident fragmentation plus everything amortizable across queries.

    Parameters
    ----------
    fragmentation:
        The distributed graph to serve; held by reference (not copied).
    config:
        Default :class:`DgpmConfig` for every query; ``run``/``run_many``
        accept a per-query override.
    cache_size:
        Maximum number of cached results (0 disables result caching; the
        structural caches are unaffected).
    maintenance:
        ``"incremental"`` (default) patches caches across session-applied
        mutations as described in the module docstring;
        ``"invalidate"`` drops every derived structure on any mutation
        (the pre-maintenance behavior, kept as the benchmark baseline).
    max_warm_states:
        Cap on warm per-query incremental states (each keeps every site's
        evaluation state alive for one hot query).
    warm_after_hits:
        A cached query is promoted to a warm state once it has been served
        from cache this many times (promotion itself costs one fixpoint).
    """

    def __init__(
        self,
        fragmentation: Fragmentation,
        config: Optional[DgpmConfig] = None,
        cache_size: int = 128,
        maintenance: str = "incremental",
        max_warm_states: int = 8,
        warm_after_hits: int = 1,
    ) -> None:
        if maintenance not in ("incremental", "invalidate"):
            raise ReproError(
                f"unknown maintenance mode {maintenance!r} "
                "(known: incremental, invalidate)"
            )
        self.fragmentation = fragmentation
        self.config = config or DgpmConfig()
        self.maintenance = maintenance
        self.max_warm_states = max_warm_states
        self.warm_after_hits = warm_after_hits
        self.stats = SessionStats()
        self.drivers: Dict[str, AlgorithmDriver] = dict(DRIVERS)
        self.labels = LabelInterner()
        self._cache = LruResultCache(cache_size, on_evict=self._on_cache_evict)
        self._meta: Dict[Tuple, _CacheEntryMeta] = {}
        self._warm: "OrderedDict[Tuple, IncrementalMatchState]" = OrderedDict()
        self._deps: Optional[DependencyGraphs] = None
        self._version = fragmentation.version
        self.labels.intern_all(
            sorted(fragmentation.graph.label_alphabet(), key=repr)
        )

    # ------------------------------------------------------------------
    # cached immutable structures
    # ------------------------------------------------------------------
    @property
    def deps(self) -> DependencyGraphs:
        """The boundary/watcher tables, built once and shared by all drivers."""
        if self._deps is None:
            self._deps = DependencyGraphs(self.fragmentation)
        return self._deps

    def warm(self) -> "SimulationSession":
        """Eagerly build every amortizable structure (optional; they are lazy).

        Useful before benchmarking or before the first latency-sensitive
        query: forces the dependency graphs plus the label index and
        successor-label counters of the base graph *and* of every fragment
        (the base graph serves dispatch and the centralized baselines).
        """
        _ = self.deps
        self.fragmentation.graph.warm_indexes()
        for frag in self.fragmentation:
            frag.graph.warm_indexes()
        return self

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop every derived structure; the next query rebuilds them."""
        self._deps = None
        self._cache.clear()
        self._meta.clear()
        self._warm.clear()
        self._version = self.fragmentation.version
        self.stats.invalidations += 1

    def _refresh_if_stale(self) -> None:
        if self.fragmentation.version != self._version:
            # A mutation applied around the session's API (e.g. a new
            # crossing edge with no virtual-node bookkeeping) must fail here,
            # loudly, not be answered from stale boundary tables.
            self.fragmentation.validate()
            self.invalidate()

    def _on_cache_evict(self, key: Tuple) -> None:
        self._meta.pop(key, None)
        self._warm.pop(key, None)

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def run(
        self,
        query: Pattern,
        algorithm: str = "auto",
        config: Optional[DgpmConfig] = None,
    ) -> RunResult:
        """Serve one query; identical in answer and metrics to the one-shot
        ``run_*`` function of the same algorithm.

        Cache hits return a result whose ``metrics.extras`` carries
        ``cache_hit: 1.0``; the relation object is shared (safe:
        :class:`~repro.simulation.matchrel.MatchRelation` is frozen) and the
        metrics are copied, so callers can never poison the cache.  An entry
        repaired across mutations additionally carries ``maintained: <n>``
        (updates absorbed since it was computed) -- its metrics describe the
        original run, its relation the current graph.
        """
        self._refresh_if_stale()
        config = config or self.config
        if algorithm.lower() == "dgpmnopt":
            config = config.without_optimizations()
            algorithm = "dgpm"
        driver = self._resolve_for_query(algorithm, query)
        key = (driver.name, repr(config), canonical_query_key(query, self.labels))
        self.stats.queries_served += 1
        cached = self._cache.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            meta = self._meta.get(key)
            if meta is not None:
                meta.hits += 1
                if key in self._warm:
                    self._warm.move_to_end(key)  # recency for slot rotation
                else:
                    self._maybe_promote(key, meta)
            metrics = replace(
                cached.metrics, extras={**cached.metrics.extras, "cache_hit": 1.0}
            )
            return RunResult(relation=cached.relation, metrics=metrics)
        self.stats.cache_misses += 1
        result = driver.run(self, query, config)
        # Store a defensive snapshot: the caller owns the returned metrics
        # object; mutating its extras must not leak into later hits.
        stored = RunResult(
            relation=result.relation,
            metrics=replace(result.metrics, extras=dict(result.metrics.extras)),
        )
        self._cache.put(key, stored)
        if key in self._cache:
            self._meta[key] = _CacheEntryMeta(
                query=query, algorithm=driver.name, config=config
            )
        self.stats.cache_evictions = self._cache.stats.evictions
        return result

    def run_many(
        self,
        queries: Iterable[Pattern],
        algorithm: str = "auto",
        config: Optional[DgpmConfig] = None,
    ) -> List[RunResult]:
        """Serve a stream of queries in order; one result per query."""
        return [self.run(query, algorithm=algorithm, config=config) for query in queries]

    # ------------------------------------------------------------------
    # mutations (the write path; see the module docstring for the contract)
    # ------------------------------------------------------------------
    def delete_edge(self, u: Node, v: Node) -> MutationOutcome:
        """Delete edge ``(u, v)`` from the resident graph, maintaining caches.

        Warm entries are repaired through the affected area only
        (``O(|AFF|)``); label-irrelevant entries are kept; the rest are
        evicted.
        """
        start = time.perf_counter()
        self._refresh_if_stale()
        delta = self.fragmentation.delete_edge(u, v)
        return self._absorb(delta, start)

    def insert_edge(self, u: Node, v: Node) -> MutationOutcome:
        """Insert edge ``(u, v)``; affected warm entries re-evaluate.

        Insertions can revive matches, which falsification-only repair
        cannot express -- warm entries whose answers may change run a fresh
        fixpoint over the (already patched) structures; label-irrelevant
        inserts only patch one successor counter.
        """
        start = time.perf_counter()
        self._refresh_if_stale()
        delta = self.fragmentation.insert_edge(u, v)
        return self._absorb(delta, start)

    def add_node(self, node: Node, label: Label, fid: Optional[int] = None) -> MutationOutcome:
        """Add an isolated labeled node to fragment ``fid`` (default: smallest)."""
        start = time.perf_counter()
        self._refresh_if_stale()
        delta = self.fragmentation.add_node(node, label, fid)
        return self._absorb(delta, start)

    def apply(self, updates: Sequence[Tuple]) -> List[MutationOutcome]:
        """Apply a batch of updates in order; one outcome per update.

        Each update is ``("delete", u, v)``, ``("insert", u, v)``, or
        ``("add_node", node, label[, fid])``.
        """
        out: List[MutationOutcome] = []
        for update in updates:
            kind = update[0]
            if kind == "delete":
                out.append(self.delete_edge(update[1], update[2]))
            elif kind == "insert":
                out.append(self.insert_edge(update[1], update[2]))
            elif kind == "add_node":
                out.append(self.add_node(*update[1:]))
            else:
                raise ReproError(
                    f"unknown update kind {kind!r} (known: delete, insert, add_node)"
                )
        return out

    # ------------------------------------------------------------------
    # maintenance internals
    # ------------------------------------------------------------------
    def _absorb(self, delta: MutationDelta, start: float) -> MutationOutcome:
        """Propagate one fragmentation delta into every derived structure."""
        self.stats.mutations += 1
        if self.maintenance == "invalidate":
            evicted = len(self._cache)
            self.invalidate()
            return MutationOutcome(
                kind=delta.kind,
                wall_seconds=time.perf_counter() - start,
                cache_kept=0, cache_repaired=0, cache_evicted=evicted,
                falsified=0,
            )

        if self._deps is not None:
            self._deps.apply_delta(delta)
        kept = repaired = evicted = falsified = 0
        for key in self._cache.keys():
            warm = self._warm.get(key)
            if warm is not None:
                changed, n_falsified = self._repair_warm(warm, delta)
                falsified += n_falsified
                if changed and self._rewrite_entry(key, warm):
                    repaired += 1
                else:
                    kept += 1
                continue
            meta = self._meta.get(key)
            if meta is None or self._may_change_answer(meta.query, delta):
                self._cache.pop(key)
                evicted += 1
            else:
                kept += 1
        self._version = self.fragmentation.version
        self.stats.entries_kept += kept
        self.stats.entries_repaired += repaired
        self.stats.entries_evicted += evicted
        return MutationOutcome(
            kind=delta.kind,
            wall_seconds=time.perf_counter() - start,
            cache_kept=kept, cache_repaired=repaired, cache_evicted=evicted,
            falsified=falsified,
        )

    @staticmethod
    def _may_change_answer(query: Pattern, delta: MutationDelta) -> bool:
        if delta.kind == "add_node":
            return node_update_may_change_answer(query, delta.u_label)
        return edge_update_may_change_answer(query, delta.u_label, delta.v_label)

    def _repair_warm(
        self, warm: IncrementalMatchState, delta: MutationDelta
    ) -> Tuple[bool, int]:
        """Absorb one delta into a warm state; (answer may differ, |AFF|)."""
        if delta.kind == "delete":
            cost = warm.apply_delete(delta.u, delta.v, delta.v_label)
            return cost.n_falsified > 0, cost.n_falsified
        if delta.kind == "insert":
            if edge_update_may_change_answer(warm.query, delta.u_label, delta.v_label):
                warm.bootstrap()
                return True, 0
            warm.absorb_irrelevant_insert(delta.u, delta.v, delta.v_label)
            return False, 0
        return warm.absorb_add_node(delta.u, delta.u_label, delta.source_fid), 0

    def _rewrite_entry(self, key: Tuple, warm: IncrementalMatchState) -> bool:
        """Replace a cached relation with the repaired one; False if equal
        (the "answer actually changed" check -- unchanged entries are kept
        verbatim, repaired ones keep their metrics with a ``maintained``
        marker)."""
        cached = self._cache.peek(key)
        if cached is None:
            return False
        new_relation = warm.relation()
        if cached.relation == new_relation:
            return False
        extras = dict(cached.metrics.extras)
        extras["maintained"] = extras.get("maintained", 0.0) + 1.0
        self._cache.replace(
            key,
            RunResult(
                relation=new_relation,
                metrics=replace(cached.metrics, extras=extras),
            ),
        )
        return True

    def _maybe_promote(self, key: Tuple, meta: _CacheEntryMeta) -> None:
        """Give a hot cached query a warm incremental state.

        When every slot is taken, the least-recently-hit warm state is
        retired to make room -- the warm set tracks the *currently* hottest
        queries, not the first ones that ever got hot.
        """
        if (
            self.maintenance != "incremental"
            or meta.hits < self.warm_after_hits
            or meta.config.boolean_only
        ):
            return
        if len(self._warm) >= self.max_warm_states:
            self._warm.popitem(last=False)
        self._warm[key] = IncrementalMatchState(
            meta.query,
            self.fragmentation,
            self.deps,
            DgpmConfig(incremental=True, enable_push=False, cost=meta.config.cost),
        )

    # ------------------------------------------------------------------
    def _resolve_for_query(self, algorithm: str, query: Pattern) -> AlgorithmDriver:
        name = _ALIASES.get(algorithm.lower(), algorithm.lower())
        if name == "auto":
            from repro.core.dispatch import choose_algorithm

            paper_name = choose_algorithm(query, self.fragmentation)
            name = paper_name.lower()
        try:
            return self.drivers[name]
        except KeyError:
            known = ", ".join(sorted(self.drivers))
            raise ReproError(
                f"unknown algorithm {algorithm!r} (known: auto, {known})"
            ) from None

    def __repr__(self) -> str:
        return (
            f"SimulationSession({self.fragmentation!r}, served={self.stats.queries_served}, "
            f"hit_rate={self.stats.hit_rate:.2f})"
        )
