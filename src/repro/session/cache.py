"""Result caching for :class:`~repro.session.SimulationSession`.

Two pieces:

* :func:`canonical_query_key` -- a stable digest of a :class:`Pattern` that
  is independent of node/edge insertion order, so the "same" query sent twice
  (e.g. re-parsed from a client request) hits the cache.  Labels go through
  the session's interning table, which keeps the serialized form compact and
  insulates the key from expensive label ``repr``\\ s.
* :class:`LruResultCache` -- a small LRU keyed by
  ``(algorithm, config, query)`` with hit/miss/eviction counters.  Graph
  simulation is a pure function of (query, fragmentation), so cached results
  stay valid until the fragmentation mutates -- the session handles that by
  clearing the cache (see ``SimulationSession._refresh_if_stale``).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

from repro.graph.pattern import Pattern
from repro.runtime.metrics import RunResult


class LabelInterner:
    """Dense integer ids for an arbitrary (hashable) label alphabet.

    Built once per session from the fragmentation's alphabet; unseen labels
    (a query may mention labels absent from the data) are interned on demand.
    """

    def __init__(self) -> None:
        self._ids: Dict[Hashable, int] = {}

    def __len__(self) -> int:
        return len(self._ids)

    def intern(self, label: Hashable) -> int:
        """Return the dense id of ``label``, allocating one if new."""
        ident = self._ids.get(label)
        if ident is None:
            ident = len(self._ids)
            self._ids[label] = ident
        return ident

    def intern_all(self, labels) -> None:
        """Intern every label of an iterable (deterministic insertion order)."""
        for label in labels:
            self.intern(label)


def canonical_query_key(query: Pattern, interner: Optional[LabelInterner] = None) -> str:
    """A digest of ``query`` stable under node/edge enumeration order."""
    def label_of(u):
        lab = query.label(u)
        return repr(lab) if interner is None else interner.intern(lab)

    nodes = sorted((repr(u), label_of(u)) for u in query.nodes())
    edges = sorted((repr(a), repr(b)) for a, b in query.edges())
    blob = repr((nodes, edges)).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


@dataclass
class CacheStats:
    """Counters the cache maintains (mirrored into ``SessionStats``)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0


class LruResultCache:
    """Least-recently-used cache of :class:`RunResult` objects."""

    def __init__(self, max_entries: int = 128) -> None:
        if max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple, RunResult]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Tuple) -> Optional[RunResult]:
        result = self._entries.get(key)
        if result is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return result

    def put(self, key: Tuple, result: RunResult) -> None:
        if self.max_entries == 0:
            return
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        self._entries.clear()
