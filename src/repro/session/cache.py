"""Result caching for :class:`~repro.session.SimulationSession`.

Three pieces:

* :func:`canonical_form` / :func:`canonical_query_key` -- a canonical digest
  of a :class:`Pattern` that is invariant under node/edge enumeration order
  *and* under renaming of the query nodes: two isomorphic patterns (same
  labeled shape, different node identifiers) produce the same digest, so the
  "same" query sent twice (re-parsed from a client request, or written by a
  different client with its own variable names) hits the cache.  The form
  also carries the canonical node order, which lets the session translate a
  cached relation onto the hitting pattern's node names.  Labels go through
  the session's interning table, which keeps the serialized form compact and
  insulates the key from expensive label ``repr``\\ s.
* :class:`LruResultCache` -- a small LRU keyed by
  ``(algorithm, config, query)`` with hit/miss/eviction counters.  Graph
  simulation is a pure function of (query, fragmentation), so cached results
  stay valid until the fragmentation mutates.  The session keeps them fresh
  across mutations: entries whose answers cannot have changed are kept,
  warm-maintained entries are repaired in place (:meth:`LruResultCache.\
replace`), and the rest are evicted one at a time (:meth:`LruResultCache.\
pop`); an ``on_evict`` hook lets the session drop its per-entry metadata
  whenever the LRU ages something out.

  The cache is **thread-safe**: every operation holds an internal re-entrant
  lock (``on_evict`` fires while it is held, which is what the session's
  bookkeeping wants -- the metadata drop is atomic with the eviction), and
  :meth:`LruResultCache.get_or_compute` gives concurrent readers an atomic
  get-or-compute: when several threads miss on the same key at once, exactly
  one runs the expensive compute while the rest wait for its result instead
  of duplicating the protocol run.
* :class:`LabelInterner` -- dense integer ids for the label alphabet; interns
  under a lock so concurrent queries mentioning a brand-new label can never
  allocate the same id for two different labels.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
from collections import OrderedDict
from dataclasses import dataclass
from math import factorial
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from repro.graph.pattern import Pattern
from repro.runtime.metrics import RunResult


class LabelInterner:
    """Dense integer ids for an arbitrary (hashable) label alphabet.

    Built once per session from the fragmentation's alphabet; unseen labels
    (a query may mention labels absent from the data) are interned on demand.
    Interning is atomic: a lock serializes id allocation, so two threads
    interning two new labels concurrently always receive distinct ids.
    """

    def __init__(self) -> None:
        self._ids: Dict[Hashable, int] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._ids)

    def intern(self, label: Hashable) -> int:
        """Return the dense id of ``label``, allocating one if new."""
        ident = self._ids.get(label)
        if ident is None:
            with self._lock:
                ident = self._ids.get(label)
                if ident is None:
                    ident = len(self._ids)
                    self._ids[label] = ident
        return ident

    def intern_all(self, labels) -> None:
        """Intern every label of an iterable (deterministic insertion order)."""
        for label in labels:
            self.intern(label)


# ----------------------------------------------------------------------
# canonical query form
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CanonicalQuery:
    """The canonical form of a pattern: a digest plus the node order behind it.

    ``order[i]`` is the query node occupying canonical position ``i``; two
    patterns with equal ``digest`` are isomorphic via
    ``a.order[i] <-> b.order[i]`` (labels and edges agree position-wise by
    construction), which is exactly the translation the session's cache
    needs to serve a hit across renamed query variables.

    ``exact`` is False when the pattern was too symmetric to canonicalize
    within the permutation budget; the digest is then still deterministic
    (stable for byte-identical re-submissions) but not rename-invariant.
    """

    digest: str
    order: Tuple
    exact: bool


def canonical_form(
    query: Pattern,
    interner: Optional[LabelInterner] = None,
    max_candidates: int = 5040,
) -> CanonicalQuery:
    """Canonicalize ``query`` up to isomorphism (for the sizes patterns have).

    Color refinement (1-WL over label + in/out color multisets) splits the
    query nodes into ordered equivalence classes; within the surviving
    classes every permutation is tried and the lexicographically smallest
    edge encoding wins.  Pattern queries are tiny (the paper's experiments
    top out around |Vq| = 7), so the residual search is a handful of
    candidates; pathologically symmetric inputs whose candidate count
    exceeds ``max_candidates`` fall back to a deterministic name-based
    order inside each class (``exact=False``) -- the digest then loses
    rename-invariance but never correctness, because equal digests still
    imply equal position-wise structure.
    """
    if interner is None:
        def label_key(u):
            return repr(query.label(u))
    else:
        def label_key(u):
            return interner.intern(query.label(u))

    nodes = list(query.nodes())
    succ = {u: list(query.children(u)) for u in nodes}
    pred = {u: list(query.parents(u)) for u in nodes}

    # 1-WL refinement: colors start as label ranks and are re-ranked each
    # round by (color, sorted successor colors, sorted predecessor colors).
    initial = sorted({label_key(u) for u in nodes})
    rank_of = {key: i for i, key in enumerate(initial)}
    color = {u: rank_of[label_key(u)] for u in nodes}
    for _ in range(len(nodes)):
        sig = {
            u: (
                color[u],
                tuple(sorted(color[v] for v in succ[u])),
                tuple(sorted(color[v] for v in pred[u])),
            )
            for u in nodes
        }
        ranks = {s: i for i, s in enumerate(sorted(set(sig.values())))}
        new_color = {u: ranks[sig[u]] for u in nodes}
        if new_color == color:
            break
        color = new_color

    classes: Dict[int, List] = {}
    for u in nodes:
        classes.setdefault(color[u], []).append(u)
    ordered_classes = [classes[c] for c in sorted(classes)]

    edges = list(query.edges())

    def edge_encoding(order: Tuple) -> Tuple[Tuple[int, int], ...]:
        index = {u: i for i, u in enumerate(order)}
        return tuple(sorted((index[a], index[b]) for a, b in edges))

    n_candidates = 1
    for cls in ordered_classes:
        n_candidates *= factorial(len(cls))
        if n_candidates > max_candidates:
            break
    if n_candidates > max_candidates:
        exact = False
        order = tuple(
            u
            for cls in ordered_classes
            for u in sorted(cls, key=repr)
        )
        best_edges = edge_encoding(order)
    else:
        exact = True
        order = None
        best_edges = None
        for perm in itertools.product(
            *(itertools.permutations(cls) for cls in ordered_classes)
        ):
            candidate = tuple(itertools.chain.from_iterable(perm))
            enc = edge_encoding(candidate)
            if best_edges is None or enc < best_edges:
                best_edges, order = enc, candidate

    # Labels are constant across candidates (classes refine labels), so the
    # encoding is (per-position labels, minimized edge list).
    labels_part = tuple(label_key(u) for u in order)
    blob = repr((len(nodes), labels_part, best_edges)).encode("utf-8")
    return CanonicalQuery(
        digest=hashlib.sha256(blob).hexdigest(), order=order, exact=exact
    )


def canonical_query_key(query: Pattern, interner: Optional[LabelInterner] = None) -> str:
    """A digest of ``query`` stable under enumeration order and -- for every
    pattern the permutation budget canonicalizes exactly -- under renaming of
    the query nodes (isomorphic patterns collide on purpose)."""
    return canonical_form(query, interner).digest


# ----------------------------------------------------------------------
# the LRU
# ----------------------------------------------------------------------

@dataclass
class CacheStats:
    """Counters the cache maintains (mirrored into ``SessionStats``).

    Mutated only while the cache's lock is held, so concurrent serving never
    loses an increment.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0


class LruResultCache:
    """Least-recently-used cache of :class:`RunResult` objects.

    ``on_evict`` (optional) is called with the key of every entry that
    leaves the cache through LRU overflow or :meth:`pop` -- not through
    :meth:`clear`, which callers use when they are resetting their own
    bookkeeping anyway.  The callback runs while the cache's (re-entrant)
    lock is held, making the caller's metadata drop atomic with the
    eviction.

    All operations are thread-safe; :meth:`get_or_compute` additionally
    coalesces concurrent misses on one key into a single compute.
    """

    def __init__(
        self,
        max_entries: int = 128,
        on_evict: Optional[Callable[[Tuple], None]] = None,
    ) -> None:
        if max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple, RunResult]" = OrderedDict()
        self.stats = CacheStats()
        self._on_evict = on_evict
        self._lock = threading.RLock()
        #: key -> Event for in-flight computes (get_or_compute coalescing)
        self._inflight: Dict[Tuple, threading.Event] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Tuple) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> List[Tuple]:
        """Snapshot of the cached keys, LRU-first."""
        with self._lock:
            return list(self._entries)

    def get(self, key: Tuple) -> Optional[RunResult]:
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return result

    def get_or_compute(
        self, key: Tuple, compute: Callable[[], RunResult]
    ) -> Tuple[RunResult, bool]:
        """Atomic get-or-compute; returns ``(result, was_hit)``.

        A hit (present entry, or the result of another thread's in-flight
        compute for the same key) returns ``was_hit=True`` without running
        ``compute``.  On a miss the calling thread computes *outside* the
        lock (other keys keep serving), stores the result, and wakes any
        coalesced waiters.  If the compute raises, waiters retry -- one of
        them becomes the next computer -- so an error never wedges a key.

        With caching disabled (``max_entries == 0``) there is nothing for a
        waiter to read afterwards, so no in-flight gate is registered:
        concurrent identical queries simply compute in parallel, exactly as
        they would have without this cache.
        """
        if self.max_entries == 0:
            with self._lock:
                self.stats.misses += 1
            return compute(), False
        while True:
            with self._lock:
                result = self._entries.get(key)
                if result is not None:
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                    return result, True
                gate = self._inflight.get(key)
                if gate is None:
                    gate = self._inflight[key] = threading.Event()
                    self.stats.misses += 1
                    break
            # Another thread is computing this key: wait for it, then go
            # back through the fast path (the entry appears on success; on
            # failure, or with caching disabled, one waiter re-registers and
            # computes itself).
            gate.wait()
        try:
            result = compute()
            self.put(key, result)
        finally:
            # Store before waking waiters, so they find the entry; pop our
            # own gate only (a failed compute lets the next waiter take over).
            with self._lock:
                self._inflight.pop(key, None)
            gate.set()
        return result, False

    def peek(self, key: Tuple) -> Optional[RunResult]:
        """Read an entry without touching recency or hit/miss counters."""
        with self._lock:
            return self._entries.get(key)

    def put(self, key: Tuple, result: RunResult) -> None:
        if self.max_entries == 0:
            return
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                evicted, _ = self._entries.popitem(last=False)
                self.stats.evictions += 1
                if self._on_evict is not None:
                    self._on_evict(evicted)

    def replace(self, key: Tuple, result: RunResult) -> None:
        """Swap the stored result of an existing entry, preserving recency.

        Used by maintenance: a repaired answer replaces a stale one without
        counting as a hit or promoting the entry.
        """
        with self._lock:
            if key in self._entries:
                self._entries[key] = result

    def pop(self, key: Tuple) -> None:
        """Drop one entry (no-op if absent); fires ``on_evict``."""
        with self._lock:
            if self._entries.pop(key, None) is not None:
                if self._on_evict is not None:
                    self._on_evict(key)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
