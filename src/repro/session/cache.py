"""Result caching for :class:`~repro.session.SimulationSession`.

Two pieces:

* :func:`canonical_query_key` -- a stable digest of a :class:`Pattern` that
  is independent of node/edge insertion order, so the "same" query sent twice
  (e.g. re-parsed from a client request) hits the cache.  Labels go through
  the session's interning table, which keeps the serialized form compact and
  insulates the key from expensive label ``repr``\\ s.
* :class:`LruResultCache` -- a small LRU keyed by
  ``(algorithm, config, query)`` with hit/miss/eviction counters.  Graph
  simulation is a pure function of (query, fragmentation), so cached results
  stay valid until the fragmentation mutates.  The session keeps them fresh
  across mutations: entries whose answers cannot have changed are kept,
  warm-maintained entries are repaired in place (:meth:`LruResultCache.\
replace`), and the rest are evicted one at a time (:meth:`LruResultCache.\
pop`); an ``on_evict`` hook lets the session drop its per-entry metadata
  whenever the LRU ages something out.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from repro.graph.pattern import Pattern
from repro.runtime.metrics import RunResult


class LabelInterner:
    """Dense integer ids for an arbitrary (hashable) label alphabet.

    Built once per session from the fragmentation's alphabet; unseen labels
    (a query may mention labels absent from the data) are interned on demand.
    """

    def __init__(self) -> None:
        self._ids: Dict[Hashable, int] = {}

    def __len__(self) -> int:
        return len(self._ids)

    def intern(self, label: Hashable) -> int:
        """Return the dense id of ``label``, allocating one if new."""
        ident = self._ids.get(label)
        if ident is None:
            ident = len(self._ids)
            self._ids[label] = ident
        return ident

    def intern_all(self, labels) -> None:
        """Intern every label of an iterable (deterministic insertion order)."""
        for label in labels:
            self.intern(label)


def canonical_query_key(query: Pattern, interner: Optional[LabelInterner] = None) -> str:
    """A digest of ``query`` stable under node/edge enumeration order."""
    def label_of(u):
        lab = query.label(u)
        return repr(lab) if interner is None else interner.intern(lab)

    nodes = sorted((repr(u), label_of(u)) for u in query.nodes())
    edges = sorted((repr(a), repr(b)) for a, b in query.edges())
    blob = repr((nodes, edges)).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


@dataclass
class CacheStats:
    """Counters the cache maintains (mirrored into ``SessionStats``)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0


class LruResultCache:
    """Least-recently-used cache of :class:`RunResult` objects.

    ``on_evict`` (optional) is called with the key of every entry that
    leaves the cache through LRU overflow or :meth:`pop` -- not through
    :meth:`clear`, which callers use when they are resetting their own
    bookkeeping anyway.
    """

    def __init__(
        self,
        max_entries: int = 128,
        on_evict: Optional[Callable[[Tuple], None]] = None,
    ) -> None:
        if max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple, RunResult]" = OrderedDict()
        self.stats = CacheStats()
        self._on_evict = on_evict

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple) -> bool:
        return key in self._entries

    def keys(self) -> List[Tuple]:
        """Snapshot of the cached keys, LRU-first."""
        return list(self._entries)

    def get(self, key: Tuple) -> Optional[RunResult]:
        result = self._entries.get(key)
        if result is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return result

    def peek(self, key: Tuple) -> Optional[RunResult]:
        """Read an entry without touching recency or hit/miss counters."""
        return self._entries.get(key)

    def put(self, key: Tuple, result: RunResult) -> None:
        if self.max_entries == 0:
            return
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            evicted, _ = self._entries.popitem(last=False)
            self.stats.evictions += 1
            if self._on_evict is not None:
                self._on_evict(evicted)

    def replace(self, key: Tuple, result: RunResult) -> None:
        """Swap the stored result of an existing entry, preserving recency.

        Used by maintenance: a repaired answer replaces a stale one without
        counting as a hit or promoting the entry.
        """
        if key in self._entries:
            self._entries[key] = result

    def pop(self, key: Tuple) -> None:
        """Drop one entry (no-op if absent); fires ``on_evict``."""
        if self._entries.pop(key, None) is not None:
            if self._on_evict is not None:
                self._on_evict(key)

    def clear(self) -> None:
        self._entries.clear()
