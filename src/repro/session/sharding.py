"""Fragment->worker ownership for the sharded serving backend.

The paper's site model (Section 2.2) has every site hold a *subset* of the
fragments; the ``process`` backend instead replicates the whole session per
worker.  This module supplies the two coordinator-side ingredients of the
true sharded deployment:

* :class:`HashRing` -- a deterministic, bounded-load consistent-hash
  assignment of fragment ids to worker slots.  Ownership is a pure function
  of the (worker set, fragment set) pair -- independent of graph content,
  engine, or partitioner -- so every replica of the coordinator agrees.
  ``join``/``leave`` produce a new ring that moves at most
  ``ceil(|F|/n) + 1`` fragments (``n`` the *new* worker count), so a ring
  change re-ships only the migrated fragments.

* :data:`SHARDED_PLANS` -- per-algorithm recipes telling the coordinator
  how to drive a distributed run over shard workers: how each worker builds
  its site programs (from a :class:`~repro.partition.fragmentation.FragmentShard`,
  never the full fragmentation), which coordinator-inbox handler to run
  centrally, any coordinator-side precheck (dGPMd's DAG short-circuit,
  dGPMt's tree/connectivity requirements), and how to assemble the final
  relation from RESULT messages.

Everything here is deterministic by construction: hashing uses
:mod:`hashlib` (stable across processes and ``PYTHONHASHSEED``), and no
wall-clock or global RNG is touched.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import FragmentationError, GraphError, PatternError
from repro.graph import algorithms
from repro.runtime.messages import Message
from repro.simulation.matchrel import MatchRelation

Slot = Hashable


def _score(slot: Slot, fid: int) -> int:
    """Stable 64-bit rendezvous score of (worker slot, fragment id)."""
    digest = hashlib.blake2b(
        f"{slot!r}|{fid!r}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def _capacity(n_fragments: int, n_slots: int) -> int:
    return -(-n_fragments // n_slots)  # ceil


class HashRing:
    """Bounded-load rendezvous hashing with minimal-movement rebalance.

    A fresh ring assigns every fragment to its highest-scoring slot whose
    load is below ``ceil(|F|/n)`` (highest-random-weight hashing with a
    capacity bound), processing fragments in sorted order -- total,
    deterministic, and balanced.  ``join``/``leave`` keep the existing
    assignment and move only the fragments that must move, so migration
    cost is bounded by the capacity of the *new* ring plus one.
    """

    __slots__ = ("workers", "fragments", "_owner")

    def __init__(
        self,
        workers: Sequence[Slot],
        fragments: Sequence[int],
        _assignment: Optional[Mapping[int, Slot]] = None,
    ) -> None:
        if not workers:
            raise ValueError("a HashRing needs at least one worker slot")
        if len(set(workers)) != len(workers):
            raise ValueError("worker slots must be unique")
        self.workers: Tuple[Slot, ...] = tuple(sorted(workers, key=repr))
        self.fragments: Tuple[int, ...] = tuple(sorted(fragments))
        if _assignment is not None:
            self._owner: Dict[int, Slot] = dict(_assignment)
            return
        cap = _capacity(len(self.fragments), len(self.workers))
        load: Dict[Slot, int] = {w: 0 for w in self.workers}
        owner: Dict[int, Slot] = {}
        for fid in self.fragments:
            ranked = sorted(self.workers, key=lambda w: (-_score(w, fid), repr(w)))
            chosen = next((w for w in ranked if load[w] < cap), ranked[0])
            owner[fid] = chosen
            load[chosen] += 1
        self._owner = owner

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Load bound used for fresh assignment: ``ceil(|F|/n)``."""
        return _capacity(len(self.fragments), len(self.workers))

    def owner_of(self, fid: int) -> Slot:
        """The slot owning ``fid`` (total: raises KeyError only off-ring)."""
        return self._owner[fid]

    def fragments_of(self, slot: Slot) -> Tuple[int, ...]:
        """All fragments owned by ``slot``, sorted."""
        return tuple(f for f in self.fragments if self._owner[f] == slot)

    def assignment(self) -> Dict[int, Slot]:
        """A copy of the full fid -> slot map."""
        return dict(self._owner)

    def loads(self) -> Dict[Slot, int]:
        """Fragment count per slot (0 for idle slots)."""
        out: Dict[Slot, int] = {w: 0 for w in self.workers}
        for slot in self._owner.values():
            out[slot] += 1
        return out

    # ------------------------------------------------------------------
    def join(self, slot: Slot) -> "HashRing":
        """A new ring with ``slot`` added; moves at most ``floor(|F|/n')``.

        The joiner steals exactly its fair share -- the ``floor(|F|/n')``
        fragments that score it highest -- so movement stays within the
        ``ceil(|F|/n') + 1`` contract and every move lands on the joiner.
        """
        if slot in self.workers:
            raise ValueError(f"slot {slot!r} is already on the ring")
        workers = self.workers + (slot,)
        share = len(self.fragments) // len(workers)
        by_preference = sorted(
            self.fragments, key=lambda f: (-_score(slot, f), f)
        )
        owner = dict(self._owner)
        for fid in by_preference[:share]:
            owner[fid] = slot
        return HashRing(workers, self.fragments, _assignment=owner)

    def leave(self, slot: Slot) -> "HashRing":
        """A new ring without ``slot``; only the leaver's fragments move.

        Orphans rendezvous-hash onto the survivors under the new capacity
        bound (falling back to the least-loaded survivor if history has
        every preferred slot full), so movement equals the leaver's load --
        itself within ``ceil(|F|/n') + 1`` of the shrunken ring.
        """
        if slot not in self.workers:
            raise ValueError(f"slot {slot!r} is not on the ring")
        survivors = tuple(w for w in self.workers if w != slot)
        if not survivors:
            raise ValueError("cannot remove the last worker slot")
        cap = _capacity(len(self.fragments), len(survivors))
        owner = dict(self._owner)
        load: Dict[Slot, int] = {w: 0 for w in survivors}
        for fid, w in owner.items():
            if w != slot:
                load[w] += 1
        for fid in self.fragments_of(slot):
            ranked = sorted(survivors, key=lambda w: (-_score(w, fid), repr(w)))
            chosen = next((w for w in ranked if load[w] < cap), None)
            if chosen is None:
                chosen = min(survivors, key=lambda w: (load[w], repr(w)))
            owner[fid] = chosen
            load[chosen] += 1
        return HashRing(survivors, self.fragments, _assignment=owner)

    def rebalanced(
        self, weights: Mapping[int, float], tolerance: float = 1.05
    ) -> "HashRing":
        """A new ring balancing *weighted* fragment load, moving minimally.

        ``weights`` maps fid -> observed traffic (missing fids count 0; every
        fragment additionally weighs 1 so idle fragments still spread).  The
        greedy pass repeatedly moves, from the most loaded slot to the least
        loaded one, the heaviest fragment whose move strictly shrinks their
        gap -- the classic longest-processing-time exchange -- stopping once
        the most loaded slot is within ``tolerance`` of the mean.  Only
        fragments that must move do, so re-shipping cost tracks the actual
        imbalance, not ``|F|``.  Deterministic: ties break on sorted fids and
        slot reprs, and no hashing of graph content is involved.
        """
        load_of = {
            fid: 1.0 + max(0.0, float(weights.get(fid, 0.0)))
            for fid in self.fragments
        }
        owner = dict(self._owner)
        load: Dict[Slot, float] = {w: 0.0 for w in self.workers}
        for fid, slot in owner.items():
            load[slot] += load_of[fid]
        target = sum(load_of.values()) / len(self.workers)
        for _ in range(4 * len(self.fragments)):
            donor = max(self.workers, key=lambda s: (load[s], repr(s)))
            recipient = min(self.workers, key=lambda s: (load[s], repr(s)))
            gap = load[donor] - load[recipient]
            if load[donor] <= target * tolerance or gap <= 0.0:
                break
            movable = sorted(f for f in self.fragments if owner[f] == donor)
            if len(movable) <= 1:
                break  # one huge fragment: placement alone cannot split it
            best = None
            for fid in movable:
                if load_of[fid] < gap and (
                    best is None or load_of[fid] > load_of[best]
                ):
                    best = fid
            if best is None:
                break
            owner[best] = recipient
            load[donor] -= load_of[best]
            load[recipient] += load_of[best]
        return HashRing(self.workers, self.fragments, _assignment=owner)

    def moved(self, new: "HashRing") -> Dict[int, Tuple[Slot, Slot]]:
        """Fragments whose owner differs between ``self`` and ``new``."""
        out: Dict[int, Tuple[Slot, Slot]] = {}
        for fid in self.fragments:
            before, after = self._owner[fid], new._owner.get(fid)
            if after is not None and before != after:
                out[fid] = (before, after)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HashRing(workers={len(self.workers)}, "
            f"fragments={len(self.fragments)}, loads={self.loads()})"
        )


# ----------------------------------------------------------------------
# per-algorithm sharded execution plans
# ----------------------------------------------------------------------

#: precheck(query, fragmentation, config) -> None to proceed, or
#: (relation, extras) to short-circuit without touching the workers.
Precheck = Callable[..., Optional[Tuple[MatchRelation, Dict[str, float]]]]


@dataclass(frozen=True)
class ShardedPlan:
    """How the coordinator drives one algorithm over shard workers.

    ``build_program`` runs *worker-side* (looked up from this module-level
    registry, so nothing here is ever pickled): it receives the worker's
    :class:`~repro.partition.fragmentation.FragmentShard` -- site programs
    only ever index their own fragment out of it.  ``make_coordinator``,
    ``precheck`` and ``assemble`` run coordinator-side with the full
    fragmentation.
    """

    algorithm: str
    display_name: str
    #: (fid, shard, query, deps, config) -> SiteProgram
    build_program: Callable[..., object]
    #: (query, List[Message]) -> MatchRelation
    assemble: Callable[[object, List[Message]], MatchRelation]
    #: (fragmentation, query, cost) -> coordinator inbox handler, or None
    make_coordinator: Optional[Callable[..., object]] = None
    precheck: Optional[Precheck] = None


def _dgpm_program(fid, shard, query, deps, config):
    from repro.core.dgpm import DgpmSiteProgram

    return DgpmSiteProgram(fid, shard, query, deps, config)


def _dgpmd_program(fid, shard, query, deps, config):
    from repro.core.dgpmd import DgpmdSiteProgram

    return DgpmdSiteProgram(fid, shard, query, deps, config)


def _dgpmt_program(fid, shard, query, deps, config):
    from repro.core.dgpmt import DgpmtSiteProgram

    return DgpmtSiteProgram(fid, shard, query, config)


def _dmes_program(fid, shard, query, deps, config):
    from repro.baselines.dmes import DmesSiteProgram

    return DmesSiteProgram(fid, shard, query, deps, config)


def _assemble_union(query, results):
    from repro.core.dgpm import assemble_result

    return assemble_result(query, results)


def _assemble_merge(query, results):
    # dGPMt sites each report their share of the final relation directly.
    merged: Dict[object, Set[object]] = {u: set() for u in query.nodes()}
    for message in results:
        for u, vs in message.payload.items():
            merged[u] |= vs
    return MatchRelation(query.nodes(), merged)


def _dgpmd_precheck(query, fragmentation, config):
    # Mirrors execute_dgpmd: a cyclic pattern over a DAG graph has an empty
    # answer (Theorem 3's possibility case); a cyclic pattern over a cyclic
    # graph is outside dGPMd's contract.
    if query.is_dag():
        return None
    if algorithms.is_dag(fragmentation.graph):
        return MatchRelation(query.nodes(), {u: set() for u in query.nodes()}), {
            "short_circuit": 1.0
        }
    raise PatternError(
        "dGPMd requires a DAG pattern (or a DAG data graph for the "
        "empty-answer short circuit)"
    )


def _dgpmt_precheck(query, fragmentation, config):
    # Mirrors execute_dgpmt's entry requirements.
    if not algorithms.is_tree(fragmentation.graph):
        raise GraphError("dGPMt requires a tree-shaped data graph")
    if not fragmentation.has_connected_fragments():
        raise FragmentationError("dGPMt requires connected fragments")
    return None


def _tree_coordinator(fragmentation, query, cost):
    from repro.core.dgpmt import _TreeCoordinator

    return _TreeCoordinator(fragmentation, query, cost)


def _dmes_coordinator(fragmentation, query, cost):
    from repro.baselines.dmes import _DmesCoordinator

    return _DmesCoordinator(fragmentation.n_fragments, cost)


#: algorithms the sharded backend can run distributed; anything else a
#: session serves is evaluated coordinator-locally (the centralized
#: baselines ship the whole graph to one site by design, so a local run is
#: faithful to their cost model).
SHARDED_PLANS: Dict[str, ShardedPlan] = {
    "dgpm": ShardedPlan(
        algorithm="dgpm",
        display_name="dGPM/sharded",
        build_program=_dgpm_program,
        assemble=_assemble_union,
    ),
    "dgpmd": ShardedPlan(
        algorithm="dgpmd",
        display_name="dGPMd/sharded",
        build_program=_dgpmd_program,
        assemble=_assemble_union,
        precheck=_dgpmd_precheck,
    ),
    "dgpmt": ShardedPlan(
        algorithm="dgpmt",
        display_name="dGPMt/sharded",
        build_program=_dgpmt_program,
        assemble=_assemble_merge,
        make_coordinator=_tree_coordinator,
        precheck=_dgpmt_precheck,
    ),
    "dmes": ShardedPlan(
        algorithm="dmes",
        display_name="dMes/sharded",
        build_program=_dmes_program,
        assemble=_assemble_union,
        make_coordinator=_dmes_coordinator,
    ),
}
