"""Algorithm drivers: the uniform per-query entry points of a session.

An :class:`AlgorithmDriver` is the thin adapter between a resident
:class:`~repro.session.SimulationSession` and one algorithm's ``execute_*``
protocol function.  Drivers hold no per-query state; they pull the session's
cached immutable structures (today the boundary/watcher tables of
:class:`~repro.core.depgraph.DependencyGraphs`) and hand them to the
protocol, so serving a query costs only the query, never the graph.

The registry :data:`DRIVERS` maps the session's algorithm names to driver
instances; ``"auto"`` is resolved by the session itself via
:func:`repro.core.dispatch.choose_algorithm`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Protocol

from repro.baselines.dishhk import execute_dishhk
from repro.baselines.dmes import execute_dmes
from repro.baselines.match_central import execute_match
from repro.core.config import DgpmConfig
from repro.core.dgpm import execute_dgpm
from repro.core.dgpmd import execute_dgpmd
from repro.core.dgpmt import execute_dgpmt
from repro.graph.pattern import Pattern
from repro.runtime.metrics import RunResult
from repro.runtime.mp import run_dgpm_multiprocess

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.session.session import SimulationSession


class AlgorithmDriver(Protocol):
    """Uniform protocol every session-served algorithm implements."""

    #: registry name (lowercase; what ``SimulationSession.run`` accepts)
    name: str
    #: display name matching ``RunMetrics.algorithm``
    display_name: str

    def run(
        self, session: "SimulationSession", query: Pattern, config: DgpmConfig
    ) -> RunResult:
        """Evaluate ``query`` using the session's cached structures."""
        ...


class DgpmDriver:
    name = "dgpm"
    display_name = "dGPM"

    def run(self, session, query, config):
        return execute_dgpm(query, session.fragmentation, config, deps=session.deps)


class DgpmdDriver:
    name = "dgpmd"
    display_name = "dGPMd"

    def run(self, session, query, config):
        # A non-DAG query either short-circuits (DAG data graph) or raises
        # inside execute_dgpmd before deps are needed -- don't build them.
        deps = session.deps if query.is_dag() else None
        return execute_dgpmd(query, session.fragmentation, config, deps=deps)


class DgpmtDriver:
    name = "dgpmt"
    display_name = "dGPMt"

    def run(self, session, query, config):
        return execute_dgpmt(query, session.fragmentation, config)


class DmesDriver:
    name = "dmes"
    display_name = "dMes"

    def run(self, session, query, config):
        return execute_dmes(query, session.fragmentation, config, deps=session.deps)


class DishhkDriver:
    name = "dishhk"
    display_name = "disHHK"

    def run(self, session, query, config):
        return execute_dishhk(query, session.fragmentation, config)


class MatchDriver:
    name = "match"
    display_name = "Match"

    def run(self, session, query, config):
        return execute_match(query, session.fragmentation, config)


class DgpmMultiprocessDriver:
    """dGPM with real OS-process sites (the validation executor)."""

    name = "dgpm-mp"
    display_name = "dGPM-mp"

    def run(self, session, query, config):
        return run_dgpm_multiprocess(
            query, session.fragmentation, config, deps=session.deps
        )


#: name -> driver instance; the session copies this at construction so callers
#: can register custom drivers per session without global effects.
DRIVERS: Dict[str, AlgorithmDriver] = {
    driver.name: driver
    for driver in (
        DgpmDriver(),
        DgpmdDriver(),
        DgpmtDriver(),
        DmesDriver(),
        DishhkDriver(),
        MatchDriver(),
        DgpmMultiprocessDriver(),
    )
}
