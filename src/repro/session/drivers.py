"""Algorithm drivers: the uniform per-query entry points of a session.

An :class:`AlgorithmDriver` is the thin adapter between a resident
:class:`~repro.session.SimulationSession` and one algorithm's ``execute_*``
protocol function.  Drivers hold no per-query state; they pull the session's
cached immutable structures (the boundary/watcher tables of
:class:`~repro.core.depgraph.DependencyGraphs`, and for ``engine="array"``
the compiled-CSR fragment cache) and hand them to the protocol, so serving a
query costs only the query, never the graph.

Each driver declares the execution ``engines`` it supports; the session
validates the requested engine against this up front, so asking e.g. the
centralized Match baseline for the array engine fails with one clear error
instead of deep in a protocol function.

The registry :data:`DRIVERS` maps the session's algorithm names to driver
instances; ``"auto"`` is resolved by the session itself via
:func:`repro.core.dispatch.choose_algorithm`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Protocol, Tuple

from repro.baselines.dishhk import execute_dishhk
from repro.baselines.dmes import execute_dmes
from repro.baselines.match_central import execute_match
from repro.core.config import DgpmConfig
from repro.core.dgpm import execute_dgpm
from repro.core.dgpmd import execute_dgpmd
from repro.core.dgpmt import execute_dgpmt
from repro.graph.pattern import Pattern
from repro.runtime.metrics import RunResult
from repro.runtime.mp import run_dgpm_multiprocess

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.session.session import SimulationSession


class AlgorithmDriver(Protocol):
    """Uniform protocol every session-served algorithm implements."""

    #: registry name (lowercase; what ``SimulationSession.run`` accepts)
    name: str
    #: display name matching ``RunMetrics.algorithm``
    display_name: str
    #: execution engines this driver understands (subset of arraycompile.ENGINES)
    engines: Tuple[str, ...]

    def run(
        self,
        session: "SimulationSession",
        query: Pattern,
        config: DgpmConfig,
        engine: str = "dict",
    ) -> RunResult:
        """Evaluate ``query`` using the session's cached structures."""
        ...


def _compiled_for(session: "SimulationSession", engine: str):
    """The session's compiled-CSR cache when the array engine is in play."""
    return session.compiled_fragments() if engine == "array" else None


class DgpmDriver:
    name = "dgpm"
    display_name = "dGPM"
    engines = ("dict", "array")

    def run(self, session, query, config, engine="dict"):
        return execute_dgpm(
            query,
            session.fragmentation,
            config,
            deps=session.deps,
            engine=engine,
            compiled=_compiled_for(session, engine),
        )


class DgpmdDriver:
    name = "dgpmd"
    display_name = "dGPMd"
    engines = ("dict", "array")

    def run(self, session, query, config, engine="dict"):
        # A non-DAG query either short-circuits (DAG data graph) or raises
        # inside execute_dgpmd before deps are needed -- don't build them.
        deps = session.deps if query.is_dag() else None
        return execute_dgpmd(
            query,
            session.fragmentation,
            config,
            deps=deps,
            engine=engine,
            compiled=_compiled_for(session, engine),
        )


class DgpmtDriver:
    name = "dgpmt"
    display_name = "dGPMt"
    engines = ("dict", "array")

    def run(self, session, query, config, engine="dict"):
        return execute_dgpmt(
            query,
            session.fragmentation,
            config,
            engine=engine,
            compiled=_compiled_for(session, engine),
        )


class DmesDriver:
    name = "dmes"
    display_name = "dMes"
    engines = ("dict",)

    def run(self, session, query, config, engine="dict"):
        return execute_dmes(query, session.fragmentation, config, deps=session.deps)


class DishhkDriver:
    name = "dishhk"
    display_name = "disHHK"
    engines = ("dict",)

    def run(self, session, query, config, engine="dict"):
        return execute_dishhk(query, session.fragmentation, config)


class MatchDriver:
    name = "match"
    display_name = "Match"
    engines = ("dict",)

    def run(self, session, query, config, engine="dict"):
        return execute_match(query, session.fragmentation, config)


class DgpmMultiprocessDriver:
    """dGPM with real OS-process sites (the validation executor)."""

    name = "dgpm-mp"
    display_name = "dGPM-mp"
    engines = ("dict",)

    def run(self, session, query, config, engine="dict"):
        return run_dgpm_multiprocess(
            query, session.fragmentation, config, deps=session.deps
        )


#: name -> driver instance; the session copies this at construction so callers
#: can register custom drivers per session without global effects.
DRIVERS: Dict[str, AlgorithmDriver] = {
    driver.name: driver
    for driver in (
        DgpmDriver(),
        DgpmdDriver(),
        DgpmtDriver(),
        DmesDriver(),
        DishhkDriver(),
        MatchDriver(),
        DgpmMultiprocessDriver(),
    )
}
