"""repro.session: amortized multi-query serving over resident fragments.

The paper's algorithms answer *one* query over a distributed graph; this
package turns the collection of one-shot runners into a servable engine.  A
:class:`SimulationSession` loads a fragmentation once, precomputes the
structures every query shares (dependency/watcher tables, per-fragment label
indexes, interned label ids), and serves a stream of queries through the
:class:`~repro.session.drivers.AlgorithmDriver` registry with an LRU result
cache -- so per-query cost excludes per-graph cost, the property that matters
once the same resident graph sees heavy query traffic.

The session is also the graph's write path: ``session.delete_edge`` /
``insert_edge`` / ``add_node`` / ``apply`` patch the resident fragmentation
in place and *maintain* the serving caches across the mutation (warm
incremental repair for hot queries, label-relevance retention for the rest)
instead of dropping them -- see :mod:`repro.session.session` for the
contract.

:class:`~repro.session.concurrent.ConcurrentSessionServer` serves one
session from many threads -- or, with its process backend, from a pool of
replica worker processes -- under a reader-writer protocol with snapshot
stamps; see :mod:`repro.session.concurrent` for the contract.

The one-shot entry points (``run_dgpm`` and friends) remain the public API;
each is now a thin wrapper that builds a throwaway session.
"""

from repro.session.cache import (
    CanonicalQuery,
    LabelInterner,
    LruResultCache,
    canonical_form,
    canonical_query_key,
)
from repro.session.concurrent import (
    ConcurrentSessionServer,
    RebalanceOutcome,
    StampedOutcome,
    StampedResult,
)
from repro.session.drivers import DRIVERS, AlgorithmDriver
from repro.session.session import MutationOutcome, SessionStats, SimulationSession

__all__ = [
    "SimulationSession",
    "SessionStats",
    "MutationOutcome",
    "ConcurrentSessionServer",
    "StampedResult",
    "StampedOutcome",
    "RebalanceOutcome",
    "AlgorithmDriver",
    "DRIVERS",
    "LabelInterner",
    "LruResultCache",
    "CanonicalQuery",
    "canonical_form",
    "canonical_query_key",
]
