"""Concurrent serving of one resident :class:`SimulationSession`.

The paper's possibility results assume a resident fragmentation answering
*many independent* queries (Sections 4-5); each query is a pure read and the
engine is single-threaded per query, so serving them in parallel changes
throughput, never answers.  :class:`ConcurrentSessionServer` is that serving
tier: a thread/process front-end over exactly one session, with a
reader-writer protocol that keeps the paper's correctness guarantees intact
while the graph mutates underneath the traffic.

The snapshot/stamp contract
---------------------------

* **Readers run concurrently.**  Any number of in-flight :meth:`run` /
  :meth:`submit` calls proceed at once under a shared read lock.
* **Writers run at quiescent points.**  ``delete_edge`` / ``insert_edge`` /
  ``add_node`` / ``apply`` are serialized, coalesced into batches, and
  applied only while *no* query is in flight (a writer-priority write lock:
  arriving writers stop new readers from starting, in-flight readers drain,
  the whole pending batch applies, readers resume).  A batch submitted
  through one :meth:`apply` call is atomic: readers can never observe a
  graph between two updates of the same batch.
* **Every result is stamped.**  The server counts applied mutations; the
  *mutation stamp* of a query result is that counter at the moment the query
  ran.  Because writers only run at quiescent points, a result stamped ``s``
  is exactly the relation a from-scratch simulation would produce on the
  graph after the first ``s`` mutations -- snapshot semantics, checked
  end-to-end by ``tests/session/test_concurrent_stress.py``.  Mutation calls
  block until their update is applied and return the per-update
  :class:`StampedOutcome` (outcome plus the stamp the graph reached).

Two execution backends behind one API
-------------------------------------

* ``backend="thread"`` -- queries run on a thread pool against the shared
  session.  Latency and fairness: a slow query never blocks an unrelated
  one, concurrent identical queries coalesce into a single protocol run
  (:meth:`LruResultCache.get_or_compute`), and every thread shares one
  result cache.  Pure-Python compute stays GIL-bound, so this backend is
  about overlap, not speedup.
* ``backend="process"`` -- queries are dispatched to a pool of
  :func:`~repro.runtime.mp._resident_session_worker` OS processes, each
  holding a full replica session built once from the shipped fragmentation
  *and* the parent's pre-built dependency graphs (the deps-amortization of
  :mod:`repro.runtime.mp`).  CPU-bound streams gain true parallel speedup
  (``benchmarks/bench_concurrent.py`` gates >= 2x at 4 workers on a
  16-fragment mixed stream).  Sticky least-loaded routing pins each distinct
  query (by canonical digest) to one worker, so repeats hit that worker's
  cache instead of recomputing everywhere.  Mutation batches broadcast to
  every replica inside the same write-lock hold that patches the parent
  session, keeping all replicas in lockstep with the stamp counter.

>>> server = ConcurrentSessionServer(fragmentation, backend="thread")
>>> futures = [server.submit(q) for q in queries]     # concurrent reads
>>> outcome = server.delete_edge(u, v)                # quiescent-point write
>>> outcome.stamp                                     # graph version reached
1
>>> server.run(queries[0]).stamp                      # observed by this read
1
>>> server.close()
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import DgpmConfig
from repro.core.depgraph import DependencyGraphs
from repro.errors import (
    MutationBatchError,
    ProtocolError,
    ReproError,
    TransportError,
)
from repro.graph.digraph import Label, Node
from repro.graph.mutations import (
    AddNode,
    DeleteEdge,
    InsertEdge,
    MutationOp,
    OpLike,
    RemoveNode,
    normalize_ops,
)
from repro.graph.pattern import Pattern
from repro.partition.fragmentation import Fragmentation, MutationDelta
from repro.partition.metrics import PartitionStats, partition_stats
from repro.partition.partitioners import min_cut_partition, traffic_node_weights
from repro.runtime.messages import COORDINATOR, Message, MessageKind
from repro.runtime.metrics import RunMetrics, RunResult
from repro.runtime.network import Network
from repro.runtime.transport import TRANSPORTS, FaultPlan, RetryPolicy
from repro.session.session import MutationOutcome, SimulationSession
from repro.session.sharding import SHARDED_PLANS, HashRing
from repro.simulation.matchrel import MatchRelation


@dataclass(frozen=True)
class StampedResult:
    """One served query: the answer plus the mutation stamp it observed.

    ``relation`` equals a from-scratch simulation of the query on the graph
    after the first ``stamp`` server-applied mutations.
    """

    relation: MatchRelation
    metrics: RunMetrics
    stamp: int

    @property
    def is_match(self) -> bool:
        """Boolean-query view of the answer."""
        return self.relation.is_match


@dataclass(frozen=True)
class StampedOutcome:
    """One applied mutation: the session's outcome plus the stamp it set.

    After this mutation the graph is at version ``stamp``; any query result
    carrying the same stamp observed exactly this graph.
    """

    outcome: MutationOutcome
    stamp: int


@dataclass(frozen=True)
class RebalanceOutcome:
    """What one online :meth:`ConcurrentSessionServer.rebalance` did.

    The stamp does *not* advance: a rebalance changes placement, never the
    graph, so answers before and after are identical (the per-stamp replay
    oracle of ``tests/session/test_rebalance.py`` checks exactly this across
    a live migration).
    """

    #: ``"repartition"`` (new fragmentation) or ``"place"`` (ring moves only)
    mode: str
    #: graph version the rebalance happened at (unchanged by it)
    stamp: int
    #: ``repartition``: nodes that changed fragment; ``place``: fragments
    #: that changed worker
    moved: int
    #: crossing-edge count before/after (identical for ``place``)
    cut_before: int
    cut_after: int
    #: ``Σ |Fi.O| + |Fi.I|`` before/after (identical for ``place``)
    boundary_before: int
    boundary_after: int
    wall_seconds: float


class _ReadWriteLock:
    """A writer-priority readers-writer lock.

    Arriving writers bar *new* readers, wait for in-flight readers to drain
    (the quiescent point), run exclusively, then release everyone.  Writer
    priority keeps a steady query stream from starving mutations; writers
    cannot starve readers because the server drains its whole pending batch
    in one exclusive section and then lets readers back in.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextmanager
    def read_locked(self):
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write_locked(self):
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            with self._cond:
                self._writer_active = False
                self._cond.notify_all()


class _WriteTicket:
    """One caller's mutation batch, waiting to be applied by some drainer."""

    __slots__ = ("ops", "results", "error", "done")

    def __init__(self, ops: List[MutationOp]) -> None:
        self.ops = ops
        self.results: Optional[List[StampedOutcome]] = None
        self.error: Optional[BaseException] = None
        self.done = False


class _Subscription:
    """One standing query: its baseline answer plus the delta callback.

    ``last`` is the flat ``{query node: matches}`` snapshot the subscriber
    has seen; each committed batch diffs the repaired answer against it
    under the server's write lock, so deltas are exact per stamp.
    """

    __slots__ = ("sub_id", "query", "algorithm", "config", "callback", "last")

    def __init__(self, sub_id, query, algorithm, config, callback, last) -> None:
        self.sub_id = sub_id
        self.query = query
        self.algorithm = algorithm
        self.config = config
        self.callback = callback
        self.last = last


class _WorkerHandle:
    """One process-backend worker: its transport, dispatch lock, routing load."""

    __slots__ = ("process", "link", "lock", "assigned", "dead")

    def __init__(self, process, link) -> None:
        self.process = process
        self.link = link  # a repro.runtime.transport.Transport
        self.lock = threading.Lock()
        self.assigned = 0  # distinct canonical digests routed here
        self.dead = False  # set on link failure; routing skips dead workers

    def _link_error(self, command: str, exc: BaseException) -> ProtocolError:
        """The uniform dead-worker error for every transport operation.

        Both transports surface a worker that died (OOM-kill, segfault,
        remote host gone) as ``EOFError`` / ``OSError`` / ``TransportError``
        here instead of blocking forever: the pipe's child end is closed in
        the parent at spawn time, and the socket hits EOF.
        """
        return ProtocolError(
            f"worker process (pid {self.process.pid}) died mid-"
            f"{command}: {exc!r}"
        )

    @staticmethod
    def _unwrap(status: str, reply):
        if status == "err":
            raise reply if isinstance(reply, BaseException) else ProtocolError(str(reply))
        return reply

    def request(self, command: str, payload):
        """One command/reply round-trip (serialized per worker)."""
        try:
            with self.lock:
                self.link.send((command, payload))
                status, reply = self.link.recv()
        except (EOFError, BrokenPipeError, TransportError, OSError) as exc:
            raise self._link_error(command, exc) from exc
        return self._unwrap(status, reply)

    def post(self, command: str, payload) -> None:
        """Send without waiting for the reply (pair with :meth:`collect`).

        Only valid under write exclusion, when nothing else can interleave
        on this link -- the broadcast path uses it to overlap all replicas'
        work instead of round-tripping one worker at a time.
        """
        try:
            with self.lock:
                self.link.send((command, payload))
        except (EOFError, BrokenPipeError, TransportError, OSError) as exc:
            raise self._link_error(command, exc) from exc

    def collect(self, command: str):
        """Receive the reply to an earlier :meth:`post`."""
        try:
            with self.lock:
                status, reply = self.link.recv()
        except (EOFError, BrokenPipeError, TransportError, OSError) as exc:
            raise self._link_error(command, exc) from exc
        return self._unwrap(status, reply)


class _ShardHandle(_WorkerHandle):
    """One sharded-backend worker: a :class:`_WorkerHandle` plus its ring slot."""

    __slots__ = ("slot",)

    def __init__(self, process, link, slot) -> None:
        super().__init__(process, link)
        self.slot = slot


class ConcurrentSessionServer:
    """Thread/process front-end serving one resident session concurrently.

    Parameters
    ----------
    source:
        A :class:`Fragmentation` (a fresh session is built over it, honoring
        ``config`` and ``session_kwargs``) or an existing
        :class:`SimulationSession` to front.
    backend:
        ``"thread"`` (shared session, overlap + shared cache) or
        ``"process"`` (replica sessions in OS workers, parallel speedup);
        see the module docstring.
    n_workers:
        Thread-pool width; for the process backend also the number of
        replica worker processes.
    config:
        Default config for a session built from a fragmentation (rejected
        together with an existing session -- that session already has one).
    transport:
        Channel between this front-end and its replica workers (process
        backend only): ``"pipe"`` (same-host ``multiprocessing.Pipe``, the
        default) or ``"tcp"`` (workers dial back over a token-authenticated
        localhost socket and are initialized over the wire -- the topology
        that generalizes to remote workers).  Both speak the same command
        protocol and share dead-peer semantics.
    session_kwargs:
        Extra :class:`SimulationSession` keyword arguments for a session
        built from a fragmentation (``cache_size``, ``maintenance``, ...);
        the process backend forwards them to every replica.
    """

    def __init__(
        self,
        source,
        backend: str = "thread",
        n_workers: int = 4,
        config: Optional[DgpmConfig] = None,
        transport: str = "pipe",
        fault_plan: Optional[FaultPlan] = None,
        respawn: Optional[RetryPolicy] = None,
        mp_context: Optional[str] = None,
        **session_kwargs,
    ) -> None:
        if backend not in ("thread", "process", "sharded"):
            raise ReproError(
                f"unknown backend {backend!r} (known: thread, process, sharded)"
            )
        if transport not in TRANSPORTS:
            raise ReproError(
                f"unknown transport {transport!r} "
                f"(known: {', '.join(TRANSPORTS)})"
            )
        if transport != "pipe" and backend == "thread":
            raise ReproError(
                "transport= selects the worker channel; it requires "
                "backend='process' or backend='sharded'"
            )
        if fault_plan is not None and backend != "sharded":
            raise ReproError(
                "fault_plan= injects faults on shard worker links; it "
                "requires backend='sharded'"
            )
        if mp_context is not None and backend == "thread":
            raise ReproError(
                "mp_context= picks the worker start method; it requires "
                "backend='process' or backend='sharded'"
            )
        if n_workers < 1:
            raise ReproError("n_workers must be >= 1")
        if isinstance(source, SimulationSession):
            if config is not None or session_kwargs:
                raise ReproError(
                    "config/session kwargs belong to the session; pass a "
                    "Fragmentation to have the server build one"
                )
            self._session = source
            self._replica_kwargs = {
                "cache_size": source._cache.max_entries,
                "maintenance": source.maintenance,
                "max_warm_states": source.max_warm_states,
                "warm_after_hits": source.warm_after_hits,
                "config": source.config,
            }
        elif isinstance(source, Fragmentation):
            self._session = SimulationSession(source, config=config, **session_kwargs)
            # Replicas receive deps through the worker spawn args (shipped
            # once); a caller-supplied deps= kwarg must not ride along too.
            self._replica_kwargs = {
                k: v for k, v in session_kwargs.items() if k != "deps"
            }
            self._replica_kwargs["config"] = self._session.config
        else:
            raise ReproError(
                f"cannot serve a {type(source).__name__}; pass a "
                "Fragmentation or a SimulationSession"
            )
        if backend == "sharded" and self._session.engine != "dict":
            raise ReproError(
                "backend='sharded' requires a dict-engine session: shard "
                "workers hold fragment subsets, and the array engine's "
                "compiled cache is built per full fragmentation"
            )
        self.backend = backend
        self.transport = transport
        self.n_workers = n_workers
        self.mp_context = mp_context
        self._rw = _ReadWriteLock()
        self._stamp = 0
        self._closed = False
        self._desynced = False
        self._write_cond = threading.Condition()
        self._write_queue: List[_WriteTicket] = []
        self._applying = False
        self._executor = ThreadPoolExecutor(
            max_workers=n_workers, thread_name_prefix="repro-serve"
        )
        self._workers: Optional[List[_WorkerHandle]] = None
        self._route_lock = threading.Lock()
        #: digest -> pinned worker, LRU-bounded: a long-running server seeing
        #: an unbounded stream of distinct queries must not grow this (or the
        #: per-worker load counters) forever -- old routes expire with the
        #: replica cache entries they mirrored
        self._affinity: "OrderedDict[str, _WorkerHandle]" = OrderedDict()
        self._max_routes = 4096
        #: sharded backend: worker pool keyed by ring slot, serialized by a
        #: reentrant pool lock (ring state, respawns, and distributed runs)
        self._pool_lock = threading.RLock()
        self._fault_plan = fault_plan
        self._respawn_policy = respawn if respawn is not None else RetryPolicy()
        self._shards: Optional[List[_ShardHandle]] = None
        self._ring: Optional[HashRing] = None
        self._respawns = 0
        self._rebalances = 0
        #: standing queries; guarded by its own lock so registration never
        #: holds the reader-writer lock (notify runs write-locked and takes
        #: this lock second -- the one sanctioned ordering)
        self._sub_lock = threading.Lock()
        self._subs: Dict[int, _Subscription] = {}
        self._next_sub_id = 1
        if backend == "process":
            self._workers = self._spawn_workers()
        elif backend == "sharded":
            self._ring, self._shards = self._spawn_shards()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _spawn_workers(self) -> List[_WorkerHandle]:
        from repro.runtime.mp import spawn_resident_workers

        self._session.warm()  # deps built once here, shipped to every worker
        return [
            _WorkerHandle(proc, link)
            for proc, link in spawn_resident_workers(
                self._session.fragmentation,
                self._session.deps,
                self._replica_kwargs,
                self.n_workers,
                transport=self.transport,
                mp_context=self.mp_context,
            )
        ]

    def _spawn_shards(self) -> Tuple[HashRing, List["_ShardHandle"]]:
        """Build the ring and spawn one fragment-owning worker per slot.

        Each worker ships out with only its owned fragments (plus the
        shared watcher tables) -- never the base graph -- so per-worker
        memory scales with ``|F|/n``; ``benchmarks/bench_sharded.py`` gates
        this against the replicated process backend.
        """
        from repro.runtime.mp import spawn_shard_workers

        self._session.warm()
        fragmentation = self._session.fragmentation
        ring = HashRing(
            tuple(range(self.n_workers)),
            tuple(frag.fid for frag in fragmentation),
        )
        slots = list(ring.workers)
        pairs = spawn_shard_workers(
            fragmentation,
            self._session.deps,
            [ring.fragments_of(slot) for slot in slots],
            transport=self.transport,
            mp_context=self.mp_context,
        )
        handles: List[_ShardHandle] = []
        for slot, (proc, link) in zip(slots, pairs):
            if self._fault_plan is not None:
                link = self._fault_plan.wrap(slot, link, on_kill=proc.terminate)
            handles.append(_ShardHandle(proc, link, slot))
        return ring, handles

    def close(self) -> None:
        """Drain in-flight work and shut both pools down (idempotent).

        New work is refused the moment the flag flips; queries already in
        the executor and mutation tickets already enqueued are drained
        first, so a mutation that applied to the parent session is never
        answered with a dead-worker error because its replica broadcast
        raced the worker shutdown.
        """
        with self._write_cond:
            if self._closed:
                return
            self._closed = True
        self._executor.shutdown(wait=True)
        # Let in-flight mutation batches finish their replica broadcasts
        # before the workers are told to stop (bounded: a wedged drainer
        # must not make close() hang forever).
        deadline = time.monotonic() + 30.0
        with self._write_cond:
            while (self._applying or self._write_queue) and (
                time.monotonic() < deadline
            ):
                self._write_cond.wait(timeout=1.0)
        for pool in (self._workers, self._shards):
            if pool is None:
                continue
            for handle in pool:
                try:
                    with handle.lock:
                        handle.link.send(("stop", None))
                except (BrokenPipeError, TransportError, OSError):
                    pass
            for handle in pool:
                handle.process.join(timeout=10)
                if handle.process.is_alive():  # pragma: no cover - defensive
                    handle.process.terminate()
                handle.link.close()  # else the parent-side FDs live until GC

    def __enter__(self) -> "ConcurrentSessionServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    @property
    def stamp(self) -> int:
        """Mutations applied so far (the current graph version)."""
        return self._stamp

    @property
    def session(self) -> SimulationSession:
        """The fronted session (mutate it only through this server)."""
        return self._session

    @property
    def stats(self):
        """The fronted session's serving counters.

        With the process backend these cover mutations only (queries run in
        the replicas); use :meth:`worker_stats` for per-replica counters.
        """
        return self._session.stats

    def submit(
        self,
        query: Pattern,
        algorithm: str = "auto",
        config: Optional[DgpmConfig] = None,
    ) -> "Future[StampedResult]":
        """Enqueue one query; the future resolves to a :class:`StampedResult`."""
        self._check_open()
        try:
            return self._executor.submit(self._serve, query, algorithm, config)
        except RuntimeError as exc:
            # close() raced us between _check_open and the executor submit;
            # keep the documented error contract.
            raise ReproError("the server is closed") from exc

    def run(
        self,
        query: Pattern,
        algorithm: str = "auto",
        config: Optional[DgpmConfig] = None,
    ) -> StampedResult:
        """Serve one query synchronously (still concurrent with other calls)."""
        return self.submit(query, algorithm=algorithm, config=config).result()

    def run_many(
        self,
        queries: Iterable[Pattern],
        algorithm: str = "auto",
        config: Optional[DgpmConfig] = None,
    ) -> List[StampedResult]:
        """Serve a batch of queries concurrently; results in input order."""
        futures = [
            self.submit(query, algorithm=algorithm, config=config)
            for query in queries
        ]
        return [future.result() for future in futures]

    def _serve(
        self, query: Pattern, algorithm: str, config: Optional[DgpmConfig]
    ) -> StampedResult:
        with self._rw.read_locked():
            stamp = self._stamp
            if self._workers is not None:
                result = self._serve_via_worker(query, algorithm, config)
            elif self._shards is not None:
                result = self._serve_via_shards(query, algorithm, config)
            else:
                result = self._session.run(query, algorithm=algorithm, config=config)
        return StampedResult(
            relation=result.relation, metrics=result.metrics, stamp=stamp
        )

    def _serve_via_worker(
        self, query: Pattern, algorithm: str, config: Optional[DgpmConfig]
    ):
        if self._desynced:
            raise ProtocolError(
                "a replica failed mid-mutation; the worker pool is out of "
                "sync with the parent session -- rebuild the server"
            )
        digest = self._session.canonical_form_of(query).digest
        with self._route_lock:
            handle = self._affinity.get(digest)
            if handle is not None and handle.dead:
                # The pinned replica died; un-pin and re-route below.
                del self._affinity[digest]
                handle = None
            if handle is None:
                # Sticky least-loaded routing: pin this distinct query to the
                # live worker with the fewest pinned queries, so repeats hit
                # that replica's cache and distinct queries spread evenly.
                live = [h for h in self._workers if not h.dead]
                if not live:
                    raise ProtocolError(
                        "every worker process has died -- rebuild the server"
                    )
                handle = min(live, key=lambda h: h.assigned)
                handle.assigned += 1
                self._affinity[digest] = handle
                while len(self._affinity) > self._max_routes:
                    _, stale = self._affinity.popitem(last=False)
                    stale.assigned -= 1
            else:
                self._affinity.move_to_end(digest)
        try:
            return handle.request("query", (query, algorithm, config))
        except ProtocolError:
            # Pipe-level death (request distinguishes it from in-worker
            # errors by raising ProtocolError with a dead process): take the
            # worker out of routing so later queries re-route instead of
            # failing on the corpse forever.
            if not handle.process.is_alive():
                handle.dead = True
            raise

    def worker_stats(self) -> List:
        """Per-replica :class:`SessionStats` (process backend only, live
        workers only)."""
        if self._workers is None:
            raise ReproError("worker_stats requires the process backend")
        self._check_open()
        if self._desynced:
            # A failed broadcast may have left unread replies on surviving
            # pipes; a request now would mispair replies with commands.
            raise ProtocolError(
                "a replica failed mid-mutation; the worker pool is out of "
                "sync with the parent session -- rebuild the server"
            )
        with self._rw.read_locked():
            return [
                handle.request("stats", None)
                for handle in self._workers
                if not handle.dead
            ]

    # ------------------------------------------------------------------
    # sharded backend: fragment-owning workers behind a consistent-hash ring
    # ------------------------------------------------------------------
    @property
    def ring(self) -> Optional[HashRing]:
        """The current fragment->worker assignment (sharded backend)."""
        return self._ring

    @property
    def respawns(self) -> int:
        """Workers respawned after a death (sharded backend)."""
        return self._respawns

    @property
    def rebalances(self) -> int:
        """Online rebalances performed so far (any backend)."""
        return self._rebalances

    def partition_snapshot(self) -> PartitionStats:
        """Cut-quality statistics of the currently served fragmentation.

        Taken under the read lock, so the snapshot never interleaves with a
        mutation batch or a rebalance; the v2 wire ``stats()`` reply carries
        this object.
        """
        self._check_open()
        with self._rw.read_locked():
            return partition_stats(self._session.fragmentation)

    def shard_stats(self) -> List[dict]:
        """Per-shard-worker stats (owned fragments, resident size, peak RSS)."""
        if self._shards is None:
            raise ReproError("shard_stats requires the sharded backend")
        self._check_open()
        with self._rw.read_locked():
            with self._pool_lock:
                self._heal_pool_locked()
                return [
                    handle.request("stats", None)
                    for handle in self._shards
                    if not handle.dead
                ]

    def _serve_via_shards(
        self, query: Pattern, algorithm: str, config: Optional[DgpmConfig]
    ) -> RunResult:
        config = config or self._session.config
        self._session._validate_args(algorithm, None)
        name = algorithm.lower()
        if name == "dgpmnopt":
            config = config.without_optimizations()
            name = "dgpm"
        driver = self._session._resolve_for_query(name, query)
        plan = SHARDED_PLANS.get(driver.name)
        if plan is None:
            # Centralized baselines (match, dISHHK) and the mp validation
            # driver ship the whole graph to one site by design; evaluating
            # them at the coordinator is faithful to their cost model.
            return self._session.run(query, algorithm=driver.name, config=config)
        # Queries are pure reads, so a worker death mid-run is retried from
        # scratch after the pool heals (bounded: each retry removes or
        # respawns at least one dead worker).
        with self._pool_lock:
            last: Optional[BaseException] = None
            for _ in range(self.n_workers + 2):
                self._heal_pool_locked()
                try:
                    return self._run_plan_locked(plan, driver.name, query, config)
                except ProtocolError as exc:
                    last = exc
            raise ProtocolError(
                f"sharded query failed after repeated pool repair: {last}"
            ) from last

    def _run_plan_locked(
        self, plan, name: str, query: Pattern, config: DgpmConfig
    ) -> RunResult:
        """One distributed run: Phase-1 broadcast, rounds, collect, assemble.

        Mirrors :class:`~repro.runtime.engine.SyncEngine` exactly -- same
        round numbering, same delivery barriers, same coordinator-handler
        timing -- but sites live in shard workers: each round's cross-shard
        messages route through the metered :class:`Network` and are batched
        to owning workers by ring lookup, while intra-shard messages stay
        worker-local (buffered one round, preserving superstep semantics).
        """
        session = self._session
        fragmentation = session.fragmentation
        cost = config.cost
        start = time.perf_counter()
        if plan.precheck is not None:
            short = plan.precheck(query, fragmentation, config)
            if short is not None:
                relation, extras = short
                wall = time.perf_counter() - start
                metrics = RunMetrics(
                    algorithm=plan.display_name,
                    pt_seconds=wall,
                    wall_seconds=wall,
                    ds_bytes=0,
                    n_messages=0,
                    n_rounds=0,
                    extras=extras,
                )
                return RunResult(relation=relation, metrics=metrics)
        handles = {h.slot: h for h in self._shards if not h.dead}
        if not handles:
            raise ProtocolError(
                "every shard worker has died -- rebuild the server"
            )
        network = Network(cost)
        for frag in fragmentation:
            network.send(
                Message(
                    src=COORDINATOR,
                    dst=frag.fid,
                    kind=MessageKind.QUERY,
                    payload=query,
                    size_bytes=cost.query_bytes(query.n_nodes, query.n_edges),
                )
            )
        while network.has_pending:  # broadcast completes before evaluation
            network.deliver()
        coordinator = (
            plan.make_coordinator(fragmentation, query, cost)
            if plan.make_coordinator is not None
            else None
        )
        outstanding: List[_ShardHandle] = []
        all_halted: dict = {}
        has_local: dict = {}
        try:
            for handle in handles.values():
                self._shard_post(
                    handle, "q.start", (name, query, config), outstanding
                )
            for handle in list(outstanding):
                cross, halted, local = self._shard_collect(
                    handle, "q.start", outstanding
                )
                all_halted[handle.slot] = halted
                has_local[handle.slot] = local
                network.send_all(cross)
            rounds = 1
            while (
                network.has_pending
                or not all(all_halted.values())
                or any(has_local.values())
            ):
                if rounds >= 1_000_000:
                    raise ProtocolError("no quiescence after 1000000 rounds")
                inboxes = network.deliver()
                coordinator_msgs = inboxes.pop(COORDINATOR, [])
                if coordinator_msgs and coordinator is not None:
                    network.send_all(coordinator(coordinator_msgs))
                per_slot: dict = {}
                for fid, inbox in inboxes.items():
                    per_slot.setdefault(self._ring.owner_of(fid), []).extend(inbox)
                targets = [
                    slot
                    for slot in handles
                    if per_slot.get(slot) or has_local[slot] or not all_halted[slot]
                ]
                for slot in targets:
                    self._shard_post(
                        handles[slot],
                        "q.tick",
                        (rounds, per_slot.get(slot, [])),
                        outstanding,
                    )
                for slot in targets:
                    cross, halted, local = self._shard_collect(
                        handles[slot], "q.tick", outstanding
                    )
                    all_halted[slot] = halted
                    has_local[slot] = local
                    network.send_all(cross)
                rounds += 1
            results: List[Message] = []
            for handle in handles.values():
                self._shard_post(handle, "q.collect", None, outstanding)
            for handle in handles.values():
                messages = self._shard_collect(handle, "q.collect", outstanding)
                network.send_all(messages)
                results.extend(messages)
            network.deliver()
        except BaseException:
            self._abort_outstanding(outstanding)
            raise
        relation = plan.assemble(query, results)
        # The parent session never ran this query, so attribute its traffic
        # here -- the sharded backend is the headline consumer of the
        # per-fragment window (rebalance() migrates by it).
        session.stats.bump_fragment(
            "fragment_queries", session._touched_fids(relation)
        )
        wall = time.perf_counter() - start
        metrics = RunMetrics(
            algorithm=plan.display_name,
            pt_seconds=wall,
            wall_seconds=wall,
            ds_bytes=network.data_bytes,
            n_messages=network.data_message_count,
            n_rounds=rounds,
            ds_breakdown=network.breakdown(),
            extras={"sharded_workers": float(len(handles))},
        )
        return RunResult(relation=relation, metrics=metrics)

    @staticmethod
    def _shard_post(
        handle: _ShardHandle, command: str, payload, outstanding: List[_ShardHandle]
    ) -> None:
        """Post to one shard worker, tracking the reply it now owes."""
        try:
            handle.post(command, payload)
        except ProtocolError:
            handle.dead = True
            raise
        outstanding.append(handle)

    @staticmethod
    def _shard_collect(
        handle: _ShardHandle, command: str, outstanding: List[_ShardHandle]
    ):
        """Collect one owed reply; a broken link marks the worker dead."""
        try:
            value = handle.collect(command)
        except ProtocolError:
            handle.dead = True
            raise
        finally:
            outstanding.remove(handle)
        return value

    @staticmethod
    def _abort_outstanding(outstanding: List[_ShardHandle]) -> None:
        """Drain replies still owed after an aborted run.

        Unread replies would mispair with the next command on the link;
        collect-and-discard from every still-live worker (``q.start``
        unconditionally resets worker query state, so no abort command is
        needed).  Workers that fail here are marked dead for the heal pass.
        """
        for handle in list(outstanding):
            if handle.dead:
                outstanding.remove(handle)
                continue
            try:
                handle.collect("abort-drain")
            except ProtocolError:
                handle.dead = True
            except Exception:  # worker-side error reply: link is clean
                pass
            outstanding.remove(handle)

    def _heal_pool_locked(self) -> None:
        """Respawn every dead shard worker; shrink the ring on give-up.

        A respawned worker receives its shard freshly extracted from the
        parent's *current* fragmentation -- every mutation applied while it
        was down is inherently included, so no batch is ever lost.  If the
        bounded :class:`~repro.runtime.transport.RetryPolicy` is exhausted,
        the slot leaves the ring and only its (migrated) fragments are
        re-shipped to the surviving owners.
        """
        from repro.runtime.mp import _shard_worker, respawn_worker

        with self._pool_lock:
            for handle in list(self._shards):
                if not handle.dead and handle.process.is_alive():
                    continue
                handle.dead = True
                fids = self._ring.fragments_of(handle.slot)
                init = (
                    self._session.fragmentation.extract_shard(fids),
                    self._session.deps,
                )
                try:
                    proc, link = respawn_worker(
                        _shard_worker,
                        init,
                        self.transport,
                        self._respawn_policy,
                        mp_context=self.mp_context,
                    )
                except ProtocolError:
                    self._evict_slot_locked(handle)
                    continue
                if self._fault_plan is not None:
                    link = self._fault_plan.wrap(
                        handle.slot, link, on_kill=proc.terminate
                    )
                try:
                    handle.link.close()
                except (OSError, TransportError):  # pragma: no cover
                    pass
                self._shards[self._shards.index(handle)] = _ShardHandle(
                    proc, link, handle.slot
                )
                self._respawns += 1
            if not self._shards:
                raise ProtocolError(
                    "every shard worker has died -- rebuild the server"
                )

    def _evict_slot_locked(self, handle: _ShardHandle) -> None:
        """Remove an unrecoverable slot; re-ship only the migrated fragments."""
        with self._pool_lock:
            if len(self._ring.workers) == 1:
                self._shards.remove(handle)
                return  # _heal_pool_locked raises "every shard worker died"
            new_ring = self._ring.leave(handle.slot)
            moved = self._ring.moved(new_ring)
            live = {
                h.slot: h
                for h in self._shards
                if h is not handle and not h.dead
            }
            adds_per_slot: dict = {}
            for fid, (_, gaining) in moved.items():
                adds_per_slot.setdefault(gaining, {})[fid] = (
                    self._session.fragmentation[fid]
                )
            for slot, adds in adds_per_slot.items():
                gainer = live.get(slot)
                if gainer is None:
                    # The gaining worker is itself dead; its own respawn
                    # extracts from the new ring and picks these up.
                    continue
                try:
                    gainer.request("install", (adds, []))
                except ProtocolError:
                    gainer.dead = True
            self._ring = new_ring
            self._shards.remove(handle)
            try:
                handle.link.close()
            except (OSError, TransportError):  # pragma: no cover
                pass

    def _broadcast_deltas_locked(self, deltas: List[MutationDelta]) -> None:
        """Route applied deltas to owning workers (+ watchers on boundary moves).

        Boundary transitions (``virtual_added``/``virtual_dropped``) patch
        every worker's watcher tables; all other deltas only touch the
        fragments of their source/target owners.  A worker that fails here
        is marked dead, *not* desynced: its replacement re-extracts from the
        authoritative parent fragmentation at heal time, so the batch is
        never lost.
        """
        with self._pool_lock:
            live = {h.slot: h for h in self._shards if not h.dead}
            per_slot: dict = {}
            for delta in deltas:
                # A composite delta (remove_node) routes by the union of its
                # cascade parts plus the dropped node's own fragment.
                parts = (delta, *delta.cascade)
                if any(p.virtual_added or p.virtual_dropped for p in parts):
                    slots = set(live)
                else:
                    slots = set()
                    for part in parts:
                        for fid in (part.source_fid, part.target_fid):
                            slot = self._ring.owner_of(fid)
                            if slot in live:
                                slots.add(slot)
                for slot in slots:
                    per_slot.setdefault(slot, []).append(delta)
            outstanding: List[_ShardHandle] = []
            for slot, batch in per_slot.items():
                try:
                    live[slot].post("mutate", batch)
                except ProtocolError:
                    continue  # post marked it dead; heal re-ships fresh state
                outstanding.append(live[slot])
            for handle in list(outstanding):
                try:
                    handle.collect("mutate")
                except ProtocolError:
                    pass  # collect marked it dead; heal re-ships fresh state
                except Exception:
                    # In-worker apply failure: its shard may have diverged.
                    # Retire it; the respawn re-extracts the current state.
                    handle.dead = True

    # ------------------------------------------------------------------
    # online repartitioning
    # ------------------------------------------------------------------
    def rebalance(
        self,
        mode: str = "repartition",
        traffic: Optional[Dict[int, int]] = None,
        balance: float = 1.25,
        seed: int = 0,
        max_passes: int = 8,
    ) -> RebalanceOutcome:
        """Re-place the served graph by observed traffic, at a quiescent point.

        Two modes, both answer-invariant (they change *where* data lives,
        never *what* the data is -- every protocol computes the same maximum
        simulation on any placement, so the mutation stamp does not move):

        * ``"repartition"`` -- compute a fresh cut-minimizing fragmentation
          with :func:`~repro.partition.partitioners.min_cut_partition`,
          weighting nodes by the per-fragment traffic window (hot fragments
          get heavy nodes, so the partitioner both avoids cutting hot
          regions and spreads them), rebuild the watcher tables once, and
          swap every serving layer over: the parent session
          (:meth:`SimulationSession.swap_fragmentation`), process-backend
          replicas (a ``rebalance`` broadcast), and sharded workers (each
          re-ships its slot's freshly extracted shard).  Works on all three
          backends.
        * ``"place"`` -- sharded backend only: keep the fragmentation, move
          whole fragments between workers along a traffic-balanced ring
          (:meth:`HashRing.rebalanced`) using the existing ``install``
          machinery; only moved fragments re-ship.

        ``traffic`` overrides the gathered ``{fid: count}`` window (the
        parent session's counters, merged with every live replica's on the
        process backend).  The write lock is held throughout -- readers see
        the old placement or the new one, never an intermediate -- and the
        traffic window resets afterwards so the next rebalance sees fresh
        counters.  Worker failures mid-rebalance follow each backend's
        existing contract: shard workers are marked dead and heal from the
        (already swapped) parent; a failed replica broadcast desyncs the
        process pool.
        """
        if mode not in ("repartition", "place"):
            raise ReproError(
                f"unknown rebalance mode {mode!r} (known: repartition, place)"
            )
        if mode == "place" and self._shards is None:
            raise ReproError(
                "mode='place' moves fragments between shard workers; it "
                "requires backend='sharded'"
            )
        self._check_open()
        start = time.perf_counter()
        with self._rw.write_locked():
            if traffic is None:
                traffic = self._gather_traffic_locked()
            before = partition_stats(self._session.fragmentation)
            if mode == "place":
                moved = self._rebalance_placement_locked(traffic)
                after = before
            else:
                moved = self._rebalance_repartition_locked(
                    traffic, balance, seed, max_passes
                )
                after = partition_stats(self._session.fragmentation)
            with self._pool_lock:
                self._rebalances += 1
        return RebalanceOutcome(
            mode=mode,
            stamp=self._stamp,
            moved=moved,
            cut_before=before.n_crossing_edges,
            cut_after=after.n_crossing_edges,
            boundary_before=before.total_boundary,
            boundary_after=after.total_boundary,
            wall_seconds=time.perf_counter() - start,
        )

    def _gather_traffic_locked(self) -> Dict[int, int]:
        """Merge the per-fragment traffic windows of every serving layer.

        The parent session always contributes (thread backend: all traffic;
        sharded: coordinator-attributed queries plus mutations); process
        replicas each serve a slice of the query stream, so their counters
        are summed in too.
        """
        merged = self._session.stats.traffic_snapshot()
        if self._workers is not None and not self._desynced:
            for handle in self._workers:
                if handle.dead:
                    continue
                try:
                    stats = handle.request("stats", None)
                except ProtocolError:
                    continue  # a dead replica's window is lost, not fatal
                for fid, count in stats.traffic_snapshot().items():
                    merged[fid] = merged.get(fid, 0) + count
        merged.pop(-1, None)  # the overflow key carries no placement signal
        return merged

    def _rebalance_repartition_locked(
        self, traffic: Dict[int, int], balance: float, seed: int, max_passes: int
    ) -> int:
        session = self._session
        old = session.fragmentation
        new_frag = min_cut_partition(
            old.graph,
            old.n_fragments,
            seed=seed,
            balance=balance,
            max_passes=max_passes,
            node_weights=traffic_node_weights(old, traffic),
        )
        moved = sum(
            1 for v in old.graph.nodes() if old.owner(v) != new_frag.owner(v)
        )
        deps = DependencyGraphs(new_frag)
        # Parent first: it is the authoritative copy every shard respawn
        # re-extracts from, so a worker that fails below heals onto the
        # *new* partition, never the old one.
        session.swap_fragmentation(new_frag, deps=deps)
        if self._workers is not None:
            if self._desynced:
                raise ProtocolError(
                    "a replica failed mid-mutation; the worker pool is out "
                    "of sync with the parent session -- rebuild the server"
                )
            try:
                live = [h for h in self._workers if not h.dead]
                for handle in live:
                    handle.post("rebalance", (new_frag, deps))
                for handle in live:
                    handle.collect("rebalance")
            except BaseException:
                # Some replicas swapped, some did not: same contract as a
                # failed mutation broadcast.
                self._desynced = True
                raise
        if self._shards is not None:
            with self._pool_lock:
                self._heal_pool_locked()
                outstanding: List[_ShardHandle] = []
                for handle in self._shards:
                    if handle.dead:
                        continue
                    payload = (
                        new_frag.extract_shard(
                            self._ring.fragments_of(handle.slot)
                        ),
                        deps,
                    )
                    try:
                        handle.post("rebalance", payload)
                    except ProtocolError:
                        handle.dead = True  # heal re-extracts the new state
                        continue
                    outstanding.append(handle)
                for handle in list(outstanding):
                    try:
                        handle.collect("rebalance")
                    except ProtocolError:
                        handle.dead = True  # heal re-extracts the new state
                    except Exception:
                        # In-worker swap failure: its shard may have
                        # diverged; retire it the same way.
                        handle.dead = True
        return moved

    def _rebalance_placement_locked(self, traffic: Dict[int, int]) -> int:
        session = self._session
        with self._pool_lock:
            self._heal_pool_locked()
            new_ring = self._ring.rebalanced(traffic)
            moved = self._ring.moved(new_ring)
            live = {h.slot: h for h in self._shards if not h.dead}
            adds_per_slot: Dict = {}
            drops_per_slot: Dict = {}
            for fid, (losing, gaining) in moved.items():
                adds_per_slot.setdefault(gaining, {})[fid] = (
                    session.fragmentation[fid]
                )
                drops_per_slot.setdefault(losing, []).append(fid)
            for slot in sorted(set(adds_per_slot) | set(drops_per_slot), key=repr):
                handle = live.get(slot)
                if handle is None:
                    continue  # its respawn extracts from the new ring
                try:
                    handle.request(
                        "install",
                        (
                            adds_per_slot.get(slot, {}),
                            sorted(drops_per_slot.get(slot, [])),
                        ),
                    )
                except ProtocolError:
                    # Dead or diverged either way: retire it; its respawn
                    # re-extracts from the parent under the new ring.
                    handle.dead = True
            self._ring = new_ring
        session.stats.reset_fragment_traffic()
        return len(moved)

    # ------------------------------------------------------------------
    # standing queries (subscriptions)
    # ------------------------------------------------------------------
    def subscribe(
        self,
        query: Pattern,
        callback: Callable[[int, int, Tuple, Tuple], None],
        algorithm: str = "auto",
        config: Optional[DgpmConfig] = None,
    ) -> Tuple[int, StampedResult]:
        """Register a standing query; returns ``(sub_id, baseline result)``.

        After every committed mutation batch that changes the query's
        answer, ``callback(sub_id, stamp, added, removed)`` fires from the
        writer's thread, inside the batch's quiescent point -- ``added`` and
        ``removed`` are tuples of ``(query node, data node)`` pairs and the
        stamp identifies exactly the graph version they describe.  The
        callback must not block (hand off to a queue) and must not call
        back into this server (the write lock is held).  Batches that leave
        the answer unchanged push nothing.

        The baseline is raced against concurrent writers: registration only
        commits when no batch intervened between evaluating the query and
        inserting the subscription, so the first push can never describe a
        change the baseline already contained (nor skip one it did not).
        """
        self._check_open()
        result = None
        for _ in range(16):
            with self._rw.read_locked():
                stamp = self._stamp
                result = self._session.run(
                    query, algorithm=algorithm, config=config
                )
            with self._sub_lock:
                if self._stamp == stamp:
                    sub_id = self._register_locked(
                        query, algorithm, config, callback,
                        result.relation.as_dict(),
                    )
                    return sub_id, StampedResult(
                        relation=result.relation,
                        metrics=result.metrics,
                        stamp=stamp,
                    )
        # A sustained write stream kept committing between evaluation and
        # registration.  Register with the last baseline anyway: the stream
        # that caused the races is still flowing, and its next batch diffs
        # against this baseline, closing the gap.
        with self._sub_lock:
            sub_id = self._register_locked(
                query, algorithm, config, callback, result.relation.as_dict()
            )
        return sub_id, StampedResult(
            relation=result.relation, metrics=result.metrics, stamp=stamp
        )

    def _register_locked(self, query, algorithm, config, callback, last) -> int:
        sub_id = self._next_sub_id
        self._next_sub_id += 1
        self._subs[sub_id] = _Subscription(
            sub_id, query, algorithm, config, callback, last
        )
        return sub_id

    def unsubscribe(self, sub_id: int) -> bool:
        """Drop a standing query; False if it was already gone."""
        with self._sub_lock:
            return self._subs.pop(sub_id, None) is not None

    def _notify_subscribers_locked(self) -> None:
        """Diff every standing query against the just-committed graph.

        Runs under the write lock (readers are drained), so the parent
        session can be queried directly; answers come from its maintained
        cache, so an unchanged hot query costs a cache hit, not a protocol
        run.  A callback that raises retires its subscription -- the
        serving layer's callbacks never raise, so this only catches broken
        direct registrations.
        """
        with self._sub_lock:
            subs = list(self._subs.values())
        stamp = self._stamp
        for sub in subs:
            result = self._session.run(
                sub.query, algorithm=sub.algorithm, config=sub.config
            )
            new = result.relation.as_dict()
            added: List[Tuple] = []
            removed: List[Tuple] = []
            for q in sorted(set(sub.last) | set(new), key=repr):
                before = sub.last.get(q, set())
                after = new.get(q, set())
                added.extend((q, v) for v in sorted(after - before, key=repr))
                removed.extend((q, v) for v in sorted(before - after, key=repr))
            if not added and not removed:
                continue
            sub.last = new
            try:
                sub.callback(sub.sub_id, stamp, tuple(added), tuple(removed))
            except Exception:
                self.unsubscribe(sub.sub_id)

    # ------------------------------------------------------------------
    # writes (serialized, coalesced, applied at quiescent points)
    # ------------------------------------------------------------------
    def delete_edge(self, u: Node, v: Node) -> StampedOutcome:
        """Delete edge ``(u, v)``; blocks until applied, returns its stamp."""
        return self._mutate([DeleteEdge(u, v)])[0]

    def insert_edge(self, u: Node, v: Node) -> StampedOutcome:
        """Insert edge ``(u, v)``; blocks until applied, returns its stamp."""
        return self._mutate([InsertEdge(u, v)])[0]

    def add_node(
        self, node: Node, label: Label, fid: Optional[int] = None
    ) -> StampedOutcome:
        """Add an isolated labeled node; blocks until applied."""
        return self._mutate([AddNode(node, label, fid)])[0]

    def remove_node(self, node: Node) -> StampedOutcome:
        """Remove ``node`` with every incident edge; blocks until applied."""
        return self._mutate([RemoveNode(node)])[0]

    def apply(self, updates: Sequence[OpLike]) -> List[StampedOutcome]:
        """Apply a batch of updates in one quiescent point.

        While the batch applies, no query runs -- a successful batch is
        atomic to readers: intermediate stamps exist (each update advances
        the counter) but are never visible to a query.  If an update *fails*
        (e.g. deleting an edge that is already gone), the updates applied
        before it stay applied (node additions have no inverse, so there is
        no rollback) and a :class:`~repro.errors.MutationBatchError` reports
        the failing update plus the stamped outcomes of the applied prefix;
        readers then observe the prefix state.  Update syntax matches
        :meth:`SimulationSession.apply`: typed
        :class:`~repro.graph.mutations.MutationOp` values, with legacy
        tuples accepted under a :class:`DeprecationWarning`.
        """
        return self._mutate(normalize_ops(updates))

    def _mutate(self, ops: List[MutationOp]) -> List[StampedOutcome]:
        if not ops:
            return []
        ticket = _WriteTicket(ops)
        with self._write_cond:
            self._check_open()
            self._write_queue.append(ticket)
            # One mutating caller at a time plays "drainer" and applies the
            # whole pending queue (coalescing everyone else's tickets into
            # its quiescent point); the rest wait for their ticket.
            while not ticket.done and self._applying:
                self._write_cond.wait()
            become_drainer = not ticket.done
            if become_drainer:
                self._applying = True
        if become_drainer:
            try:
                self._drain_writes()
            except BaseException:
                # An infrastructure failure (e.g. a replica broadcast) in a
                # *coalesced* batch must not masquerade as ours: if our own
                # ticket was decided (results or error recorded), fall through
                # and report that decision; re-raise only when the failure
                # struck before our ticket was resolved.
                with self._write_cond:
                    if ticket.results is None and ticket.error is None:
                        raise
        with self._write_cond:
            while not ticket.done:
                self._write_cond.wait()
        if ticket.error is not None:
            raise ticket.error
        return ticket.results

    def _drain_writes(self) -> None:
        while True:
            with self._write_cond:
                batch = list(self._write_queue)
                self._write_queue.clear()
                if not batch:
                    self._applying = False
                    self._write_cond.notify_all()
                    return
            try:
                self._apply_batch(batch)
            except BaseException as exc:
                with self._write_cond:
                    for ticket in batch:
                        if ticket.error is None and ticket.results is None:
                            ticket.error = exc
                        ticket.done = True
                    self._applying = False
                    self._write_cond.notify_all()
                raise
            with self._write_cond:
                for ticket in batch:
                    ticket.done = True
                self._write_cond.notify_all()

    def _apply_batch(self, batch: List[_WriteTicket]) -> None:
        """Apply every ticket inside one write-lock hold (the quiescent point).

        Per-ticket failures (e.g. deleting an edge that is already gone) are
        recorded on that ticket and do not disturb the others; the replica
        broadcast ships exactly the updates the parent session accepted.
        """
        with self._rw.write_locked():
            applied: List[MutationOp] = []
            applied_deltas: List[MutationDelta] = []
            for ticket in batch:
                results: List[StampedOutcome] = []
                failed_op = None
                try:
                    for op in ticket.ops:
                        failed_op = op
                        outcome = self._session.apply([op])[0]
                        applied.append(op)
                        if outcome.delta is not None:
                            applied_deltas.append(outcome.delta)
                        self._stamp += 1
                        results.append(
                            StampedOutcome(outcome=outcome, stamp=self._stamp)
                        )
                    ticket.results = results
                except Exception as exc:
                    # Only ordinary Exceptions become per-ticket failures
                    # (KeyboardInterrupt and friends abort the whole drain
                    # through _drain_writes' BaseException path instead).
                    # Updates of this ticket applied before the failure stay
                    # applied (stamps already advanced; additions have no
                    # inverse, so no rollback) -- the caller gets the applied
                    # prefix and the failing op; other tickets proceed.  A
                    # ticket that failed on its very first update raises the
                    # underlying error directly (nothing was applied).
                    if not results and len(ticket.ops) == 1:
                        ticket.error = exc
                    else:
                        error = MutationBatchError(
                            f"update {failed_op!r} failed after "
                            f"{len(results)} of {len(ticket.ops)} updates: {exc}",
                            applied=results,
                            failed_op=failed_op,
                        )
                        error.__cause__ = exc
                        ticket.error = error
            if self._workers is not None and applied and not self._desynced:
                # (Once desynced, pipes may hold unread replies -- no
                # further traffic; the parent session stays authoritative.)
                try:
                    # Pipelined broadcast: every replica starts applying at
                    # once, so the reader-blocking quiescent window is the
                    # slowest replica, not the sum over workers.  Workers
                    # already marked dead are skipped (they serve nothing).
                    live = [h for h in self._workers if not h.dead]
                    for handle in live:
                        handle.post("mutate", applied)
                    for handle in live:
                        handle.collect("mutate")
                except BaseException:
                    # A replica diverged from the parent; refuse to serve
                    # possibly-stale answers from the pool afterwards.
                    self._desynced = True
                    raise
            if self._shards is not None and applied_deltas:
                # Shard workers never desync the server: a failed worker is
                # marked dead and its respawn re-extracts from the parent
                # fragmentation (which already holds this batch).
                self._broadcast_deltas_locked(applied_deltas)
            if applied and self._subs:
                # Still inside the quiescent point: the diffs below observe
                # exactly the post-batch graph, so every pushed delta is
                # stamped with the state it describes.
                self._notify_subscribers_locked()

    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise ReproError("the server is closed")

    def __repr__(self) -> str:
        via = f", transport={self.transport!r}" if self.backend != "thread" else ""
        return (
            f"ConcurrentSessionServer(backend={self.backend!r}{via}, "
            f"n_workers={self.n_workers}, stamp={self._stamp})"
        )
