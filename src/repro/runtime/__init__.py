"""Simulated distributed runtime.

The paper runs on an EC2 cluster; this package provides the deterministic
substitute (DESIGN.md §2): every fragment is held by a
:class:`~repro.runtime.engine.Site` driven by a synchronous-round
:class:`~repro.runtime.engine.SyncEngine`; all communication flows through a
:class:`~repro.runtime.network.Network` that meters every byte against a
declared :class:`~repro.runtime.costmodel.CostModel`.

Metrics reported per run (:class:`~repro.runtime.metrics.RunMetrics`):

* **PT (response time)** -- the *simulated makespan*: per round, the slowest
  site's measured local compute, plus modeled link latency and transfer time
  for the bytes moved that round.  This is the quantity the paper's PT plots
  show, reproduced under a uniform cost model.
* **DS (data shipment)** -- exact wire bytes of protocol messages.  Following
  the paper's reporting (dGPM ships "0.94K" on a 120M-edge graph), query
  broadcast, control flags and final result collection are metered separately
  and excluded from the headline number.

An optional :mod:`~repro.runtime.mp` executor runs the same site programs in
real OS processes to validate that simulated trends match wall-clock ones.
"""

from repro.runtime.costmodel import CostModel
from repro.runtime.messages import Message, MessageKind
from repro.runtime.network import Network
from repro.runtime.metrics import RunMetrics, RunResult
from repro.runtime.engine import SiteProgram, SyncEngine, TickResult

__all__ = [
    "CostModel",
    "Message",
    "MessageKind",
    "Network",
    "RunMetrics",
    "RunResult",
    "SiteProgram",
    "SyncEngine",
    "TickResult",
]
