"""Run results and performance metrics.

:class:`RunMetrics` is what every benchmark prints: the simulated parallel
response time (PT) and the data shipment (DS), matching the paper's two
y-axes, plus the raw ingredients (rounds, message counts, per-round compute).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.simulation.matchrel import MatchRelation


@dataclass(frozen=True)
class RunMetrics:
    """Metered performance of one distributed run.

    Frozen: instances live in the session's result cache and are pickled
    inside RunReply frames, so every cache hit and every reply future hands
    the same object to another caller.  Derive variants with
    ``dataclasses.replace``.
    """

    algorithm: str
    #: simulated makespan: sum over rounds of (max site compute + link time)
    pt_seconds: float
    #: total wall-clock of the in-process run (diagnostic only)
    wall_seconds: float
    #: headline data shipment in bytes (protocol data messages only)
    ds_bytes: int
    #: number of protocol data messages
    n_messages: int
    #: synchronous rounds executed (message-delivery cycles)
    n_rounds: int
    #: bytes per message kind (full breakdown, incl. control/query/result)
    ds_breakdown: Dict[str, int] = field(default_factory=dict)
    #: slowest-site compute per round, seconds
    per_round_compute: List[float] = field(default_factory=list)
    #: algorithm-specific extras (e.g. supersteps, push count)
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def ds_kb(self) -> float:
        """DS in kilobytes -- the unit of the paper's Figure 6."""
        return self.ds_bytes / 1024.0

    def describe(self) -> str:
        """One-line summary, paper-style."""
        return (
            f"{self.algorithm}: PT={self.pt_seconds:.4f}s "
            f"DS={self.ds_kb:.2f}KB msgs={self.n_messages} rounds={self.n_rounds}"
        )


@dataclass(frozen=True)
class RunResult:
    """Answer plus metrics for one distributed evaluation.

    Frozen for the same reason as :class:`RunMetrics`: this is the cached
    value itself, shared by every hit on the entry.
    """

    relation: MatchRelation
    metrics: RunMetrics

    @property
    def is_match(self) -> bool:
        """Boolean-query view of the answer."""
        return self.relation.is_match
