"""Pluggable worker transports: pipes (one host) and TCP sockets (any host).

:mod:`repro.runtime.mp` originally hard-wired its workers to
``multiprocessing.Pipe``.  This module abstracts that channel behind
:class:`Transport` -- ``send(obj)`` / ``recv()`` / ``close()`` with pipe
semantics -- and adds a socket implementation framed by the shared wire
protocol (:mod:`repro.net.protocol`), so site workers and replica-session
workers can be remote processes.  The demo/test topology spawns them locally
and has them dial back over localhost TCP, but nothing in the protocol
assumes a shared host: a worker started anywhere with the listener's
``(host, port)`` and its token joins the run.

Failure semantics are deliberately identical across implementations, so the
executors' dead-peer handling is written once:

* ``recv()`` on a peer that went away raises :class:`EOFError` (what
  ``multiprocessing.Connection`` raises on a closed pipe);
* ``send()`` to a dead peer raises :class:`BrokenPipeError` / ``OSError``;
* garbage on a socket (a non-repro peer) raises
  :class:`~repro.errors.WireFormatError`, a :class:`ProtocolError`.

Worker bootstrap
----------------

A worker process is spawned with a picklable *channel spec* and calls
:func:`open_worker_transport` to realize it:

* ``("pipe", connection)`` -- the classic same-host channel;
* ``("tcp", (host, port, token))`` -- dial the parent's
  :class:`SocketListener` and authenticate with the per-worker token (sent
  as the first object on the wire); the parent's
  :meth:`SocketListener.accept_worker` matches tokens to worker slots, so
  arrival order never matters.
"""

from __future__ import annotations

import os
import random
import socket
import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import TransportError, WireFormatError
from repro.net.protocol import DEFAULT_MAX_FRAME, FrameKind, read_frame, write_frame

#: the worker channels this module can realize (shared by every spawner)
TRANSPORTS = ("pipe", "tcp")

#: handshake preamble a TCP worker sends right after connecting
_HELLO = "repro-worker"


class Transport:
    """One end of a parent<->worker channel with pipe send/recv semantics."""

    def send(self, obj) -> None:
        raise NotImplementedError

    def recv(self):
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class PipeTransport(Transport):
    """A :class:`multiprocessing.connection.Connection` behind the interface."""

    def __init__(self, conn) -> None:
        self.conn = conn

    def send(self, obj) -> None:
        self.conn.send(obj)

    def recv(self):
        return self.conn.recv()

    def close(self) -> None:
        self.conn.close()

    def __repr__(self) -> str:
        return f"PipeTransport({self.conn!r})"


class SocketTransport(Transport):
    """A TCP stream speaking OBJ frames of the shared wire protocol."""

    def __init__(self, sock: socket.socket, max_frame: int = DEFAULT_MAX_FRAME):
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(None)  # blocking, like a pipe
        self._sock = sock
        self._max_frame = max_frame

    def send(self, obj) -> None:
        write_frame(self._sock, FrameKind.OBJ, obj, max_frame=self._max_frame)

    def recv(self):
        kind, _seq, payload = read_frame(self._sock, self._max_frame)
        if kind != FrameKind.OBJ:
            raise WireFormatError(
                f"worker transport received a {kind.name} frame (OBJ only)"
            )
        return payload

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    @property
    def peer(self) -> Tuple[str, int]:
        return self._sock.getpeername()

    def __repr__(self) -> str:
        try:
            peer = self._sock.getpeername()
        except OSError:
            peer = "closed"
        return f"SocketTransport(peer={peer})"


class SocketListener:
    """The parent's accept side of the TCP transport.

    Binds ``host:port`` (port 0 = ephemeral), hands out one
    :class:`SocketTransport` per authenticated worker, and closes.  Tokens --
    one fresh random secret per expected worker -- are the spawn-time secret
    shared with each worker; an unknown or replayed token is refused and the
    connection dropped, so a stray client cannot slip into a worker slot.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, backlog: int = 16):
        self._sock = socket.create_server((host, port), backlog=backlog)
        self.address: Tuple[str, int] = self._sock.getsockname()[:2]

    @staticmethod
    def fresh_token() -> bytes:
        return os.urandom(16)

    def accept_worker(
        self,
        expected: Dict[bytes, object],
        timeout: float = 30.0,
        max_frame: int = DEFAULT_MAX_FRAME,
    ) -> Tuple[object, SocketTransport]:
        """Accept one worker whose token is a key of ``expected``.

        Returns ``(expected.pop(token), transport)``; the caller's mapping
        shrinks as slots fill, so ``expected`` doubles as the waiting set.
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TransportError(
                    f"no worker connected within {timeout}s "
                    f"({len(expected)} slot(s) still waiting)"
                )
            self._sock.settimeout(remaining)
            try:
                conn, _addr = self._sock.accept()
            except socket.timeout:
                continue
            transport = SocketTransport(conn, max_frame=max_frame)
            try:
                hello = transport.recv()
            except (EOFError, OSError, TransportError, WireFormatError):
                transport.close()
                continue
            if (
                isinstance(hello, tuple)
                and len(hello) == 2
                and hello[0] == _HELLO
                and hello[1] in expected
            ):
                return expected.pop(hello[1]), transport
            transport.close()  # wrong secret / not a worker: refuse the slot

    def accept_workers(
        self,
        tokens: Iterable[Tuple[bytes, object]],
        timeout: float = 30.0,
        max_frame: int = DEFAULT_MAX_FRAME,
    ) -> Dict[object, SocketTransport]:
        """Accept every ``(token, slot)`` worker; returns ``slot -> transport``."""
        expected = dict(tokens)
        accepted: Dict[object, SocketTransport] = {}
        deadline = time.monotonic() + timeout
        while expected:
            slot, transport = self.accept_worker(
                expected,
                timeout=max(0.001, deadline - time.monotonic()),
                max_frame=max_frame,
            )
            accepted[slot] = transport
        return accepted

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "SocketListener":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def connect_worker(
    address: Tuple[str, int],
    token: bytes,
    max_frame: int = DEFAULT_MAX_FRAME,
    timeout: float = 30.0,
) -> SocketTransport:
    """Worker side: dial the parent's listener and authenticate."""
    try:
        sock = socket.create_connection(address, timeout=timeout)
    except OSError as exc:
        raise TransportError(f"cannot reach parent at {address}: {exc}") from exc
    transport = SocketTransport(sock, max_frame=max_frame)
    transport.send((_HELLO, token))
    return transport


def open_worker_transport(channel) -> Transport:
    """Realize a spawn-time channel spec inside the worker process."""
    kind = channel[0]
    if kind == "pipe":
        return PipeTransport(channel[1])
    if kind == "tcp":
        host, port, token = channel[1]
        return connect_worker((host, port), token)
    raise TransportError(f"unknown worker channel kind {kind!r}")


# ----------------------------------------------------------------------
# reconnect/respawn policy and deterministic fault injection
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry schedule with exponential backoff.

    Shared by every reconnect path: :class:`repro.net.client.SessionClient`
    redials with it, and the sharded worker pool respawns dead workers with
    it (``repro.runtime.mp.respawn_worker``).  ``attempts`` bounds the
    number of tries; :meth:`delays` yields the pause *after* each failed
    try, growing by ``multiplier`` up to ``max_backoff_s``.
    """

    attempts: int = 3
    backoff_s: float = 0.05
    multiplier: float = 2.0
    max_backoff_s: float = 2.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("a RetryPolicy needs at least one attempt")
        if self.backoff_s < 0 or self.multiplier < 1.0:
            raise ValueError("backoff must be >= 0 and multiplier >= 1")

    def delays(self) -> Iterator[float]:
        """One pause per attempt: ``backoff_s * multiplier^i``, capped."""
        delay = self.backoff_s
        for _ in range(self.attempts):
            yield delay
            delay = min(delay * self.multiplier, self.max_backoff_s)


class FaultPlan:
    """A deterministic, seeded schedule of transport faults for tests.

    The plan is fixed up front -- nothing random happens at injection time,
    so a failing test reproduces from its seed alone.  Faults fire at
    *message boundaries*: each wrapped transport counts every ``send``/
    ``recv`` it crosses, and the plan decides per ``(slot, boundary)``:

    * ``kills[slot] = b`` -- at boundary ``>= b``, invoke the wrapper's
      ``on_kill`` (the pool passes ``process.terminate``), close the link,
      and raise :class:`TransportError`.  One-shot per slot: the respawned
      worker's fresh link is not re-killed, so recovery is observable.
    * ``drops`` -- the message at ``(slot, boundary)`` is lost; the wrapper
      raises :class:`TransportError` (a lost frame surfaces as a dead link
      to the request/reply layer -- silently swallowing it would hang the
      caller, which no deterministic harness should do).  One-shot each.
    * ``delay_every = n`` -- sleep ``delay_s`` at every ``n``-th boundary,
      jittering interleavings without breaking anything.

    Fired events are recorded in :attr:`events` as
    ``(slot, boundary, action)`` so tests can assert what actually
    happened.
    """

    def __init__(
        self,
        seed: int = 0,
        kills: Optional[Dict[object, int]] = None,
        drops: Iterable[Tuple[object, int]] = (),
        delay_every: int = 0,
        delay_s: float = 0.001,
    ) -> None:
        self.seed = seed
        self.kills: Dict[object, int] = dict(kills or {})
        self.drops = set(drops)
        self.delay_every = delay_every
        self.delay_s = delay_s
        self.events: List[Tuple[object, int, str]] = []
        self._fired: set = set()
        self._lock = threading.Lock()

    @classmethod
    def seeded(
        cls,
        seed: int,
        n_slots: int,
        kill_window: Tuple[int, int] = (4, 40),
        delay_every: int = 0,
    ) -> "FaultPlan":
        """Derive a one-kill plan from ``seed``: victim and boundary only
        depend on ``(seed, n_slots)``, never on global RNG state."""
        rng = random.Random(seed)
        victim = rng.randrange(n_slots)
        boundary = rng.randrange(*kill_window)
        return cls(seed=seed, kills={victim: boundary}, delay_every=delay_every)

    def decide(self, slot, boundary: int) -> Optional[str]:
        """The action for this boundary crossing, recording what fired."""
        with self._lock:
            kill_at = self.kills.get(slot)
            if kill_at is not None and boundary >= kill_at and slot not in self._fired:
                self._fired.add(slot)
                self.events.append((slot, boundary, "kill"))
                return "kill"
            if (slot, boundary) in self.drops:
                self.drops.discard((slot, boundary))
                self.events.append((slot, boundary, "drop"))
                return "drop"
            if self.delay_every and boundary % self.delay_every == self.delay_every - 1:
                self.events.append((slot, boundary, "delay"))
                return "delay"
            return None

    def wrap(self, slot, transport: Transport, on_kill=None) -> "FaultyTransport":
        """Wrap one worker link; ``on_kill`` is invoked when a kill fires."""
        return FaultyTransport(transport, self, slot, on_kill=on_kill)

    def __repr__(self) -> str:
        return (
            f"FaultPlan(seed={self.seed}, kills={self.kills}, "
            f"drops={sorted(self.drops)}, delay_every={self.delay_every})"
        )


class FaultyTransport(Transport):
    """A :class:`Transport` that consults a :class:`FaultPlan` per message."""

    def __init__(
        self, inner: Transport, plan: FaultPlan, slot, on_kill=None
    ) -> None:
        self._inner = inner
        self._plan = plan
        self._slot = slot
        self._on_kill = on_kill
        self._boundary = 0

    def _cross(self) -> Optional[str]:
        boundary = self._boundary
        self._boundary += 1
        action = self._plan.decide(self._slot, boundary)
        if action == "delay":
            time.sleep(self._plan.delay_s)
            return None
        return action

    def _die(self) -> None:
        if self._on_kill is not None:
            self._on_kill()
        try:
            self._inner.close()
        except OSError:
            pass
        raise TransportError(
            f"fault injection: worker slot {self._slot!r} killed at "
            f"boundary {self._boundary - 1} (seed {self._plan.seed})"
        )

    def send(self, obj) -> None:
        action = self._cross()
        if action == "kill":
            self._die()
        if action == "drop":
            raise TransportError(
                f"fault injection: message to slot {self._slot!r} dropped at "
                f"boundary {self._boundary - 1} (seed {self._plan.seed})"
            )
        self._inner.send(obj)

    def recv(self):
        action = self._cross()
        if action == "kill":
            self._die()
        if action == "drop":
            self._inner.recv()  # the frame arrives, the plan loses it
            raise TransportError(
                f"fault injection: message from slot {self._slot!r} dropped "
                f"at boundary {self._boundary - 1} (seed {self._plan.seed})"
            )
        return self._inner.recv()

    def close(self) -> None:
        self._inner.close()

    def __repr__(self) -> str:
        return f"FaultyTransport(slot={self._slot!r}, inner={self._inner!r})"
