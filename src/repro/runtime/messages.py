"""Message types exchanged between sites.

Every message declares its own wire size (computed from the
:class:`~repro.runtime.costmodel.CostModel` by the sender) and an accounting
*category*, so the network can keep the paper's DS metric (protocol data)
separate from query broadcast, control flags and result collection.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

#: Special destination id for the coordinator site ``Sc``.
COORDINATOR = -1


class MessageKind(str, enum.Enum):
    """Wire-level category of a message (drives the DS breakdown)."""

    #: pattern query broadcast from the coordinator
    QUERY = "query"
    #: Boolean variable falsifications (the only payload baseline dGPM ships)
    VAR_UPDATE = "var_update"
    #: Boolean equations (push operation, dGPMt partial answers)
    EQUATION = "equation"
    #: request for the values of virtual-node variables (dMes supersteps)
    VAR_REQUEST = "var_request"
    #: reply carrying variable values (dMes supersteps, dGPMt phase 2)
    VAR_VALUES = "var_values"
    #: shipped subgraphs (Match, disHHK)
    SUBGRAPH = "subgraph"
    #: dependency-graph rewiring announcements (push operation)
    REWIRE = "rewire"
    #: changed-flags / votes to halt sent to the coordinator
    CONTROL = "control"
    #: final local matches shipped to the coordinator
    RESULT = "result"


#: Kinds counted in the headline DS number (the paper's "data shipment").
DATA_KINDS = frozenset(
    {
        MessageKind.VAR_UPDATE,
        MessageKind.EQUATION,
        MessageKind.VAR_REQUEST,
        MessageKind.VAR_VALUES,
        MessageKind.SUBGRAPH,
        MessageKind.REWIRE,
    }
)


@dataclass
class Message:
    """A single message in flight.

    ``src``/``dst`` are fragment ids (or :data:`COORDINATOR`); ``payload`` is
    algorithm-specific; ``size_bytes`` is the metered wire size.
    """

    src: int
    dst: int
    kind: MessageKind
    payload: Any
    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("message size must be non-negative")
