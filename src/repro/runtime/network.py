"""The metered network connecting sites and coordinator.

The network is a per-round mailbox: messages sent during round ``r`` are
delivered at the start of round ``r + 1``.  Every byte is accounted by
:class:`MessageKind`, giving both the paper's headline DS (data kinds only,
see :data:`~repro.runtime.messages.DATA_KINDS`) and the full breakdown.

**Asynchrony testing.**  The paper's dGPM runs asynchronously; its fixpoint
is schedule-independent (Section 4.1's correctness argument).  Construct the
network with ``scramble=(seed, fraction)`` and each delivery round releases
only a random subset of the queued messages, holding the rest back -- an
adversarial reordering of the asynchronous schedule.  Tests assert every
algorithm converges to the same answer under many such schedules.
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.runtime.costmodel import CostModel
from repro.runtime.messages import DATA_KINDS, Message, MessageKind


class Network:
    """Round-buffered message transport with byte accounting."""

    def __init__(self, cost: CostModel, scramble: Optional[Tuple[int, float]] = None) -> None:
        self.cost = cost
        self._in_flight: List[Message] = []
        self.bytes_by_kind: Dict[MessageKind, int] = defaultdict(int)
        self.count_by_kind: Dict[MessageKind, int] = defaultdict(int)
        self.round_bytes: List[int] = []  # data bytes moved per delivery round
        self._rng: Optional[random.Random] = None
        self._deliver_fraction = 1.0
        if scramble is not None:
            seed, fraction = scramble
            if not 0.0 < fraction <= 1.0:
                raise ValueError("delivery fraction must be in (0, 1]")
            self._rng = random.Random(seed)
            self._deliver_fraction = fraction

    # ------------------------------------------------------------------
    def send(self, message: Message) -> None:
        """Queue ``message`` for delivery at the next round."""
        self._in_flight.append(message)
        self.bytes_by_kind[message.kind] += message.size_bytes
        self.count_by_kind[message.kind] += 1

    def send_all(self, messages) -> None:
        """Queue several messages."""
        for message in messages:
            self.send(message)

    @property
    def has_pending(self) -> bool:
        """True iff messages await delivery."""
        return bool(self._in_flight)

    def deliver(self) -> Dict[int, List[Message]]:
        """Deliver queued messages, grouped by destination.

        In scramble mode only a random subset is released (at least one, so
        progress is guaranteed); the rest stay in flight for a later round.
        Also records the round's data-byte volume for the PT model.
        """
        releasing = self._in_flight
        held: List[Message] = []
        if self._rng is not None and len(self._in_flight) > 1:
            releasing = []
            for message in self._in_flight:
                if self._rng.random() < self._deliver_fraction:
                    releasing.append(message)
                else:
                    held.append(message)
            if not releasing:  # guarantee progress
                releasing.append(held.pop(self._rng.randrange(len(held))))
        inboxes: Dict[int, List[Message]] = defaultdict(list)
        volume = 0
        for message in releasing:
            inboxes[message.dst].append(message)
            if message.kind in DATA_KINDS:
                volume += message.size_bytes
        self.round_bytes.append(volume)
        self._in_flight = held
        return dict(inboxes)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def data_bytes(self) -> int:
        """Headline DS: bytes of protocol data messages."""
        return sum(self.bytes_by_kind[k] for k in DATA_KINDS if k in self.bytes_by_kind)

    @property
    def data_message_count(self) -> int:
        """Number of protocol data messages."""
        return sum(self.count_by_kind[k] for k in DATA_KINDS if k in self.count_by_kind)

    @property
    def total_bytes(self) -> int:
        """All bytes, including query broadcast, control and results."""
        return sum(self.bytes_by_kind.values())

    def breakdown(self) -> Dict[str, int]:
        """Bytes per message kind, with string keys for reporting."""
        return {kind.value: n for kind, n in sorted(self.bytes_by_kind.items())}
