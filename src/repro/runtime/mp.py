"""Real-process execution of distributed runs (validation executor).

The synchronous simulator (:mod:`repro.runtime.engine`) is the metered
substrate for all benchmarks; this module runs the *same* algorithms with
sites as genuine OS processes connected by pipes, so tests can confirm that
the simulator's answers (and message/byte accounting) are not artifacts of
in-process execution.

Design: a worker process per fragment executes the identical
``SiteProgram`` code; the parent process plays network + coordinator,
relaying each round's messages.  Rounds stay synchronous -- the goal is
fidelity of the protocol, not peak throughput (the paper's asynchronous
runs converge to the same fixpoint; see Section 4.1's correctness argument).

:func:`_resident_session_worker` is the second kind of worker: instead of
one fragment of one query, it holds a full replica
:class:`~repro.session.SimulationSession` (fragmentation plus the pre-built
dependency graphs, shipped once at startup -- the deps-amortization this
module already uses for ``run_dgpm_multiprocess``) and serves whole queries.
The concurrent front-end (:mod:`repro.session.concurrent`) uses a pool of
these for true parallel speedup on CPU-bound query streams.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from typing import Dict, List, Optional

from repro.core.config import DgpmConfig
from repro.core.depgraph import DependencyGraphs
from repro.core.dgpm import DgpmSiteProgram, assemble_result
from repro.errors import ProtocolError
from repro.graph.pattern import Pattern
from repro.partition.fragmentation import Fragmentation
from repro.runtime.messages import COORDINATOR, Message
from repro.runtime.metrics import RunMetrics, RunResult
from repro.runtime.network import Network


def _site_worker(fid, fragmentation, query, config, deps, conn) -> None:
    """Worker-process loop: run one DgpmSiteProgram against a pipe."""
    program = DgpmSiteProgram(fid, fragmentation, query, deps, config)
    result = program.on_start()
    conn.send(("msgs", result.messages))
    while True:
        command, payload = conn.recv()
        if command == "tick":
            round_no, inbox = payload
            result = program.on_tick(round_no, inbox)
            conn.send(("msgs", result.messages))
        elif command == "collect":
            conn.send(("result", program.collect()))
        elif command == "stop":
            conn.close()
            return


def _resident_session_worker(fragmentation, deps, session_kwargs, conn) -> None:
    """Worker-process loop: a full replica session answering whole queries.

    Commands (``(command, payload)`` over the pipe):

    * ``("query", (query, algorithm, config))`` -> ``("ok", RunResult)`` or
      ``("err", exception)``;
    * ``("mutate", updates)`` -- apply a batch through the replica's mutation
      API (keeps it in lockstep with the parent) -> ``("ok", n_applied)``;
    * ``("stats", None)`` -> ``("ok", SessionStats)``;
    * ``("stop", None)`` -- close and exit.

    Replies that fail to pickle are downgraded to ``("err", ProtocolError)``
    so the parent is never left blocked on a half-sent reply.
    """
    from repro.session.session import SimulationSession  # import cycle guard

    session = SimulationSession(fragmentation, deps=deps, **session_kwargs)
    while True:
        try:
            command, payload = conn.recv()
        except EOFError:  # pragma: no cover - parent died
            return
        if command == "query":
            query, algorithm, config = payload
            try:
                reply = ("ok", session.run(query, algorithm=algorithm, config=config))
            except Exception as exc:
                reply = ("err", exc)
        elif command == "mutate":
            try:
                reply = ("ok", len(session.apply(payload)))
            except Exception as exc:
                reply = ("err", exc)
        elif command == "stats":
            reply = ("ok", session.stats)
        elif command == "stop":
            conn.close()
            return
        else:
            reply = ("err", ProtocolError(f"unknown worker command {command!r}"))
        try:
            conn.send(reply)
        except Exception as exc:  # pragma: no cover - unpicklable payload
            conn.send(("err", ProtocolError(f"worker reply failed to pickle: {exc}")))


def run_dgpm_multiprocess(
    query: Pattern,
    fragmentation: Fragmentation,
    config: Optional[DgpmConfig] = None,
    max_rounds: int = 100_000,
    deps: Optional[DependencyGraphs] = None,
) -> RunResult:
    """Evaluate dGPM with each site in its own OS process.

    Returns the same :class:`RunResult` shape as the simulator; PT here is
    wall-clock (processes genuinely run in parallel), DS is metered from the
    relayed messages with the same cost model.

    ``deps`` may be a session's cached :class:`DependencyGraphs`; it is built
    once here otherwise and shipped to every worker, so workers never re-derive
    the per-graph structures (``SimulationSession.run(..., algorithm="dgpm-mp")``
    reuses the resident copy).
    """
    config = config or DgpmConfig()
    cost = config.cost
    start = time.perf_counter()
    network = Network(cost)
    if deps is None:
        deps = DependencyGraphs(fragmentation)

    ctx = mp.get_context()
    pipes: Dict[int, mp.connection.Connection] = {}
    workers: List[mp.Process] = []
    for frag in fragmentation:
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_site_worker,
            args=(frag.fid, fragmentation, query, config, deps, child_conn),
            daemon=True,
        )
        proc.start()
        pipes[frag.fid] = parent_conn
        workers.append(proc)

    try:
        pending: List[Message] = []
        for fid, conn in pipes.items():
            kind, messages = conn.recv()
            pending.extend(messages)
        rounds = 1
        while True:
            deliverable = [m for m in pending if m.dst != COORDINATOR]
            for message in pending:  # meter everything, incl. control flags
                network.send(message)
            network.deliver()
            if not deliverable:
                break
            if rounds >= max_rounds:
                raise ProtocolError(f"no quiescence after {max_rounds} rounds")
            inboxes: Dict[int, List[Message]] = {}
            for message in deliverable:
                inboxes.setdefault(message.dst, []).append(message)
            pending = []
            for fid, inbox in inboxes.items():
                pipes[fid].send(("tick", (rounds, inbox)))
            for fid in inboxes:
                kind, messages = pipes[fid].recv()
                pending.extend(messages)
            rounds += 1

        results: List[Message] = []
        for fid, conn in pipes.items():
            conn.send(("collect", None))
            kind, message = conn.recv()
            network.send(message)
            results.append(message)
        network.deliver()
        relation = assemble_result(query, results)
    finally:
        for fid, conn in pipes.items():
            try:
                conn.send(("stop", None))
            except (BrokenPipeError, OSError):
                pass
        for proc in workers:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()

    wall = time.perf_counter() - start
    metrics = RunMetrics(
        algorithm="dGPM-mp",
        pt_seconds=wall,
        wall_seconds=wall,
        ds_bytes=network.data_bytes,
        n_messages=network.data_message_count,
        n_rounds=rounds,
        ds_breakdown=network.breakdown(),
    )
    return RunResult(relation=relation, metrics=metrics)
