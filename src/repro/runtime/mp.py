"""Real-process execution of distributed runs (validation executor).

The synchronous simulator (:mod:`repro.runtime.engine`) is the metered
substrate for all benchmarks; this module runs the *same* algorithms with
sites as genuine OS processes, so tests can confirm that the simulator's
answers (and message/byte accounting) are not artifacts of in-process
execution.

Design: a worker process per fragment executes the identical
``SiteProgram`` code; the parent process plays network + coordinator,
relaying each round's messages.  Rounds stay synchronous -- the goal is
fidelity of the protocol, not peak throughput (the paper's asynchronous
runs converge to the same fixpoint; see Section 4.1's correctness argument).

Workers talk to the parent through a pluggable
:class:`~repro.runtime.transport.Transport`: ``transport="pipe"`` keeps the
classic same-host ``multiprocessing.Pipe`` channel, ``transport="tcp"``
has each worker dial the parent's socket listener and receive its whole
initial state (fragment assignment, query, config, and the pre-built
dependency graphs -- shipped once, exactly like the pipe path) over the
wire, so workers can in principle run on other machines.  Both transports
share dead-peer semantics: a vanished worker surfaces as
:class:`~repro.errors.ProtocolError` instead of a hang.

:func:`_resident_session_worker` is the second kind of worker: instead of
one fragment of one query, it holds a full replica
:class:`~repro.session.SimulationSession` (fragmentation plus the pre-built
dependency graphs, shipped once at startup) and serves whole queries.  The
concurrent front-end (:mod:`repro.session.concurrent`) uses a pool of
these -- spawned through :func:`spawn_resident_workers`, over either
transport -- for true parallel speedup on CPU-bound query streams.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from typing import Dict, List, Optional, Tuple

from repro.core.config import DgpmConfig
from repro.core.depgraph import DependencyGraphs
from repro.core.dgpm import DgpmSiteProgram, assemble_result
from repro.errors import ProtocolError, ReproError, TransportError
from repro.graph.pattern import Pattern
from repro.partition.fragmentation import Fragmentation
from repro.runtime.messages import COORDINATOR, Message
from repro.runtime.metrics import RunMetrics, RunResult
from repro.runtime.network import Network
from repro.runtime.transport import (
    TRANSPORTS,
    PipeTransport,
    SocketListener,
    Transport,
    open_worker_transport,
)


def _worker_init(transport: Transport, init):
    """The worker's startup payload: from spawn args, or over the wire.

    Pipe workers get their state through the spawn arguments (free under
    ``fork``); TCP workers are spawned with ``init=None`` and receive an
    ``("init", payload)`` message as the first object on their socket --
    the same state, shipped once, but over a channel that could cross
    machines.
    """
    if init is not None:
        return init
    command, payload = transport.recv()
    if command != "init":
        raise ProtocolError(f"worker expected init, got {command!r}")
    return payload


def _site_worker(channel, init=None) -> None:
    """Worker-process loop: run one DgpmSiteProgram against its transport."""
    transport = open_worker_transport(channel)
    fid, fragmentation, query, config, deps = _worker_init(transport, init)
    program = DgpmSiteProgram(fid, fragmentation, query, deps, config)
    result = program.on_start()
    transport.send(("msgs", result.messages))
    while True:
        try:
            command, payload = transport.recv()
        except EOFError:  # pragma: no cover - parent died
            return
        if command == "tick":
            round_no, inbox = payload
            result = program.on_tick(round_no, inbox)
            transport.send(("msgs", result.messages))
        elif command == "collect":
            transport.send(("result", program.collect()))
        elif command == "stop":
            transport.close()
            return


def _resident_session_worker(channel, init=None) -> None:
    """Worker-process loop: a full replica session answering whole queries.

    Commands (``(command, payload)`` over the transport):

    * ``("query", (query, algorithm, config))`` -> ``("ok", RunResult)`` or
      ``("err", exception)``;
    * ``("mutate", updates)`` -- apply a batch through the replica's mutation
      API (keeps it in lockstep with the parent) -> ``("ok", n_applied)``;
    * ``("stats", None)`` -> ``("ok", SessionStats)``;
    * ``("stop", None)`` -- close and exit.

    Replies that fail to pickle are downgraded to ``("err", ProtocolError)``
    so the parent is never left blocked on a half-sent reply.
    """
    from repro.session.session import SimulationSession  # import cycle guard

    transport = open_worker_transport(channel)
    fragmentation, deps, session_kwargs = _worker_init(transport, init)
    session = SimulationSession(fragmentation, deps=deps, **session_kwargs)
    while True:
        try:
            command, payload = transport.recv()
        except EOFError:  # pragma: no cover - parent died
            return
        if command == "query":
            query, algorithm, config = payload
            try:
                reply = ("ok", session.run(query, algorithm=algorithm, config=config))
            except Exception as exc:
                reply = ("err", exc)
        elif command == "mutate":
            try:
                reply = ("ok", len(session.apply(payload)))
            except Exception as exc:
                reply = ("err", exc)
        elif command == "stats":
            reply = ("ok", session.stats)
        elif command == "stop":
            transport.close()
            return
        else:
            reply = ("err", ProtocolError(f"unknown worker command {command!r}"))
        try:
            transport.send(reply)
        except Exception as exc:  # pragma: no cover - unpicklable payload
            transport.send(("err", ProtocolError(f"worker reply failed to pickle: {exc}")))


def _check_transport(transport: str) -> None:
    if transport not in TRANSPORTS:
        raise ReproError(
            f"unknown transport {transport!r} (known: {', '.join(TRANSPORTS)})"
        )


def _spawn_over_transport(
    target,
    inits: List[tuple],
    transport: str,
    ctx=None,
) -> List[Tuple[mp.Process, Transport]]:
    """Spawn one ``target`` worker per init payload; returns their links,
    in init order.

    Pipe workers receive their init through spawn args; TCP workers dial a
    short-lived listener (token-authenticated, so slots cannot be confused
    or hijacked) and receive ``("init", init)`` over the socket.  On any
    spawn/handshake failure every already-started worker is terminated
    (and its link closed) before the error propagates -- no orphan
    processes blocked on ``recv()`` forever.
    """
    ctx = ctx or mp.get_context()
    pairs: List[Tuple[mp.Process, Transport]] = []
    procs: List[mp.Process] = []
    links: Dict[int, Transport] = {}
    try:
        if transport == "pipe":
            for init in inits:
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=target, args=(("pipe", child_conn), init), daemon=True
                )
                proc.start()
                procs.append(proc)
                link = PipeTransport(parent_conn)
                links[len(links)] = link
                # Close the parent's copy of the child end: if the worker
                # dies, the pipe hits EOF and recv raises instead of
                # blocking forever.
                child_conn.close()
                pairs.append((proc, link))
            return pairs

        with SocketListener() as listener:
            host, port = listener.address
            tokens: List[Tuple[bytes, int]] = []
            for i, _ in enumerate(inits):
                token = SocketListener.fresh_token()
                proc = ctx.Process(
                    target=target, args=(("tcp", (host, port, token)), None), daemon=True
                )
                proc.start()
                procs.append(proc)
                tokens.append((token, i))
            links = listener.accept_workers(tokens)
        for i, init in enumerate(inits):
            links[i].send(("init", init))
            pairs.append((procs[i], links[i]))
        return pairs
    except BaseException:
        # Any spawn/handshake/init failure (a failed Pipe()/fork mid-batch,
        # accept timeout, a dead dial, an init payload that will not
        # frame...) tears down everything already started, then re-raises.
        for link in links.values():
            try:
                link.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        raise


def spawn_resident_workers(
    fragmentation: Fragmentation,
    deps: DependencyGraphs,
    session_kwargs: dict,
    n_workers: int,
    transport: str = "pipe",
) -> List[Tuple[mp.Process, Transport]]:
    """Spawn ``n_workers`` replica-session workers over the chosen transport.

    Each worker builds one :class:`SimulationSession` from the shipped
    fragmentation and pre-built dependency graphs (shipped once per worker
    lifetime, whichever the channel).  Returns ``[(process, link), ...]``;
    the caller owns shutdown (send ``("stop", None)``, join, close).
    """
    _check_transport(transport)
    init = (fragmentation, deps, session_kwargs)
    return _spawn_over_transport(
        _resident_session_worker, [init] * n_workers, transport
    )


def run_dgpm_multiprocess(
    query: Pattern,
    fragmentation: Fragmentation,
    config: Optional[DgpmConfig] = None,
    max_rounds: int = 100_000,
    deps: Optional[DependencyGraphs] = None,
    transport: str = "pipe",
) -> RunResult:
    """Evaluate dGPM with each site in its own OS process.

    Returns the same :class:`RunResult` shape as the simulator; PT here is
    wall-clock (processes genuinely run in parallel), DS is metered from the
    relayed messages with the same cost model.

    ``deps`` may be a session's cached :class:`DependencyGraphs`; it is built
    once here otherwise and shipped to every worker, so workers never re-derive
    the per-graph structures (``SimulationSession.run(..., algorithm="dgpm-mp")``
    reuses the resident copy).  ``transport`` picks the parent<->site channel:
    ``"pipe"`` (same host) or ``"tcp"`` (workers dial back over a socket and
    are initialized over the wire; answers and message accounting are
    identical by construction -- the relay only swaps channels).
    """
    _check_transport(transport)
    config = config or DgpmConfig()
    cost = config.cost
    start = time.perf_counter()
    network = Network(cost)
    if deps is None:
        deps = DependencyGraphs(fragmentation)

    fids = [frag.fid for frag in fragmentation]
    pairs = _spawn_over_transport(
        _site_worker,
        [(fid, fragmentation, query, config, deps) for fid in fids],
        transport,
    )
    links: Dict[int, Transport] = {
        fid: link for fid, (_, link) in zip(fids, pairs)
    }
    workers = [proc for proc, _ in pairs]

    def relay_recv(fid: int):
        try:
            return links[fid].recv()
        except EOFError as exc:
            raise ProtocolError(
                f"site worker for fragment {fid} died mid-run"
            ) from exc

    try:
        pending: List[Message] = []
        for fid in links:
            kind, messages = relay_recv(fid)
            pending.extend(messages)
        rounds = 1
        while True:
            deliverable = [m for m in pending if m.dst != COORDINATOR]
            for message in pending:  # meter everything, incl. control flags
                network.send(message)
            network.deliver()
            if not deliverable:
                break
            if rounds >= max_rounds:
                raise ProtocolError(f"no quiescence after {max_rounds} rounds")
            inboxes: Dict[int, List[Message]] = {}
            for message in deliverable:
                inboxes.setdefault(message.dst, []).append(message)
            pending = []
            for fid, inbox in inboxes.items():
                links[fid].send(("tick", (rounds, inbox)))
            for fid in inboxes:
                kind, messages = relay_recv(fid)
                pending.extend(messages)
            rounds += 1

        results: List[Message] = []
        for fid, link in links.items():
            link.send(("collect", None))
            kind, message = relay_recv(fid)
            network.send(message)
            results.append(message)
        network.deliver()
        relation = assemble_result(query, results)
    finally:
        for fid, link in links.items():
            try:
                link.send(("stop", None))
            except (BrokenPipeError, OSError, TransportError):
                pass
        for proc in workers:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
        for link in links.values():
            link.close()

    wall = time.perf_counter() - start
    metrics = RunMetrics(
        algorithm="dGPM-mp",
        pt_seconds=wall,
        wall_seconds=wall,
        ds_bytes=network.data_bytes,
        n_messages=network.data_message_count,
        n_rounds=rounds,
        ds_breakdown=network.breakdown(),
    )
    return RunResult(relation=relation, metrics=metrics)
