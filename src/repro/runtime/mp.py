"""Real-process execution of distributed runs (validation executor).

The synchronous simulator (:mod:`repro.runtime.engine`) is the metered
substrate for all benchmarks; this module runs the *same* algorithms with
sites as genuine OS processes, so tests can confirm that the simulator's
answers (and message/byte accounting) are not artifacts of in-process
execution.

Design: a worker process per fragment executes the identical
``SiteProgram`` code; the parent process plays network + coordinator,
relaying each round's messages.  Rounds stay synchronous -- the goal is
fidelity of the protocol, not peak throughput (the paper's asynchronous
runs converge to the same fixpoint; see Section 4.1's correctness argument).

Workers talk to the parent through a pluggable
:class:`~repro.runtime.transport.Transport`: ``transport="pipe"`` keeps the
classic same-host ``multiprocessing.Pipe`` channel, ``transport="tcp"``
has each worker dial the parent's socket listener and receive its whole
initial state (fragment assignment, query, config, and the pre-built
dependency graphs -- shipped once, exactly like the pipe path) over the
wire, so workers can in principle run on other machines.  Both transports
share dead-peer semantics: a vanished worker surfaces as
:class:`~repro.errors.ProtocolError` instead of a hang.

:func:`_resident_session_worker` is the second kind of worker: instead of
one fragment of one query, it holds a full replica
:class:`~repro.session.SimulationSession` (fragmentation plus the pre-built
dependency graphs, shipped once at startup) and serves whole queries.  The
concurrent front-end (:mod:`repro.session.concurrent`) uses a pool of
these -- spawned through :func:`spawn_resident_workers`, over either
transport -- for true parallel speedup on CPU-bound query streams.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from typing import Dict, List, Optional, Tuple

from repro.core.config import DgpmConfig
from repro.core.depgraph import DependencyGraphs
from repro.core.dgpm import DgpmSiteProgram, assemble_result
from repro.errors import ProtocolError, ReproError, TransportError
from repro.graph.pattern import Pattern
from repro.partition.fragmentation import Fragmentation
from repro.runtime.messages import COORDINATOR, Message
from repro.runtime.metrics import RunMetrics, RunResult
from repro.runtime.network import Network
from repro.runtime.transport import (
    TRANSPORTS,
    PipeTransport,
    SocketListener,
    Transport,
    open_worker_transport,
)


def _worker_init(transport: Transport, init):
    """The worker's startup payload: from spawn args, or over the wire.

    Pipe workers get their state through the spawn arguments (free under
    ``fork``); TCP workers are spawned with ``init=None`` and receive an
    ``("init", payload)`` message as the first object on their socket --
    the same state, shipped once, but over a channel that could cross
    machines.
    """
    if init is not None:
        return init
    command, payload = transport.recv()
    if command != "init":
        raise ProtocolError(f"worker expected init, got {command!r}")
    return payload


def _site_worker(channel, init=None) -> None:
    """Worker-process loop: run one DgpmSiteProgram against its transport."""
    transport = open_worker_transport(channel)
    fid, fragmentation, query, config, deps = _worker_init(transport, init)
    program = DgpmSiteProgram(fid, fragmentation, query, deps, config)
    result = program.on_start()
    transport.send(("msgs", result.messages))
    while True:
        try:
            command, payload = transport.recv()
        except EOFError:  # pragma: no cover - parent died
            return
        if command == "tick":
            round_no, inbox = payload
            result = program.on_tick(round_no, inbox)
            transport.send(("msgs", result.messages))
        elif command == "collect":
            transport.send(("result", program.collect()))
        elif command == "stop":
            transport.close()
            return


def _resident_session_worker(channel, init=None) -> None:
    """Worker-process loop: a full replica session answering whole queries.

    Commands (``(command, payload)`` over the transport):

    * ``("query", (query, algorithm, config))`` -> ``("ok", RunResult)`` or
      ``("err", exception)``;
    * ``("mutate", updates)`` -- apply a batch through the replica's mutation
      API (keeps it in lockstep with the parent) -> ``("ok", n_applied)``;
    * ``("rebalance", (fragmentation, deps))`` -- adopt a re-partitioning of
      the same graph via ``session.swap_fragmentation`` -> ``("ok", |F|)``;
    * ``("stats", None)`` -> ``("ok", SessionStats)``;
    * ``("stop", None)`` -- close and exit.

    Replies that fail to pickle are downgraded to ``("err", ProtocolError)``
    so the parent is never left blocked on a half-sent reply.
    """
    from repro.session.session import SimulationSession  # import cycle guard

    transport = open_worker_transport(channel)
    fragmentation, deps, session_kwargs = _worker_init(transport, init)
    session = SimulationSession(fragmentation, deps=deps, **session_kwargs)
    while True:
        try:
            command, payload = transport.recv()
        except EOFError:  # pragma: no cover - parent died
            return
        if command == "query":
            query, algorithm, config = payload
            try:
                reply = ("ok", session.run(query, algorithm=algorithm, config=config))
            except Exception as exc:
                reply = ("err", exc)
        elif command == "mutate":
            try:
                reply = ("ok", len(session.apply(payload)))
            except Exception as exc:
                reply = ("err", exc)
        elif command == "rebalance":
            try:
                new_fragmentation, new_deps = payload
                session.swap_fragmentation(new_fragmentation, deps=new_deps)
                reply = ("ok", new_fragmentation.n_fragments)
            except Exception as exc:
                reply = ("err", exc)
        elif command == "stats":
            reply = ("ok", session.stats)
        elif command == "stop":
            transport.close()
            return
        else:
            reply = ("err", ProtocolError(f"unknown worker command {command!r}"))
        try:
            transport.send(reply)
        except Exception as exc:  # pragma: no cover - unpicklable payload
            transport.send(("err", ProtocolError(f"worker reply failed to pickle: {exc}")))


#: the sharded worker's full command inventory; the protocol-exhaustive
#: checker verifies every entry has a dispatch arm in ``_shard_worker`` and
#: a sender in the coordinator (repro.session.concurrent).
SHARD_COMMANDS: Tuple[str, ...] = (
    "q.start",
    "q.tick",
    "q.collect",
    "mutate",
    "install",
    "rebalance",
    "stats",
    "stop",
)


def _peak_rss_kb() -> int:
    """This process's peak resident set (VmHWM) in KiB; 0 if unreadable."""
    try:
        with open("/proc/self/status", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):  # pragma: no cover - non-Linux
        pass
    try:  # pragma: no cover - non-Linux fallback
        import resource

        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except Exception:  # pragma: no cover
        return 0


def _shard_worker(channel, init=None) -> None:
    """Worker-process loop: own a *subset* of fragments, not a replica.

    This is the site model of the paper's Section 2.2 made literal: the
    worker holds a :class:`~repro.partition.fragmentation.FragmentShard`
    (its owned fragments only -- no base graph) plus the watcher tables,
    and participates in coordinator-driven rounds.  Commands:

    * ``("q.start", (name, query, config))`` -- build one site program per
      owned fragment from the module-level sharded plan registry and run
      ``on_start``; replies ``("ok", (cross_msgs, all_halted, has_local))``
      where ``cross_msgs`` are messages leaving this shard (intra-shard
      messages are buffered locally for the next round, preserving the
      synchronous-round semantics of the in-process engine).  Always resets
      any previous query state, so an aborted run cannot leak into the
      next.
    * ``("q.tick", (round_no, inbox))`` -- one superstep over the owned
      sites: deliver buffered intra-shard messages plus the coordinator's
      ``inbox``, tick every site that has mail or is not halted; same reply
      shape.
    * ``("q.collect", None)`` -> ``("ok", [result messages])``; clears the
      query state.
    * ``("mutate", [MutationDelta, ...])`` -- replay deltas into the shard
      and watcher tables -> ``("ok", n_applied)``.
    * ``("install", (adds, drops))`` -- adopt/release fragment ownership on
      ring changes -> ``("ok", owned_fids)``.
    * ``("rebalance", (shard, deps))`` -- replace the worker's whole shard
      *and* watcher tables after an online re-partition (``install`` moves
      fragments of the current partition; a re-partition changes fragment
      contents and boundary tables, so everything re-ships) ->
      ``("ok", owned_fids)``.  Any active query state is reset.
    * ``("stats", None)`` -> ``("ok", {...})`` incl. peak RSS.
    * ``("stop", None)`` -- close and exit.
    """
    from repro.session.sharding import SHARDED_PLANS  # import cycle guard

    transport = open_worker_transport(channel)
    shard, deps = _worker_init(transport, init)
    programs = None
    halted: Dict[int, bool] = {}
    local_pending: List[Message] = []

    def route(messages: List[Message], cross: List[Message]) -> None:
        for message in messages:
            if programs is not None and message.dst in programs:
                local_pending.append(message)
            else:
                cross.append(message)

    while True:
        try:
            command, payload = transport.recv()
        except EOFError:  # pragma: no cover - parent died
            return
        if command == "q.start":
            name, query, config = payload
            try:
                plan = SHARDED_PLANS[name]
                halted = {}
                local_pending = []
                programs = {
                    fid: plan.build_program(fid, shard, query, deps, config)
                    for fid in shard.fids
                }
                cross: List[Message] = []
                for fid in sorted(programs):
                    result = programs[fid].on_start()
                    halted[fid] = result.halted
                    route(result.messages, cross)
                reply = ("ok", (cross, all(halted.values()), bool(local_pending)))
            except Exception as exc:
                programs = None
                reply = ("err", exc)
        elif command == "q.tick":
            round_no, inbox = payload
            try:
                if programs is None:
                    raise ProtocolError("q.tick without an active q.start")
                inboxes: Dict[int, List[Message]] = {}
                for message in local_pending + list(inbox):
                    inboxes.setdefault(message.dst, []).append(message)
                local_pending = []
                cross = []
                for fid in sorted(programs):
                    site_inbox = inboxes.get(fid, [])
                    if not site_inbox and halted[fid]:
                        continue
                    result = programs[fid].on_tick(round_no, site_inbox)
                    halted[fid] = result.halted
                    route(result.messages, cross)
                reply = ("ok", (cross, all(halted.values()), bool(local_pending)))
            except Exception as exc:
                reply = ("err", exc)
        elif command == "q.collect":
            try:
                if programs is None:
                    raise ProtocolError("q.collect without an active q.start")
                results = [programs[fid].collect() for fid in sorted(programs)]
                reply = ("ok", results)
            except Exception as exc:
                reply = ("err", exc)
            programs = None
            halted = {}
            local_pending = []
        elif command == "mutate":
            try:
                for delta in payload:
                    shard.apply_delta(delta)
                    deps.apply_delta(delta)
                reply = ("ok", len(payload))
            except Exception as exc:
                reply = ("err", exc)
        elif command == "install":
            try:
                adds, drops = payload
                for fid in drops:
                    shard.drop(fid)
                for fid, fragment in adds.items():
                    shard.install(fid, fragment)
                reply = ("ok", shard.fids)
            except Exception as exc:
                reply = ("err", exc)
        elif command == "rebalance":
            try:
                shard, deps = payload
                programs = None
                halted = {}
                local_pending = []
                reply = ("ok", shard.fids)
            except Exception as exc:
                reply = ("err", exc)
        elif command == "stats":
            reply = (
                "ok",
                {
                    "fids": shard.fids,
                    "n_fragments": len(shard),
                    "resident_size": shard.resident_size,
                    "peak_rss_kb": _peak_rss_kb(),
                },
            )
        elif command == "stop":
            transport.close()
            return
        else:
            reply = ("err", ProtocolError(f"unknown shard command {command!r}"))
        try:
            transport.send(reply)
        except Exception as exc:  # pragma: no cover - unpicklable payload
            transport.send(("err", ProtocolError(f"shard reply failed to pickle: {exc}")))


def _check_transport(transport: str) -> None:
    if transport not in TRANSPORTS:
        raise ReproError(
            f"unknown transport {transport!r} (known: {', '.join(TRANSPORTS)})"
        )


def _spawn_over_transport(
    target,
    inits: List[tuple],
    transport: str,
    ctx=None,
    handshake_timeout: float = 30.0,
) -> List[Tuple[mp.Process, Transport]]:
    """Spawn one ``target`` worker per init payload; returns their links,
    in init order.

    Pipe workers receive their init through spawn args; TCP workers dial a
    short-lived listener (token-authenticated, so slots cannot be confused
    or hijacked) and receive ``("init", init)`` over the socket.  On any
    spawn/handshake failure every already-started worker is terminated
    (and its link closed) before the error propagates -- no orphan
    processes blocked on ``recv()`` forever.
    """
    ctx = ctx or mp.get_context()
    pairs: List[Tuple[mp.Process, Transport]] = []
    procs: List[mp.Process] = []
    links: Dict[int, Transport] = {}
    try:
        if transport == "pipe":
            for init in inits:
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=target, args=(("pipe", child_conn), init), daemon=True
                )
                proc.start()
                procs.append(proc)
                link = PipeTransport(parent_conn)
                links[len(links)] = link
                # Close the parent's copy of the child end: if the worker
                # dies, the pipe hits EOF and recv raises instead of
                # blocking forever.
                child_conn.close()
                pairs.append((proc, link))
            return pairs

        with SocketListener() as listener:
            host, port = listener.address
            tokens: List[Tuple[bytes, int]] = []
            for i, _ in enumerate(inits):
                token = SocketListener.fresh_token()
                proc = ctx.Process(
                    target=target, args=(("tcp", (host, port, token)), None), daemon=True
                )
                proc.start()
                procs.append(proc)
                tokens.append((token, i))
            links = listener.accept_workers(tokens, timeout=handshake_timeout)
        for i, init in enumerate(inits):
            links[i].send(("init", init))
            pairs.append((procs[i], links[i]))
        return pairs
    except BaseException:
        # Any spawn/handshake/init failure (a failed Pipe()/fork mid-batch,
        # accept timeout, a dead dial, an init payload that will not
        # frame...) tears down everything already started, then re-raises.
        for link in links.values():
            try:
                link.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        raise


def spawn_resident_workers(
    fragmentation: Fragmentation,
    deps: DependencyGraphs,
    session_kwargs: dict,
    n_workers: int,
    transport: str = "pipe",
    mp_context: Optional[str] = None,
) -> List[Tuple[mp.Process, Transport]]:
    """Spawn ``n_workers`` replica-session workers over the chosen transport.

    Each worker builds one :class:`SimulationSession` from the shipped
    fragmentation and pre-built dependency graphs (shipped once per worker
    lifetime, whichever the channel).  ``mp_context`` picks the
    multiprocessing start method (``"spawn"`` gives honest per-worker RSS
    accounting; the platform default otherwise).  Returns
    ``[(process, link), ...]``; the caller owns shutdown (send
    ``("stop", None)``, join, close).
    """
    _check_transport(transport)
    ctx = mp.get_context(mp_context) if mp_context else None
    init = (fragmentation, deps, session_kwargs)
    return _spawn_over_transport(
        _resident_session_worker, [init] * n_workers, transport, ctx=ctx
    )


def spawn_shard_workers(
    fragmentation: Fragmentation,
    deps: DependencyGraphs,
    shard_fids: List[Tuple[int, ...]],
    transport: str = "pipe",
    mp_context: Optional[str] = None,
) -> List[Tuple[mp.Process, Transport]]:
    """Spawn one shard worker per entry of ``shard_fids``.

    Worker ``i`` receives ``fragmentation.extract_shard(shard_fids[i])``
    plus the pre-built dependency graphs -- never the base graph, so
    per-worker memory scales with its owned fragments.  Returns
    ``[(process, link), ...]`` in ``shard_fids`` order; the caller owns
    shutdown.
    """
    _check_transport(transport)
    ctx = mp.get_context(mp_context) if mp_context else None
    inits = [
        (fragmentation.extract_shard(fids), deps) for fids in shard_fids
    ]
    return _spawn_over_transport(_shard_worker, inits, transport, ctx=ctx)


def respawn_worker(
    target,
    init: tuple,
    transport: str,
    policy,
    probe: Optional[tuple] = ("stats", None),
    mp_context: Optional[str] = None,
    handshake_timeout: float = 30.0,
) -> Tuple[mp.Process, Transport]:
    """Spawn one worker with bounded retry + backoff (a ``RetryPolicy``).

    The reconnect semantics are transport-independent: each attempt is a
    full fresh spawn -- the TCP path mints a *new* token per attempt (the
    respawned worker re-authenticates; the dead worker's token is gone with
    its listener), the pipe path a new pipe pair -- followed by an optional
    ``probe`` round-trip that proves the worker is actually serving (a
    dead-on-arrival pipe worker only surfaces at first ``recv``).  On
    failure the partial spawn is torn down, the policy's backoff is slept,
    and the next attempt starts clean; exhaustion raises
    :class:`~repro.errors.ProtocolError` chaining the last cause.
    """
    _check_transport(transport)
    ctx = mp.get_context(mp_context) if mp_context else None
    last: Optional[BaseException] = None
    for delay in policy.delays():
        proc = link = None
        try:
            [(proc, link)] = _spawn_over_transport(
                target, [init], transport, ctx=ctx, handshake_timeout=handshake_timeout
            )
            if probe is not None:
                link.send(probe)
                status, value = link.recv()
                if status != "ok":
                    raise ProtocolError(f"respawn probe failed: {value!r}")
            return proc, link
        except (EOFError, OSError, TransportError, ProtocolError) as exc:
            last = exc
            if link is not None:
                try:
                    link.close()
                except OSError:  # pragma: no cover - best-effort teardown
                    pass
            if proc is not None and proc.is_alive():
                proc.terminate()
            time.sleep(delay)
    raise ProtocolError(
        f"worker respawn failed after {policy.attempts} attempt(s): {last!r}"
    ) from last


def run_dgpm_multiprocess(
    query: Pattern,
    fragmentation: Fragmentation,
    config: Optional[DgpmConfig] = None,
    max_rounds: int = 100_000,
    deps: Optional[DependencyGraphs] = None,
    transport: str = "pipe",
) -> RunResult:
    """Evaluate dGPM with each site in its own OS process.

    Returns the same :class:`RunResult` shape as the simulator; PT here is
    wall-clock (processes genuinely run in parallel), DS is metered from the
    relayed messages with the same cost model.

    ``deps`` may be a session's cached :class:`DependencyGraphs`; it is built
    once here otherwise and shipped to every worker, so workers never re-derive
    the per-graph structures (``SimulationSession.run(..., algorithm="dgpm-mp")``
    reuses the resident copy).  ``transport`` picks the parent<->site channel:
    ``"pipe"`` (same host) or ``"tcp"`` (workers dial back over a socket and
    are initialized over the wire; answers and message accounting are
    identical by construction -- the relay only swaps channels).
    """
    _check_transport(transport)
    config = config or DgpmConfig()
    cost = config.cost
    start = time.perf_counter()
    network = Network(cost)
    if deps is None:
        deps = DependencyGraphs(fragmentation)

    fids = [frag.fid for frag in fragmentation]
    pairs = _spawn_over_transport(
        _site_worker,
        [(fid, fragmentation, query, config, deps) for fid in fids],
        transport,
    )
    links: Dict[int, Transport] = {
        fid: link for fid, (_, link) in zip(fids, pairs)
    }
    workers = [proc for proc, _ in pairs]

    def relay_recv(fid: int):
        try:
            return links[fid].recv()
        except EOFError as exc:
            raise ProtocolError(
                f"site worker for fragment {fid} died mid-run"
            ) from exc

    try:
        pending: List[Message] = []
        for fid in links:
            kind, messages = relay_recv(fid)
            pending.extend(messages)
        rounds = 1
        while True:
            deliverable = [m for m in pending if m.dst != COORDINATOR]
            for message in pending:  # meter everything, incl. control flags
                network.send(message)
            network.deliver()
            if not deliverable:
                break
            if rounds >= max_rounds:
                raise ProtocolError(f"no quiescence after {max_rounds} rounds")
            inboxes: Dict[int, List[Message]] = {}
            for message in deliverable:
                inboxes.setdefault(message.dst, []).append(message)
            pending = []
            for fid, inbox in inboxes.items():
                links[fid].send(("tick", (rounds, inbox)))
            for fid in inboxes:
                kind, messages = relay_recv(fid)
                pending.extend(messages)
            rounds += 1

        results: List[Message] = []
        for fid, link in links.items():
            link.send(("collect", None))
            kind, message = relay_recv(fid)
            network.send(message)
            results.append(message)
        network.deliver()
        relation = assemble_result(query, results)
    finally:
        for fid, link in links.items():
            try:
                link.send(("stop", None))
            except (BrokenPipeError, OSError, TransportError):
                pass
        for proc in workers:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
        for link in links.values():
            link.close()

    wall = time.perf_counter() - start
    metrics = RunMetrics(
        algorithm="dGPM-mp",
        pt_seconds=wall,
        wall_seconds=wall,
        ds_bytes=network.data_bytes,
        n_messages=network.data_message_count,
        n_rounds=rounds,
        ds_breakdown=network.breakdown(),
    )
    return RunResult(relation=relation, metrics=metrics)
