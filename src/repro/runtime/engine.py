"""The synchronous-round execution engine.

Sites run in lockstep supersteps (the deterministic simulation of the
paper's asynchronous message passing; dGPMd and dMes are genuinely
superstep-based, and for dGPM the schedule is one admissible asynchronous
interleaving -- the fixpoint it converges to is schedule-independent, which
tests verify against the centralized oracle).

Per round, every site receives its inbox, computes, and emits messages; the
engine meters the slowest site's compute plus the round's link time as the
round's contribution to PT.  The run ends when every site has voted to halt
and no messages are in flight.

A site that receives an empty inbox and has nothing to do reports zero
compute, so idle sites never inflate PT -- this is what makes "more
fragments => lower PT" measurable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Protocol

from repro.errors import ProtocolError
from repro.runtime.costmodel import CostModel
from repro.runtime.messages import COORDINATOR, Message
from repro.runtime.metrics import RunMetrics
from repro.runtime.network import Network


@dataclass
class TickResult:
    """What a site produced during one round."""

    messages: List[Message] = field(default_factory=list)
    #: True when the site has no local work left (it can still be woken
    #: by a later message).
    halted: bool = True
    #: local variables this tick falsified (the site's share of |AFF|);
    #: programs that do not track it leave the default 0
    n_falsified: int = 0


class SiteProgram(Protocol):
    """The per-site half of a distributed algorithm."""

    def on_start(self) -> TickResult:
        """First tick, before any message is delivered."""
        ...

    def on_tick(self, round_no: int, inbox: List[Message]) -> TickResult:
        """One superstep: process ``inbox``, return outgoing messages."""
        ...

    def collect(self) -> Message:
        """Final local result, addressed to the coordinator."""
        ...


class SyncEngine:
    """Drives a set of :class:`SiteProgram` instances to quiescence."""

    def __init__(
        self,
        programs: Dict[int, SiteProgram],
        network: Network,
        cost: CostModel,
        coordinator_inbox_handler: Optional[Callable[[List[Message]], Iterable[Message]]] = None,
        max_rounds: int = 1_000_000,
    ) -> None:
        self.programs = programs
        self.network = network
        self.cost = cost
        self.coordinator_inbox_handler = coordinator_inbox_handler
        self.max_rounds = max_rounds
        self.per_round_compute: List[float] = []
        self.coordinator_compute: float = 0.0
        self.n_rounds = 0

    # ------------------------------------------------------------------
    def _timed(self, fn: Callable[[], TickResult]) -> tuple:
        start = time.perf_counter()
        result = fn()
        return result, time.perf_counter() - start

    def run_fixpoint(self) -> None:
        """Run on_start once, then tick until quiescence."""
        halted: Dict[int, bool] = {}
        round_compute: List[float] = []
        for fid, program in self.programs.items():
            result, elapsed = self._timed(program.on_start)
            round_compute.append(elapsed)
            self.network.send_all(result.messages)
            halted[fid] = result.halted
        self.per_round_compute.append(max(round_compute) if round_compute else 0.0)
        self.n_rounds = 1

        while self.network.has_pending or not all(halted.values()):
            if self.n_rounds >= self.max_rounds:
                raise ProtocolError(f"no quiescence after {self.max_rounds} rounds")
            inboxes = self.network.deliver()
            coordinator_msgs = inboxes.pop(COORDINATOR, [])
            if coordinator_msgs and self.coordinator_inbox_handler is not None:
                start = time.perf_counter()
                replies = list(self.coordinator_inbox_handler(coordinator_msgs))
                self.coordinator_compute += time.perf_counter() - start
                self.network.send_all(replies)
            round_compute = []
            for fid, program in self.programs.items():
                inbox = inboxes.get(fid, [])
                if not inbox and halted[fid]:
                    continue
                result, elapsed = self._timed(
                    lambda p=program, i=inbox: p.on_tick(self.n_rounds, i)
                )
                round_compute.append(elapsed)
                self.network.send_all(result.messages)
                halted[fid] = result.halted
            self.per_round_compute.append(max(round_compute) if round_compute else 0.0)
            self.n_rounds += 1

    def collect_results(self) -> List[Message]:
        """Gather every site's final local answer (metered as RESULT messages)."""
        out: List[Message] = []
        for program in self.programs.values():
            message = program.collect()
            if message.dst != COORDINATOR:
                raise ProtocolError("collect() must address the coordinator")
            self.network.send(message)
            out.append(message)
        return out

    # ------------------------------------------------------------------
    def simulated_pt(self, extra_compute: float = 0.0) -> float:
        """The makespan PT: per-round slowest compute + modeled link time.

        ``extra_compute`` adds coordinator-side work (assembly, central
        evaluation for the ship-to-one-site baselines).
        """
        compute = sum(self.per_round_compute) + self.coordinator_compute + extra_compute
        link = sum(
            self.cost.latency_s + self.cost.transfer_seconds(volume)
            for volume in self.network.round_bytes
        )
        return compute + link

    def metrics(self, algorithm: str, wall_seconds: float, extra_compute: float = 0.0, **extras) -> RunMetrics:
        """Package the engine's accounting into :class:`RunMetrics`."""
        return RunMetrics(
            algorithm=algorithm,
            pt_seconds=self.simulated_pt(extra_compute),
            wall_seconds=wall_seconds,
            ds_bytes=self.network.data_bytes,
            n_messages=self.network.data_message_count,
            n_rounds=self.n_rounds,
            ds_breakdown=self.network.breakdown(),
            per_round_compute=list(self.per_round_compute),
            extras=dict(extras),
        )
