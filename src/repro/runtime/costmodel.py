"""The wire-format and link cost model used to meter PT and DS.

All sizes are declared here so every algorithm is metered identically; the
defaults approximate a compact binary encoding on a commodity cluster
(1 Gbit/s links, 1 ms one-way latency).  Tests never depend on the absolute
values -- the paper's claims are about *ratios and shapes*, which are
invariant under any fixed positive choice.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Byte sizes of wire objects and link parameters."""

    #: bytes per data-node identifier on the wire
    node_id_bytes: int = 8
    #: bytes per node label
    label_bytes: int = 4
    #: bytes per Boolean variable update ``X(u, v) := false``
    #: (node id + query-node index + flag)
    var_entry_bytes: int = 12
    #: bytes per leaf of a shipped Boolean equation (push / dGPMt)
    equation_term_bytes: int = 12
    #: fixed framing overhead per message
    message_header_bytes: int = 24
    #: bytes of a control flag (changed / vote-to-halt)
    control_flag_bytes: int = 16
    #: bytes per query node / per query edge when broadcasting ``Q``
    query_node_bytes: int = 16
    query_edge_bytes: int = 16

    #: link bandwidth in bytes/second (default 1 Gbit/s)
    bandwidth_bytes_per_s: float = 125_000_000.0
    #: one-way message latency in seconds
    latency_s: float = 0.001

    # ------------------------------------------------------------------
    def query_bytes(self, n_query_nodes: int, n_query_edges: int) -> int:
        """Wire size of broadcasting a pattern query to one site."""
        return (
            self.message_header_bytes
            + n_query_nodes * self.query_node_bytes
            + n_query_edges * self.query_edge_bytes
        )

    def var_batch_bytes(self, n_entries: int) -> int:
        """Wire size of a batch of Boolean-variable updates."""
        return self.message_header_bytes + n_entries * self.var_entry_bytes

    def equation_bytes(self, n_terms: int) -> int:
        """Wire size of a shipped Boolean equation with ``n_terms`` leaves."""
        return n_terms * self.equation_term_bytes

    def subgraph_bytes(self, n_nodes: int, n_edges: int) -> int:
        """Wire size of shipping a (sub)graph: labeled nodes plus edge list."""
        return (
            self.message_header_bytes
            + n_nodes * (self.node_id_bytes + self.label_bytes)
            + n_edges * 2 * self.node_id_bytes
        )

    def transfer_seconds(self, n_bytes: int) -> float:
        """Modeled time for ``n_bytes`` to cross one link."""
        return n_bytes / self.bandwidth_bytes_per_s


#: Shared default cost model.
DEFAULT_COST = CostModel()
