"""``python -m repro.analysis``: run the checkers, honour the baseline.

Exit codes:

* 0 -- clean: no findings outside the committed baseline;
* 1 -- dirty: at least one fresh (un-baselined) finding, printed one per
  line as ``path:line:col: error[rule] message``;
* 2 -- the analyzer itself could not run (bad root, unparseable source,
  corrupt baseline).

The default root is the package tree (``src/repro`` resolved relative to
this file, so the command works from any CWD); the default baseline is
``.analysis-baseline.json`` in the repository root.  ``--write-baseline``
regenerates the baseline from the current findings -- the ratchet's escape
hatch, to be used only when accepting pre-existing debt.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.baseline import load_baseline, triage, write_baseline
from repro.analysis.checkers import ALL_CHECKERS
from repro.analysis.project import AnalysisError, Project
from repro.analysis.runner import run_analysis

#: src/repro -- two levels up from this file
_PACKAGE_ROOT = Path(__file__).resolve().parent.parent
#: repository root (…/src/repro -> …); baseline and CI run from here
_REPO_ROOT = _PACKAGE_ROOT.parent.parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-invariant static analysis for the repro codebase.",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=_PACKAGE_ROOT,
        help="directory tree to analyze (default: the installed repro package)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=_REPO_ROOT / ".analysis-baseline.json",
        help="committed suppression file (default: .analysis-baseline.json)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report every finding as fresh",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line (findings still print)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for checker in ALL_CHECKERS:
            print(f"{checker.rule:22s} {checker.description}")
        return 0

    try:
        project = Project.load(args.root)
        findings = run_analysis(project)
        if args.write_baseline:
            count = write_baseline(args.baseline, findings)
            print(f"wrote {count} suppression(s) to {args.baseline}")
            return 0
        suppressions: List[str] = (
            [] if args.no_baseline else load_baseline(args.baseline)
        )
    except AnalysisError as exc:
        print(f"analysis error: {exc}", file=sys.stderr)
        return 2

    result = triage(findings, suppressions)
    for finding in result.fresh:
        print(finding.render())
    for fingerprint in result.stale:
        print(f"stale baseline entry (remove it): {fingerprint}", file=sys.stderr)
    if not args.quiet:
        print(
            f"{len(project)} module(s): {len(result.fresh)} finding(s), "
            f"{len(result.suppressed)} baselined, {len(result.stale)} stale "
            "baseline entr(ies)",
            file=sys.stderr,
        )
    return 1 if result.fresh else 0
