"""Running a checker set over a project and ordering the result."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.analysis.checkers import ALL_CHECKERS
from repro.analysis.checkers.base import Checker
from repro.analysis.findings import Finding
from repro.analysis.project import Project


def run_analysis(
    project: Project, checkers: Optional[Sequence[Checker]] = None
) -> List[Finding]:
    """Every finding from ``checkers`` (default: all), in file/line order."""
    selected: Iterable[Checker] = ALL_CHECKERS if checkers is None else checkers
    findings: List[Finding] = []
    for checker in selected:
        findings.extend(checker.check(project))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.detail))
    return findings
