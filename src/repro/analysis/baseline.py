"""Committed-baseline suppression.

A baseline is a JSON file of finding fingerprints (see
:func:`repro.analysis.findings.fingerprints`) that are *known and accepted*:
they are reported as suppressed, never fail the run.  The mechanism is a
ratchet -- a rule can land before its last pre-existing violation is fixed,
while any *new* violation still fails CI.  Stale entries (fingerprints that
no longer match anything) are reported so the baseline shrinks over time;
``--write-baseline`` regenerates the file from the current findings.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Tuple

from repro.analysis.findings import Finding, fingerprints
from repro.analysis.project import AnalysisError

BASELINE_VERSION = 1


@dataclass(frozen=True)
class Triage:
    """A run's findings split against a baseline."""

    #: findings not covered by the baseline -- these fail the run
    fresh: Tuple[Finding, ...]
    #: findings matched (and silenced) by a baseline entry
    suppressed: Tuple[Finding, ...]
    #: baseline fingerprints that matched nothing (candidates for removal)
    stale: Tuple[str, ...]


def load_baseline(path: Path) -> List[str]:
    """The suppression fingerprints committed at ``path`` ([] if absent)."""
    if not path.exists():
        return []
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise AnalysisError(f"unreadable baseline {path}: {exc}") from exc
    if not isinstance(document, dict) or document.get("version") != BASELINE_VERSION:
        raise AnalysisError(
            f"baseline {path} is not a version-{BASELINE_VERSION} document"
        )
    suppressions = document.get("suppressions", [])
    if not isinstance(suppressions, list) or not all(
        isinstance(s, str) for s in suppressions
    ):
        raise AnalysisError(f"baseline {path}: 'suppressions' must be a string list")
    return suppressions


def write_baseline(path: Path, findings: Iterable[Finding]) -> int:
    """Write a fresh baseline covering ``findings``; returns the entry count."""
    entries = sorted(fp for _, fp in fingerprints(findings))
    document = {
        "version": BASELINE_VERSION,
        "comment": (
            "Accepted pre-existing findings of `python -m repro.analysis`. "
            "Shrink this file, never grow it: fix the violation instead of "
            "re-running with --write-baseline."
        ),
        "suppressions": entries,
    }
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return len(entries)


def triage(findings: Iterable[Finding], suppressions: Iterable[str]) -> Triage:
    """Split findings into fresh/suppressed and spot stale baseline entries."""
    allowed = set(suppressions)
    fresh: List[Finding] = []
    suppressed: List[Finding] = []
    matched: set = set()
    for finding, fp in fingerprints(findings):
        if fp in allowed:
            suppressed.append(finding)
            matched.add(fp)
        else:
            fresh.append(finding)
    stale = tuple(sorted(allowed - matched))
    return Triage(fresh=tuple(fresh), suppressed=tuple(suppressed), stale=stale)
