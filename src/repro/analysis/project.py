"""Loading the analyzed tree: parsed modules plus parent/symbol context.

Checkers never touch the filesystem; they see a :class:`Project` of
:class:`ParsedModule` objects.  Each module carries its AST annotated with

* ``parent`` links (``node._repro_parent``) so checkers can walk *up* from a
  violation site -- needed for "is this write inside ``with self._lock``";
* the enclosing symbol path (``node._repro_symbol``), the dotted class/def
  chain used in finding fingerprints.

Tests build projects from in-memory sources via :meth:`Project.from_sources`
-- the same code path the CLI uses, minus the directory walk.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ReproError


class AnalysisError(ReproError):
    """The analyzer could not run (bad root, unparseable source...)."""


@dataclass
class ParsedModule:
    """One source file: its path relative to the scan root, source, and AST."""

    relpath: str
    source: str
    tree: ast.Module = field(repr=False)

    def __post_init__(self) -> None:
        _annotate(self.tree)

    def walk(self) -> Iterator[ast.AST]:
        return ast.walk(self.tree)


def parent_of(node: ast.AST) -> Optional[ast.AST]:
    """The AST parent of ``node`` (None at the module root)."""
    return getattr(node, "_repro_parent", None)


def symbol_of(node: ast.AST) -> str:
    """Dotted enclosing class/function path of ``node`` ('' at module level)."""
    return getattr(node, "_repro_symbol", "")


def enclosing_class(node: ast.AST) -> Optional[ast.ClassDef]:
    """The nearest ClassDef lexically containing ``node``."""
    cur = parent_of(node)
    while cur is not None:
        if isinstance(cur, ast.ClassDef):
            return cur
        cur = parent_of(cur)
    return None


def enclosing_method(node: ast.AST) -> Optional[ast.FunctionDef]:
    """The class-level method containing ``node``.

    A write inside a closure defined in a method is attributed to the
    *method* (the outermost function directly under the class): that is the
    unit lock-discipline exemptions reason about.
    """
    best: Optional[ast.FunctionDef] = None
    cur: Optional[ast.AST] = node
    while cur is not None:
        up = parent_of(cur)
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)) and isinstance(
            up, ast.ClassDef
        ):
            best = cur  # keep climbing: the outermost such def wins
        cur = up
    return best


def _annotate(tree: ast.Module) -> None:
    """Attach parent links and symbol paths to every node."""

    def visit(node: ast.AST, parent: Optional[ast.AST], symbol: str) -> None:
        node._repro_parent = parent  # type: ignore[attr-defined]
        node._repro_symbol = symbol  # type: ignore[attr-defined]
        child_symbol = symbol
        if isinstance(node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
            child_symbol = f"{symbol}.{node.name}" if symbol else node.name
            node._repro_symbol = child_symbol  # type: ignore[attr-defined]
        for child in ast.iter_child_nodes(node):
            visit(child, node, child_symbol)

    visit(tree, None, "")


class Project:
    """The full analyzed tree, indexed by root-relative path."""

    def __init__(self, root: str, modules: List[ParsedModule]) -> None:
        self.root = root
        self.modules = modules
        self._by_path: Dict[str, ParsedModule] = {m.relpath: m for m in modules}

    def module(self, relpath: str) -> Optional[ParsedModule]:
        """The module at ``relpath`` (e.g. ``net/protocol.py``), if scanned."""
        return self._by_path.get(relpath)

    def __iter__(self) -> Iterator[ParsedModule]:
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)

    @classmethod
    def from_sources(cls, sources: Dict[str, str], root: str = "<memory>") -> "Project":
        """Build a project from ``relpath -> source`` (the test entry point)."""
        modules = [
            ParsedModule(relpath=rel, source=src, tree=_parse(src, rel))
            for rel, src in sorted(sources.items())
        ]
        return cls(root, modules)

    @classmethod
    def load(cls, root: Path) -> "Project":
        """Parse every ``*.py`` under ``root`` (sorted, ``__pycache__`` skipped)."""
        if not root.is_dir():
            raise AnalysisError(f"analysis root {root} is not a directory")
        modules: List[ParsedModule] = []
        for path in sorted(root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            rel = path.relative_to(root).as_posix()
            source = path.read_text(encoding="utf-8")
            modules.append(ParsedModule(relpath=rel, source=source, tree=_parse(source, rel)))
        return cls(str(root), modules)


def _parse(source: str, relpath: str) -> ast.Module:
    try:
        return ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        raise AnalysisError(f"cannot parse {relpath}: {exc}") from exc


def dotted(node: ast.AST) -> Optional[str]:
    """Render a Name/Attribute/Call chain as a dotted string.

    ``self._rw.write_locked()`` -> ``"self._rw.write_locked()"``;
    returns None for expressions outside that grammar (subscripts, calls
    with the callee itself a call, ...).  Call *arguments* are ignored: lock
    guards are matched by shape, not by argument values.
    """
    if isinstance(node, ast.Call):
        inner = dotted(node.func)
        return f"{inner}()" if inner is not None else None
    if isinstance(node, ast.Attribute):
        inner = dotted(node.value)
        return f"{inner}.{node.attr}" if inner is not None else None
    if isinstance(node, ast.Name):
        return node.id
    return None


def base_chain(node: ast.AST) -> Tuple[Optional[str], Optional[str]]:
    """The root object and first attribute of a write target.

    For ``self._entries[k]``, ``self.stats.hits``, ``self._warm.pop`` alike
    this returns ``("self", "_entries"/"stats"/"_warm")``: unwraps
    subscripts and trailing attributes down to the innermost
    ``<name>.<attr>`` pair.  Returns ``(None, None)`` when the target is not
    rooted in a plain name.
    """
    cur = node
    while True:
        if isinstance(cur, ast.Subscript):
            cur = cur.value
        elif isinstance(cur, ast.Attribute):
            if isinstance(cur.value, ast.Name):
                return cur.value.id, cur.attr
            cur = cur.value
        else:
            return None, None
