"""Project-invariant static analysis for the repro codebase.

The correctness results this repository reproduces (FanWWD14, Theorems
4.4/5.2) only hold if every site's partial-evaluation state stays consistent
under concurrent mutation.  PRs 2-6 enforced the resulting invariants by code
review -- mutable relations poisoning cache hits, racy lazy-index builds,
module-level numpy imports breaking the dict-only install, wire-frame kinds
without decode/dispatch arms.  This package machine-checks them instead:

* a small AST framework (:mod:`repro.analysis.project`,
  :mod:`repro.analysis.findings`, :mod:`repro.analysis.runner`) that parses
  the package tree once and runs a set of *checkers* over it;
* the checkers themselves (:mod:`repro.analysis.checkers`), each encoding
  one invariant with a stable rule id;
* a committed-baseline suppression mechanism
  (:mod:`repro.analysis.baseline`) so a rule can land before the last
  violation is fixed, while new violations still fail;
* a CLI -- ``python -m repro.analysis`` -- with clean/dirty exit codes,
  wired into CI.

Run ``python -m repro.analysis --help`` for usage; the rule catalogue is in
the README ("Static analysis").
"""

from __future__ import annotations

from repro.analysis.checkers import ALL_CHECKERS
from repro.analysis.findings import Finding, Severity
from repro.analysis.runner import run_analysis

__all__ = ["ALL_CHECKERS", "Finding", "Severity", "run_analysis"]
