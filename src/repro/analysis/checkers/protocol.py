"""Rule ``protocol-exhaustive``: every frame kind has all four arms.

Adding a :class:`FrameKind` member is a four-site change -- the codec table,
the server dispatch, the client handling -- and nothing ties the sites
together at runtime: a kind missing its server arm only surfaces as a
mid-connection ``ErrorReply`` when a client first sends it.  This checker
derives the kind inventory from the enum itself and demands, for every
member:

* a ``FrameKind.<KIND>: <FrameClass>`` entry in ``FRAME_CLASSES`` (the
  decode table), and
* a ``FrameKind.<KIND>`` reference in the server module (dispatch arm), and
* a ``FrameKind.<KIND>`` reference in the client module (request/reply arm),
  and
* (when the tree has ``net/codec.py``) the frame's class name registered in
  the safe codec's ``FRAME_STRUCTS`` dict -- the protocol-v2 encode split
  means a frame class missing there is unencodable for every v2 peer even
  though the pickle path still carries it at v1.

``OBJ`` is the deliberate exception: it is the worker transport's opaque
pickle frame, never decoded via ``FRAME_CLASSES`` nor served by the TCP
front door (and pickle-exempt at every version, so the codec registry does
not list it) -- it must instead be referenced by the transport module, so a
renamed/retired transport surfaces here too.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.project import ParsedModule, Project, symbol_of

PROTOCOL_MODULE = "net/protocol.py"
SERVER_MODULE = "net/server.py"
CLIENT_MODULE = "net/client.py"
TRANSPORT_MODULE = "runtime/transport.py"
CODEC_MODULE = "net/codec.py"

#: kinds excluded from codec/dispatch arms -> the module that must use them
EXEMPT_KINDS: Dict[str, str] = {"OBJ": TRANSPORT_MODULE}


class ProtocolExhaustivenessChecker:
    rule = "protocol-exhaustive"
    description = (
        "every FrameKind member has a FRAME_CLASSES entry, server and "
        "client arms, and a v2 codec registration (OBJ: used by the worker "
        "transport, pickle-exempt)"
    )

    def __init__(
        self,
        protocol_module: str = PROTOCOL_MODULE,
        server_module: str = SERVER_MODULE,
        client_module: str = CLIENT_MODULE,
        codec_module: str = CODEC_MODULE,
        exempt_kinds: Dict[str, str] = EXEMPT_KINDS,
    ) -> None:
        self.protocol_module = protocol_module
        self.server_module = server_module
        self.client_module = client_module
        self.codec_module = codec_module
        self.exempt_kinds = dict(exempt_kinds)

    def check(self, project: Project) -> Iterable[Finding]:
        protocol = project.module(self.protocol_module)
        if protocol is None:
            return  # nothing to check outside the real tree / a full fixture
        kinds = _enum_members(protocol, "FrameKind")
        if not kinds:
            yield self._finding(
                protocol, protocol.tree, "FrameKind",
                f"no FrameKind enum found in {self.protocol_module}",
            )
            return
        frame_classes = _frame_class_map(protocol)
        server_refs = _kind_references(project.module(self.server_module))
        client_refs = _kind_references(project.module(self.client_module))
        codec = project.module(self.codec_module)
        codec_structs = (
            None if codec is None else _dict_string_keys(codec, "FRAME_STRUCTS")
        )

        for kind, node in kinds:
            if kind in self.exempt_kinds:
                yield from self._check_exempt(project, protocol, kind, node)
                continue
            if kind not in frame_classes:
                yield self._finding(
                    protocol, node, kind,
                    f"FrameKind.{kind} has no FRAME_CLASSES entry: the codec "
                    "cannot decode it",
                )
            if kind not in server_refs:
                yield self._finding(
                    protocol, node, kind,
                    f"FrameKind.{kind} is never referenced in "
                    f"{self.server_module}: the server has no dispatch arm "
                    "for it",
                )
            if kind not in client_refs:
                yield self._finding(
                    protocol, node, kind,
                    f"FrameKind.{kind} is never referenced in "
                    f"{self.client_module}: no client sends or handles it",
                )
            frame_cls = frame_classes.get(kind)
            if (
                codec_structs is not None
                and frame_cls is not None
                and frame_cls not in codec_structs
            ):
                yield self._finding(
                    protocol, node, kind,
                    f"frame class {frame_cls} (FrameKind.{kind}) is not "
                    f"registered in {self.codec_module}'s FRAME_STRUCTS: "
                    "v2 peers cannot encode it",
                )

    def _check_exempt(
        self, project: Project, protocol: ParsedModule, kind: str, node: ast.AST
    ) -> Iterable[Finding]:
        home = self.exempt_kinds[kind]
        refs = _kind_references(project.module(home))
        if kind not in refs:
            yield self._finding(
                protocol, node, kind,
                f"FrameKind.{kind} is exempt from codec/dispatch arms "
                f"because {home} owns it, but {home} never references it",
            )

    def _finding(
        self, module: ParsedModule, node: ast.AST, kind: str, message: str
    ) -> Finding:
        return Finding(
            rule=self.rule,
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            symbol=symbol_of(node),
            detail=kind,
        )


MP_MODULE = "runtime/mp.py"
COORDINATOR_MODULE = "session/concurrent.py"


class ShardCommandChecker:
    """The sharded arm: every ``SHARD_COMMANDS`` entry is wired end to end.

    The shard worker protocol is stringly typed on purpose (commands ride
    the pickle transport), so nothing at runtime ties the three sites
    together: the ``SHARD_COMMANDS`` inventory in ``runtime/mp.py``, the
    ``_shard_worker`` dispatch arm matching each command, and the
    coordinator in ``session/concurrent.py`` that sends it.  A command
    present in the inventory but missing either arm -- or dispatched/sent
    but absent from the inventory -- is a finding.
    """

    rule = "protocol-exhaustive"
    description = (
        "every SHARD_COMMANDS entry has a _shard_worker dispatch arm in "
        "runtime/mp.py and a sender in session/concurrent.py"
    )

    def __init__(
        self,
        mp_module: str = MP_MODULE,
        coordinator_module: str = COORDINATOR_MODULE,
    ) -> None:
        self.mp_module = mp_module
        self.coordinator_module = coordinator_module

    def check(self, project: Project) -> Iterable[Finding]:
        mp = project.module(self.mp_module)
        if mp is None:
            return  # outside the real tree / a partial fixture
        inventory = _shard_command_inventory(mp)
        if inventory is None:
            yield Finding(
                rule=self.rule,
                path=mp.relpath,
                line=1,
                col=0,
                message=(
                    f"no SHARD_COMMANDS inventory found in {self.mp_module}; "
                    "the shard worker protocol is unchecked"
                ),
                symbol=None,
                detail="SHARD_COMMANDS",
            )
            return
        commands, node = inventory
        dispatch = _string_literals(mp, skip=node)
        senders = _string_literals(project.module(self.coordinator_module))
        for command in commands:
            if command not in dispatch:
                yield self._finding(
                    mp, node, command,
                    f"shard command {command!r} has no dispatch arm in "
                    f"{self.mp_module}: the worker cannot serve it",
                )
            if command not in senders:
                yield self._finding(
                    mp, node, command,
                    f"shard command {command!r} is never sent from "
                    f"{self.coordinator_module}: dead protocol surface",
                )

    def _finding(
        self, module: ParsedModule, node: ast.AST, command: str, message: str
    ) -> Finding:
        return Finding(
            rule=self.rule,
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            symbol=symbol_of(node),
            detail=command,
        )


def _shard_command_inventory(
    module: ParsedModule,
) -> Tuple[Set[str], ast.AST] | None:
    """The ``SHARD_COMMANDS`` tuple's string members and its assignment node."""
    for node in module.walk():
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        else:
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "SHARD_COMMANDS" for t in targets
        ):
            continue
        value = node.value
        if isinstance(value, (ast.Tuple, ast.List)):
            members = {
                elt.value
                for elt in value.elts
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            }
            return members, node
    return None


def _string_literals(
    module: ParsedModule | None, skip: ast.AST | None = None
) -> Set[str]:
    """Every string constant in ``module``, excluding the ``skip`` subtree."""
    if module is None:
        return set()
    skipped: Set[int] = set()
    if skip is not None:
        skipped = {id(sub) for sub in ast.walk(skip)}
    out: Set[str] = set()
    for node in module.walk():
        if id(node) in skipped:
            continue
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            out.add(node.value)
    return out


def _enum_members(
    module: ParsedModule, enum_name: str
) -> List[Tuple[str, ast.AST]]:
    """``(member_name, assignment_node)`` for each member of the enum class."""
    for node in module.walk():
        if isinstance(node, ast.ClassDef) and node.name == enum_name:
            members: List[Tuple[str, ast.AST]] = []
            for stmt in node.body:
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name) and not target.id.startswith("_"):
                            members.append((target.id, stmt))
            return members
    return []


def _frame_class_map(module: ParsedModule) -> Dict[str, str]:
    """``FrameKind member -> frame class name`` from the ``FRAME_CLASSES``
    dict literal (entries whose value is not a plain name map to ``""``)."""
    out: Dict[str, str] = {}
    for node in module.walk():
        if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Dict)):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "FRAME_CLASSES" for t in node.targets
        ):
            continue
        for key, value in zip(node.value.keys, node.value.values):
            if (
                isinstance(key, ast.Attribute)
                and isinstance(key.value, ast.Name)
                and key.value.id == "FrameKind"
            ):
                out[key.attr] = value.id if isinstance(value, ast.Name) else ""
    return out


def _dict_string_keys(module: ParsedModule, name: str) -> Set[str]:
    """The string-literal keys of the dict literal assigned to ``name``."""
    keys: Set[str] = set()
    for node in module.walk():
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        else:
            continue
        if not any(isinstance(t, ast.Name) and t.id == name for t in targets):
            continue
        value = node.value
        if isinstance(value, ast.Dict):
            keys.update(
                k.value
                for k in value.keys
                if isinstance(k, ast.Constant) and isinstance(k.value, str)
            )
    return keys


def _kind_references(module: ParsedModule | None) -> Set[str]:
    """Every ``FrameKind.<X>`` attribute read in ``module`` ({} if absent)."""
    if module is None:
        return set()
    refs: Set[str] = set()
    for node in module.walk():
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "FrameKind"
        ):
            refs.add(node.attr)
    return refs
