"""Checker protocol plus the AST utilities the concrete checkers share."""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional, Protocol, Sequence, Tuple

from repro.analysis.findings import Finding
from repro.analysis.project import ParsedModule, Project, dotted, parent_of


class Checker(Protocol):
    """One invariant: a stable rule id plus a project-wide check."""

    #: stable rule id (what the baseline and README reference)
    rule: str
    #: one-line description for ``--list-rules``
    description: str

    def check(self, project: Project) -> Iterable[Finding]:
        """Yield every violation in ``project``."""
        ...


#: method names that mutate their receiver in place -- calling one of these
#: on a guarded attribute counts as a write to it
MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "pop", "popitem", "clear", "remove",
        "discard", "add", "update", "setdefault", "move_to_end", "sort",
        "reverse", "appendleft", "popleft", "__setitem__",
    }
)


def iter_class_defs(module: ParsedModule) -> Iterator[ast.ClassDef]:
    for node in module.walk():
        if isinstance(node, ast.ClassDef):
            yield node


def guarded_by(node: ast.AST, lock_exprs: Sequence[str]) -> bool:
    """True iff ``node`` sits lexically inside ``with <lock>`` for one of
    ``lock_exprs`` (dotted forms like ``"self._lock"`` or
    ``"self._rw.write_locked()"``).

    The climb stops at the innermost enclosing function: a with-block
    *around* a ``def`` does not guard code inside it (the closure runs
    later, after the lock is released), so only withs between the write and
    its own function's body count.
    """
    wanted = set(lock_exprs)
    cur: Optional[ast.AST] = parent_of(node)
    while cur is not None:
        if isinstance(cur, ast.With) and _with_matches(cur, wanted):
            return True
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return False
        cur = parent_of(cur)
    return False


def _with_matches(node: ast.With, wanted: set) -> bool:
    for item in node.items:
        rendered = dotted(item.context_expr)
        if rendered is not None and rendered in wanted:
            return True
    return False


def attribute_writes(
    func: ast.AST,
) -> Iterator[Tuple[ast.AST, str, str]]:
    """Yield ``(node, root, attr)`` for every attribute write inside ``func``.

    Covers plain/augmented/annotated assignment and deletion through the
    attribute (``self.x = ...``, ``self.x[k] = ...``, ``self.x.y += 1``,
    ``del self.x``), and in-place mutator calls (``self.x.pop(...)``).
    ``root`` is the receiver name (usually ``self``), ``attr`` the first
    attribute on it.
    """
    from repro.analysis.project import base_chain

    for node in ast.walk(func):
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            if getattr(node, "value", None) is not None or isinstance(
                node, ast.AugAssign
            ):
                targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        elif isinstance(node, ast.Call):
            f = node.func
            if (
                isinstance(f, ast.Attribute)
                and f.attr in MUTATOR_METHODS
                and isinstance(f.value, (ast.Attribute, ast.Subscript))
            ):
                root, attr = base_chain(f.value)
                if root is not None and attr is not None:
                    yield node, root, attr
            continue
        for target in targets:
            # Tuple targets: a, self.x = ... -- flatten.
            stack = [target]
            while stack:
                t = stack.pop()
                if isinstance(t, (ast.Tuple, ast.List)):
                    stack.extend(t.elts)
                    continue
                if isinstance(t, (ast.Attribute, ast.Subscript)):
                    root, attr = base_chain(t)
                    if root is not None and attr is not None:
                        yield node, root, attr


def setattr_calls(func: ast.AST, receiver: str = "self") -> Iterator[ast.Call]:
    """``setattr(<receiver>, ...)`` calls inside ``func`` (dynamic writes)."""
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "setattr"
            and node.args
            and isinstance(node.args[0], ast.Name)
            and node.args[0].id == receiver
        ):
            yield node


def decorator_dataclass_frozen(cls: ast.ClassDef) -> Optional[bool]:
    """Is ``cls`` a dataclass, and if so is it frozen?

    Returns None when the class carries no dataclass decorator, else the
    value of its ``frozen=`` keyword (False when omitted).
    """
    for deco in cls.decorator_list:
        name: Optional[str] = None
        kwargs: List[ast.keyword] = []
        if isinstance(deco, ast.Call):
            name = dotted(deco.func)
            kwargs = deco.keywords
        else:
            name = dotted(deco)
        if name in ("dataclass", "dataclasses.dataclass"):
            for kw in kwargs:
                if kw.arg == "frozen":
                    return isinstance(kw.value, ast.Constant) and kw.value.value is True
            return False
    return None
