"""Rule ``determinism``: no ambient randomness or wall-clock in the engine.

The replay oracles (per-stamp snapshot checks, cross-engine parity) and the
canonical cache key all assume that evaluating a query is a pure function of
(query, fragmentation).  Ambient nondeterminism breaks that silently:

* the module-global ``random`` RNG (``random.choice``, ``random.shuffle``,
  ``random.seed``, a bare ``random.Random()``) is shared process-wide state
  -- any library call reseeds every consumer.  Banned everywhere in the
  package: code that needs randomness takes a seeded ``random.Random``
  (conftest's ``rng`` fixture, the generators' ``seed=`` parameters).
* ``time.time()`` is wall-clock and feeds *data*, not metrics, when it leaks
  into the engine.  Banned in the engine directories
  (:data:`NO_WALLCLOCK_DIRS`); ``time.perf_counter``/``monotonic`` stay
  allowed (they only ever feed metrics/timeouts), and bench/ may timestamp
  its reports.
* partition/ is held to the stricter bar (:data:`STRICT_NO_CLOCK_DIRS`):
  *no* clock read at all, not even ``perf_counter``.  A partitioner is a
  pure function of (graph, seed, weights) -- the online rebalancer replays
  its output across processes and sessions, and partition/ has no metrics
  to time, so any ``time.*`` call there is a determinism bug waiting to
  happen.
"""

from __future__ import annotations

import ast
from typing import Iterable, Tuple

from repro.analysis.findings import Finding
from repro.analysis.project import ParsedModule, Project, symbol_of

#: directories (relpath prefixes) where wall-clock reads are banned
NO_WALLCLOCK_DIRS: Tuple[str, ...] = ("core/", "simulation/", "partition/")

#: directories where *every* clock read is banned (perf_counter included):
#: pure-function-of-inputs code with nothing to time
STRICT_NO_CLOCK_DIRS: Tuple[str, ...] = ("partition/",)


class DeterminismChecker:
    rule = "determinism"
    description = (
        "no module-global random.* use anywhere; no time.time() in "
        "core/, simulation/, partition/; no clock read of any kind in "
        "partition/"
    )

    def __init__(
        self,
        no_wallclock_dirs: Tuple[str, ...] = NO_WALLCLOCK_DIRS,
        strict_clock_dirs: Tuple[str, ...] = STRICT_NO_CLOCK_DIRS,
    ) -> None:
        self.no_wallclock_dirs = no_wallclock_dirs
        self.strict_clock_dirs = strict_clock_dirs

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project:
            wallclock_banned = module.relpath.startswith(self.no_wallclock_dirs)
            clock_banned = module.relpath.startswith(self.strict_clock_dirs)
            for node in module.walk():
                yield from self._check_random(module, node)
                if clock_banned:
                    yield from self._check_clock_strict(module, node)
                elif wallclock_banned:
                    yield from self._check_wallclock(module, node)

    # ------------------------------------------------------------------
    def _check_random(self, module: ParsedModule, node: ast.AST) -> Iterable[Finding]:
        # from random import X -- pulls global-RNG functions into scope
        # under untraceable local names; only the Random class is safe.
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            bad = [a.name for a in node.names if a.name not in ("Random", "SystemRandom")]
            if bad:
                yield self._finding(
                    module, node,
                    f"`from random import {', '.join(bad)}` uses the shared "
                    "module-global RNG; take a seeded random.Random instead",
                    detail="from-random",
                )
            return
        # random.<attr> -- any use of the module-global RNG.
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "random"
            and node.attr not in ("Random", "SystemRandom")
        ):
            yield self._finding(
                module, node,
                f"`random.{node.attr}` uses the shared module-global RNG; "
                "thread a seeded random.Random through instead",
                detail=f"random.{node.attr}",
            )
            return
        # random.Random() with no seed -- seeded from the OS, irreproducible.
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "random"
            and node.func.attr == "Random"
            and not node.args
            and not node.keywords
        ):
            yield self._finding(
                module, node,
                "`random.Random()` without a seed is irreproducible; pass "
                "an explicit seed",
                detail="Random()",
            )

    def _check_wallclock(
        self, module: ParsedModule, node: ast.AST
    ) -> Iterable[Finding]:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "time"
            and node.func.attr == "time"
        ):
            yield self._finding(
                module, node,
                "time.time() is wall-clock; engine code may only use "
                "perf_counter/monotonic, and only for metrics",
                detail="time.time",
            )
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            bad = [a.name for a in node.names if a.name == "time"]
            if bad:
                yield self._finding(
                    module, node,
                    "`from time import time` hides a wall-clock read; "
                    "engine code may not read wall-clock",
                    detail="from-time",
                )

    def _check_clock_strict(
        self, module: ParsedModule, node: ast.AST
    ) -> Iterable[Finding]:
        """The partition/ bar: no ``time.<anything>()`` call, no time import
        of a callable -- partitioners are pure functions with nothing to
        time, so every clock read is nondeterminism smuggled in."""
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "time"
        ):
            yield self._finding(
                module, node,
                f"time.{node.func.attr}() is a clock read; partition/ code "
                "is a pure function of its inputs and may not read any "
                "clock (not even perf_counter)",
                detail=f"time.{node.func.attr}",
            )
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            names = [a.name for a in node.names]
            yield self._finding(
                module, node,
                f"`from time import {', '.join(names)}` imports a clock "
                "into partition/; no clock read of any kind is allowed here",
                detail="from-time-strict",
            )

    def _finding(
        self, module: ParsedModule, node: ast.AST, message: str, detail: str
    ) -> Finding:
        return Finding(
            rule=self.rule,
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            symbol=symbol_of(node),
            detail=detail,
        )
