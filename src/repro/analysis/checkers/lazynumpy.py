"""Rule ``lazy-numpy``: the dict engine stays importable without numpy.

numpy is the array engine's dependency, not the library's: every other
module must import cleanly on a numpy-less install (the paper's dict-based
reference engine is stdlib-only, and the tests exercise that mode).  A
module-level ``import numpy`` anywhere else breaks it transitively, so only
the two array-engine modules may even *mention* the import at module scope
-- and in practice they, too, go through
:func:`repro.core.arraycompile.require_numpy` inside functions.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Tuple

from repro.analysis.findings import Finding
from repro.analysis.project import Project, parent_of, symbol_of

#: modules allowed to import numpy at module level (the array engine)
ALLOWED_MODULES: Tuple[str, ...] = ("core/arraycompile.py", "core/arraystate.py")


def _module_level(node: ast.AST) -> bool:
    """True when ``node`` executes at import time (not inside any def).

    Imports under module-level ``if``/``try`` still run at import time, so
    only function boundaries stop the climb.
    """
    cur: Optional[ast.AST] = parent_of(node)
    while cur is not None:
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return False
        cur = parent_of(cur)
    return True


class LazyNumpyChecker:
    rule = "lazy-numpy"
    description = (
        "no module-level numpy import outside the array-engine modules"
    )

    def __init__(self, allowed: Tuple[str, ...] = ALLOWED_MODULES) -> None:
        self.allowed = allowed

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project:
            if module.relpath in self.allowed:
                continue
            for node in module.walk():
                name = _numpy_import(node)
                if name is not None and _module_level(node):
                    yield Finding(
                        rule=self.rule,
                        path=module.relpath,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"module-level `{name}` makes the dict-only "
                            "install unimportable; import numpy lazily via "
                            "repro.core.arraycompile.require_numpy()"
                        ),
                        symbol=symbol_of(node),
                        detail="numpy",
                    )


def _numpy_import(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Import):
        for alias in node.names:
            if alias.name == "numpy" or alias.name.startswith("numpy."):
                return f"import {alias.name}"
    if isinstance(node, ast.ImportFrom) and node.module is not None:
        if node.module == "numpy" or node.module.startswith("numpy."):
            return f"from {node.module} import ..."
    return None
