"""The checker catalogue: one module per enforced invariant.

``ALL_CHECKERS`` is the default set the CLI runs; each checker is stateless
beyond its registry arguments, so the shared instances below are safe to
reuse across runs.  Tests instantiate checkers directly with fixture
registries instead of going through this tuple.
"""

from __future__ import annotations

from typing import Tuple

from repro.analysis.checkers.asserts import BareAssertChecker
from repro.analysis.checkers.base import Checker
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.drivers import DriverRegistryChecker
from repro.analysis.checkers.frozen import FrozenCrossingChecker
from repro.analysis.checkers.lazynumpy import LazyNumpyChecker
from repro.analysis.checkers.locks import LockDisciplineChecker
from repro.analysis.checkers.protocol import (
    ProtocolExhaustivenessChecker,
    ShardCommandChecker,
)

ALL_CHECKERS: Tuple[Checker, ...] = (
    LockDisciplineChecker(),
    FrozenCrossingChecker(),
    LazyNumpyChecker(),
    ProtocolExhaustivenessChecker(),
    ShardCommandChecker(),
    DeterminismChecker(),
    DriverRegistryChecker(),
    BareAssertChecker(),
)

__all__ = [
    "ALL_CHECKERS",
    "BareAssertChecker",
    "Checker",
    "DeterminismChecker",
    "DriverRegistryChecker",
    "FrozenCrossingChecker",
    "LazyNumpyChecker",
    "LockDisciplineChecker",
    "ProtocolExhaustivenessChecker",
    "ShardCommandChecker",
]
