"""Rule ``frozen-crossing``: types that cross threads/caches/wires are frozen.

Anything stored in the result cache or pickled across the wire protocol /
worker transport is shared: a cache hit hands the *same* object to every
caller, and a mutable reply would let one client poison another's answer
(the PR-2 ``MatchRelation`` bug).  Two enforcement shapes:

* every ``@dataclass`` defined in ``net/protocol.py`` must be
  ``frozen=True`` -- protocol frames exist to cross the wire, no exceptions;
* the registry below names crossing types elsewhere; dataclasses must carry
  ``frozen=True``, hand-rolled classes must define ``__setattr__`` (the
  ``MatchRelation`` freeze idiom).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Tuple

from repro.analysis.checkers.base import decorator_dataclass_frozen, iter_class_defs
from repro.analysis.findings import Finding
from repro.analysis.project import ParsedModule, Project, symbol_of

#: every dataclass in these modules must be frozen (module-wide contracts)
FROZEN_MODULES: Tuple[str, ...] = ("net/protocol.py",)


@dataclass(frozen=True)
class CrossingType:
    """One type that crosses a sharing boundary, and why."""

    module: str
    class_name: str
    why: str
    #: "dataclass" -> require frozen=True; "setattr" -> require __setattr__
    style: str = "dataclass"


CROSSING_TYPES: Tuple[CrossingType, ...] = (
    CrossingType(
        "runtime/metrics.py", "RunMetrics",
        "stored in the result cache and pickled inside RunReply frames",
    ),
    CrossingType(
        "runtime/metrics.py", "RunResult",
        "the cached value itself; shared by every hit on the entry",
    ),
    CrossingType(
        "session/session.py", "MutationOutcome",
        "handed across threads by the concurrent front-end",
    ),
    CrossingType(
        "session/cache.py", "CanonicalQuery",
        "memoized per pattern and read by routing + cache concurrently",
    ),
    CrossingType(
        "session/concurrent.py", "StampedResult",
        "returned to arbitrary client threads and pickled by the ingress",
    ),
    CrossingType(
        "session/concurrent.py", "StampedOutcome",
        "returned to arbitrary client threads and pickled by the ingress",
    ),
    CrossingType(
        "simulation/matchrel.py", "MatchRelation",
        "cache hits share the relation object across callers",
        style="setattr",
    ),
)


class FrozenCrossingChecker:
    rule = "frozen-crossing"
    description = (
        "dataclasses cached or pickled across the protocol/transport "
        "boundary must be frozen"
    )

    def __init__(
        self,
        frozen_modules: Tuple[str, ...] = FROZEN_MODULES,
        crossing_types: Tuple[CrossingType, ...] = CROSSING_TYPES,
    ) -> None:
        self.frozen_modules = frozen_modules
        self.crossing_types = crossing_types

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project:
            if module.relpath in self.frozen_modules:
                yield from self._check_frozen_module(module)
        for spec in self.crossing_types:
            module = project.module(spec.module)
            if module is None:
                continue
            for cls in iter_class_defs(module):
                if cls.name == spec.class_name:
                    yield from self._check_crossing(module, cls, spec)
                    break
            else:
                yield Finding(
                    rule=self.rule,
                    path=spec.module,
                    line=1,
                    col=0,
                    message=(
                        f"registered crossing type {spec.class_name} not "
                        f"found in {spec.module}; update the registry in "
                        "repro/analysis/checkers/frozen.py"
                    ),
                    detail=spec.class_name,
                )

    def _check_frozen_module(self, module: ParsedModule) -> Iterable[Finding]:
        for cls in iter_class_defs(module):
            frozen = decorator_dataclass_frozen(cls)
            if frozen is False:
                yield Finding(
                    rule=self.rule,
                    path=module.relpath,
                    line=cls.lineno,
                    col=cls.col_offset,
                    message=(
                        f"protocol frame dataclass {cls.name} must be "
                        "@dataclass(frozen=True): frames are pickled across "
                        "the wire and shared by reply futures"
                    ),
                    symbol=symbol_of(cls),
                    detail=cls.name,
                )

    def _check_crossing(
        self, module: ParsedModule, cls: ast.ClassDef, spec: CrossingType
    ) -> Iterable[Finding]:
        if spec.style == "setattr":
            has_guard = any(
                isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
                and n.name == "__setattr__"
                for n in cls.body
            )
            if not has_guard:
                yield Finding(
                    rule=self.rule,
                    path=module.relpath,
                    line=cls.lineno,
                    col=cls.col_offset,
                    message=(
                        f"{cls.name} must enforce immutability with a "
                        f"__setattr__ guard: {spec.why}"
                    ),
                    symbol=symbol_of(cls),
                    detail=cls.name,
                )
            return
        if decorator_dataclass_frozen(cls) is not True:
            yield Finding(
                rule=self.rule,
                path=module.relpath,
                line=cls.lineno,
                col=cls.col_offset,
                message=(
                    f"{cls.name} must be @dataclass(frozen=True): {spec.why}"
                ),
                symbol=symbol_of(cls),
                detail=cls.name,
            )
