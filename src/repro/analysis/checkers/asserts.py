"""Rule ``bare-assert``: library code raises typed errors, not asserts.

``assert`` statements vanish under ``python -O``, so an invariant expressed
as one is only checked in debug runs -- and when it *does* fire, callers get
a bare ``AssertionError`` instead of one of the :mod:`repro.errors` types
the API documents (and the net server maps to ``ErrorReply`` codes).  Every
runtime invariant in the package body must raise a ``ReproError`` subclass;
asserts stay legal in tests, which this checker never scans.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.findings import Finding
from repro.analysis.project import Project, symbol_of


class BareAssertChecker:
    rule = "bare-assert"
    description = (
        "no `assert` in library code: raise a repro.errors type instead "
        "(asserts disappear under python -O)"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project:
            for node in module.walk():
                if isinstance(node, ast.Assert):
                    yield Finding(
                        rule=self.rule,
                        path=module.relpath,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            "assert is stripped under python -O; raise a "
                            "repro.errors exception for runtime invariants"
                        ),
                        symbol=symbol_of(node),
                        detail="assert",
                    )
