"""Rule ``driver-registry``: registered algorithms declare what they support.

``SimulationSession.run`` routes by name through the :data:`DRIVERS`
registry and rejects ``engine`` values the driver does not declare -- but
only if the driver *declares* them.  A driver registered without an
``engines`` tuple (or with an engine the compiler does not know) turns that
validation into a lie: the session would accept ``engine="array"`` and the
driver would silently run the dict path.  This checker cross-references
three modules:

* ``session/drivers.py``: every class instantiated inside the ``DRIVERS``
  dict literal must declare class-level ``name``/``display_name``/``engines``
  (a non-empty tuple of string literals) and a ``run`` method taking an
  ``engine`` parameter; names must be unique;
* ``core/arraycompile.py``: each declared engine must be a member of the
  ``ENGINES`` tuple there;
* ``session/session.py``: the session must actually gate on
  ``... not in driver.engines`` somewhere -- if the validation is deleted,
  the registry contract is unenforced and this rule fails.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.project import ParsedModule, Project, symbol_of

DRIVERS_MODULE = "session/drivers.py"
SESSION_MODULE = "session/session.py"
ENGINES_MODULE = "core/arraycompile.py"


class DriverRegistryChecker:
    rule = "driver-registry"
    description = (
        "DRIVERS entries declare name/display_name/engines (subset of "
        "arraycompile.ENGINES) and the session validates against them"
    )

    def __init__(
        self,
        drivers_module: str = DRIVERS_MODULE,
        session_module: str = SESSION_MODULE,
        engines_module: str = ENGINES_MODULE,
    ) -> None:
        self.drivers_module = drivers_module
        self.session_module = session_module
        self.engines_module = engines_module

    def check(self, project: Project) -> Iterable[Finding]:
        drivers = project.module(self.drivers_module)
        if drivers is None:
            return  # not scanning the real tree / a full fixture
        known_engines = _engines_tuple(project.module(self.engines_module))
        registered = _registered_classes(drivers)
        classes = {
            cls.name: cls
            for cls in drivers.walk()
            if isinstance(cls, ast.ClassDef)
        }
        seen_names: Dict[str, str] = {}
        for class_name, site in registered:
            cls = classes.get(class_name)
            if cls is None:
                yield self._finding(
                    drivers, site, class_name,
                    f"DRIVERS registers {class_name} but no such class is "
                    f"defined in {self.drivers_module}",
                )
                continue
            yield from self._check_driver(
                drivers, cls, known_engines, seen_names
            )
        yield from self._check_session_gate(project)

    # ------------------------------------------------------------------
    def _check_driver(
        self,
        module: ParsedModule,
        cls: ast.ClassDef,
        known_engines: Optional[Set[str]],
        seen_names: Dict[str, str],
    ) -> Iterable[Finding]:
        attrs = _class_string_attrs(cls)
        for required in ("name", "display_name"):
            if required not in attrs:
                yield self._finding(
                    module, cls, cls.name,
                    f"driver {cls.name} does not declare a class-level "
                    f"`{required}` string",
                )
        name = attrs.get("name")
        if name is not None:
            other = seen_names.get(name)
            if other is not None:
                yield self._finding(
                    module, cls, cls.name,
                    f"driver {cls.name} re-registers name {name!r} already "
                    f"claimed by {other}: the dict entry would be silently "
                    "overwritten",
                )
            seen_names[name] = cls.name

        engines = _class_tuple_attr(cls, "engines")
        if engines is None:
            yield self._finding(
                module, cls, cls.name,
                f"driver {cls.name} does not declare `engines` as a "
                "non-empty tuple of string literals; the session cannot "
                "validate engine= arguments against it",
            )
        else:
            for engine in engines:
                if known_engines is not None and engine not in known_engines:
                    yield self._finding(
                        module, cls, cls.name,
                        f"driver {cls.name} declares engine {engine!r} which "
                        f"is not in {self.engines_module}'s ENGINES tuple",
                    )

        run = next(
            (
                n
                for n in cls.body
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
                and n.name == "run"
            ),
            None,
        )
        if run is None:
            yield self._finding(
                module, cls, cls.name,
                f"driver {cls.name} has no `run` method",
            )
        elif "engine" not in _parameter_names(run):
            yield self._finding(
                module, run, cls.name,
                f"driver {cls.name}.run takes no `engine` parameter, so the "
                "declared engines cannot reach it",
            )

    def _check_session_gate(self, project: Project) -> Iterable[Finding]:
        session = project.module(self.session_module)
        if session is None:
            return
        for node in session.walk():
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, ast.NotIn) for op in node.ops):
                continue
            for cmp in node.comparators:
                if isinstance(cmp, ast.Attribute) and cmp.attr == "engines":
                    return
        yield Finding(
            rule=self.rule,
            path=self.session_module,
            line=1,
            col=0,
            message=(
                "the session never tests `... not in <driver>.engines`: the "
                "driver registry's engine declarations are unenforced"
            ),
            detail="session-gate",
        )

    def _finding(
        self, module: ParsedModule, node: ast.AST, detail: str, message: str
    ) -> Finding:
        return Finding(
            rule=self.rule,
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            symbol=symbol_of(node),
            detail=detail,
        )


def _engines_tuple(module: Optional[ParsedModule]) -> Optional[Set[str]]:
    """The ``ENGINES = ("dict", "array")`` literal; None when unavailable.

    None (module absent or non-literal) disables the subset check rather
    than failing every driver on fixture trees without an engines module.
    """
    if module is None:
        return None
    for node in module.walk():
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        if not any(isinstance(t, ast.Name) and t.id == "ENGINES" for t in targets):
            continue
        value = node.value
        if isinstance(value, (ast.Tuple, ast.List)):
            names = {
                elt.value
                for elt in value.elts
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            }
            if names:
                return names
    return None


def _registered_classes(module: ParsedModule) -> List[Tuple[str, ast.AST]]:
    """Class names instantiated inside the ``DRIVERS`` dict construction."""
    out: List[Tuple[str, ast.AST]] = []
    for node in module.walk():
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        if not any(
            isinstance(t, ast.Name) and t.id == "DRIVERS" for t in targets
        ):
            continue
        value = node.value
        if value is None:
            continue
        for sub in ast.walk(value):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and not sub.args
                and not sub.keywords
            ):
                out.append((sub.func.id, sub))
    return out


def _class_string_attrs(cls: ast.ClassDef) -> Dict[str, str]:
    """Class-level ``name = "literal"`` string assignments."""
    out: Dict[str, str] = {}
    for stmt in cls.body:
        if not isinstance(stmt, ast.Assign):
            continue
        if not (isinstance(stmt.value, ast.Constant) and isinstance(stmt.value.value, str)):
            continue
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                out[target.id] = stmt.value.value
    return out


def _class_tuple_attr(cls: ast.ClassDef, attr: str) -> Optional[Tuple[str, ...]]:
    """A class-level ``attr = ("a", "b")`` literal, None if absent/malformed."""
    for stmt in cls.body:
        if not isinstance(stmt, ast.Assign):
            continue
        if not any(isinstance(t, ast.Name) and t.id == attr for t in stmt.targets):
            continue
        if not isinstance(stmt.value, (ast.Tuple, ast.List)) or not stmt.value.elts:
            return None
        items: List[str] = []
        for elt in stmt.value.elts:
            if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
                return None
            items.append(elt.value)
        return tuple(items)
    return None


def _parameter_names(func: ast.FunctionDef) -> Set[str]:
    args = func.args
    names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names
