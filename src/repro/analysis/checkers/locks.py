"""Rule ``lock-discipline``: guarded shared state is written under its lock.

The concurrent serving stack (PR 3) relies on a handful of attributes being
mutated only while a specific lock is held; every entry in :data:`GUARDED`
below names one of them, the guarding lock expression(s), and the methods
that are *exempt* because they run before any concurrency exists
(``__init__``, unpickling) or under an externally provided exclusion (the
session layer's writer lock) -- each with the reason recorded.

A "write" is any assignment/deletion through the attribute (including
subscript and nested-attribute stores) and any in-place mutator call on it
(``.pop``/``.append``/``.update``/...); ``setattr(self, ...)`` counts as a
write to every guarded attribute when the spec guards ``"*"``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.analysis.checkers.base import attribute_writes, guarded_by, iter_class_defs, setattr_calls
from repro.analysis.findings import Finding
from repro.analysis.project import ParsedModule, Project, enclosing_method, symbol_of


@dataclass(frozen=True)
class GuardSpec:
    """One lock-discipline contract: class, attributes, lock, exemptions."""

    class_name: str
    #: attribute names, or ("*",) for "every instance attribute" (used for
    #: plain-counter dataclasses whose whole surface is guarded)
    attrs: Tuple[str, ...]
    #: dotted with-expressions that count as holding the lock
    locks: Tuple[str, ...]
    #: methods allowed to write without the lock, with the reason in `why`
    exempt_methods: Tuple[str, ...] = ()
    why: str = ""
    #: restrict to one module (relpath); "" matches any module, which lets
    #: test fixtures reuse the production class names
    module: str = ""


#: always exempt: these run single-threaded by construction (no other thread
#: can hold a reference to a half-constructed / half-unpickled object)
_CONSTRUCTION = ("__init__", "__post_init__", "__new__", "__getstate__", "__setstate__")

GUARDED: Tuple[GuardSpec, ...] = (
    GuardSpec(
        class_name="LruResultCache",
        attrs=("_entries", "_inflight", "stats"),
        locks=("self._lock",),
        why="concurrent get/put/evict; stats counters mirror entry changes",
    ),
    GuardSpec(
        class_name="LabelInterner",
        attrs=("_ids",),
        locks=("self._lock",),
        why="two threads interning new labels must never share an id",
    ),
    GuardSpec(
        class_name="DiGraph",
        attrs=("_label_index", "_succ_label_counts"),
        locks=("self._index_lock",),
        exempt_methods=("add_node", "add_edge", "remove_edge", "remove_node"),
        why=(
            "the lock guards the first-use builds against concurrent "
            "readers; the exempt mutators patch the indexes in place under "
            "the session layer's writer exclusion"
        ),
    ),
    GuardSpec(
        class_name="SessionStats",
        attrs=("*",),
        locks=("self._lock",),
        why="counters are read-modify-write bumped from concurrent readers",
    ),
    GuardSpec(
        class_name="SimulationSession",
        attrs=("_meta", "_warm"),
        locks=("self._state_lock",),
        why="per-entry metadata races cache hits against evictions",
    ),
    GuardSpec(
        class_name="SimulationSession",
        attrs=("_deps",),
        locks=("self._deps_lock",),
        exempt_methods=("invalidate",),
        why=(
            "double-checked lazy build; invalidate() runs under the "
            "concurrent front-end's writer exclusion"
        ),
    ),
    GuardSpec(
        class_name="SimulationSession",
        attrs=("_compiled",),
        locks=("self._compiled_lock",),
        exempt_methods=("invalidate",),
        why=(
            "double-checked lazy build of the array engine's compiled-CSR "
            "cache; invalidate() runs under writer exclusion"
        ),
    ),
    GuardSpec(
        class_name="ConcurrentSessionServer",
        attrs=("_affinity",),
        locks=("self._route_lock",),
        why="sticky routing table shared by every serving thread",
    ),
    GuardSpec(
        class_name="ConcurrentSessionServer",
        attrs=("_write_queue", "_applying", "_closed"),
        locks=("self._write_cond",),
        why="mutation tickets coalesce under the drainer condition variable",
    ),
    GuardSpec(
        class_name="ConcurrentSessionServer",
        attrs=("_stamp", "_desynced"),
        locks=("self._rw.write_locked()",),
        exempt_methods=("_rebalance_repartition_locked",),
        why=(
            "stamp/desync flips happen only at quiescent points; the "
            "_locked rebalance helper runs inside the write lock its "
            "caller rebalance() holds"
        ),
    ),
    GuardSpec(
        class_name="ConcurrentSessionServer",
        attrs=("_shards", "_ring", "_respawns", "_rebalances"),
        locks=("self._pool_lock",),
        why=(
            "the sharded pool (worker handles, hash ring, respawn and "
            "rebalance counters) is repaired/rebalanced by whichever "
            "thread hits a dead worker or triggers a migration"
        ),
    ),
)


class LockDisciplineChecker:
    rule = "lock-discipline"
    description = (
        "writes to registered lock-guarded attributes must happen inside "
        "the owning `with <lock>` block"
    )

    def __init__(self, guarded: Tuple[GuardSpec, ...] = GUARDED) -> None:
        self.guarded = guarded

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project:
            yield from self._check_module(module)

    def _check_module(self, module: ParsedModule) -> Iterable[Finding]:
        for cls in iter_class_defs(module):
            specs = [
                s
                for s in self.guarded
                if s.class_name == cls.name
                and (not s.module or s.module == module.relpath)
            ]
            if specs:
                yield from self._check_class(module, cls, specs)

    def _check_class(
        self, module: ParsedModule, cls: ast.ClassDef, specs: List[GuardSpec]
    ) -> Iterable[Finding]:
        lock_names = {
            lock.split(".")[1]
            for spec in specs
            for lock in spec.locks
            if lock.startswith("self.")
        }
        for node, root, attr in attribute_writes(cls):
            if root != "self":
                continue
            if attr in lock_names:
                continue  # creating/replacing the lock itself
            for spec in specs:
                if spec.attrs != ("*",) and attr not in spec.attrs:
                    continue
                if spec.attrs == ("*",) and attr.startswith("_lock"):
                    continue
                yield from self._require_guard(module, cls, spec, node, attr)
                break
        for spec in specs:
            if spec.attrs == ("*",):
                for call in setattr_calls(cls):
                    yield from self._require_guard(
                        module, cls, spec, call, "setattr(self, ...)"
                    )

    def _require_guard(
        self,
        module: ParsedModule,
        cls: ast.ClassDef,
        spec: GuardSpec,
        node: ast.AST,
        attr: str,
    ) -> Iterable[Finding]:
        method = enclosing_method(node)
        method_name = method.name if method is not None else ""
        if method_name in _CONSTRUCTION or method_name in spec.exempt_methods:
            return
        if guarded_by(node, spec.locks):
            return
        yield Finding(
            rule=self.rule,
            path=module.relpath,
            line=getattr(node, "lineno", cls.lineno),
            col=getattr(node, "col_offset", 0),
            message=(
                f"{cls.name}.{attr} is written outside "
                f"`with {' / '.join(spec.locks)}` "
                f"(in {method_name or 'module scope'}); guarded because: {spec.why}"
            ),
            symbol=symbol_of(node),
            detail=attr,
        )
