"""The finding model: what a checker reports and how it is identified.

A :class:`Finding` pins a violation to ``file:line`` for humans and to a
*fingerprint* for the baseline: the fingerprint deliberately excludes line
numbers (they drift with every unrelated edit) and is built from the rule
id, the file, the enclosing symbol, and a short checker-chosen detail token,
with an occurrence index to disambiguate repeats inside one symbol.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple


class Severity(enum.Enum):
    """How a finding affects the exit code."""

    #: violates an enforced invariant; fails the run unless baselined
    ERROR = "error"
    #: worth a look, never fails the run
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one site.

    ``symbol`` is the dotted path of the enclosing class/function (empty at
    module level); ``detail`` is a short stable token the checker picks
    (usually the offending attribute or name) -- together with ``rule`` and
    ``path`` it forms the baseline fingerprint.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    symbol: str = ""
    detail: str = ""
    severity: Severity = Severity.ERROR

    def render(self) -> str:
        """Human-readable one-liner (``path:line:col rule message``)."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity.value}[{self.rule}] {self.message}"
        )


def fingerprints(findings: Iterable[Finding]) -> List[Tuple[Finding, str]]:
    """Pair each finding with its baseline fingerprint.

    Fingerprints are line-independent: ``rule::path::symbol::detail#n``
    where ``n`` counts repeated (rule, path, symbol, detail) occurrences in
    source order, so two identical violations in one function suppress
    independently and an unrelated edit above them changes nothing.
    """
    seen: Dict[Tuple[str, str, str, str], int] = {}
    out: List[Tuple[Finding, str]] = []
    for finding in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule)):
        key = (finding.rule, finding.path, finding.symbol, finding.detail)
        n = seen.get(key, 0)
        seen[key] = n + 1
        out.append(
            (finding, f"{finding.rule}::{finding.path}::{finding.symbol}"
             f"::{finding.detail}#{n}")
        )
    return out
