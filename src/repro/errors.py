"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch one type to handle anything the library signals.
"""

from __future__ import annotations

from typing import Sequence, Tuple


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """A graph operation received invalid input (unknown node, bad edge...)."""


class PatternError(ReproError):
    """A pattern query is malformed or unsuitable for the chosen algorithm."""


class FragmentationError(ReproError):
    """A fragmentation is inconsistent (overlapping parts, dangling edges...)."""


class ProtocolError(ReproError):
    """A distributed protocol reached an invalid state (lost message, bad round)."""


class WorkloadError(ReproError):
    """A benchmark workload could not be generated with the requested shape."""


class TransportError(ProtocolError):
    """A network transport failed (peer gone, connection closed mid-exchange).

    Raised by the :mod:`repro.net` clients and the socket worker transport
    when the byte stream ends or breaks; distinct from
    :class:`WireFormatError`, which means the peer is alive but speaking
    garbage.
    """


class WireFormatError(ProtocolError):
    """Bytes on the wire do not form a valid :mod:`repro.net` frame.

    Covers a bad magic/version/kind header, an oversized or truncated
    declared length, an undecodable body, and a body whose type does not
    match its frame kind.
    """


class MutationBatchError(ReproError):
    """A mutation batch failed partway; the applied prefix stays applied.

    ``applied`` carries the stamped outcomes of the updates that succeeded
    before the failure (their stamps are in effect -- there is no rollback:
    node additions have no inverse in the mutation API), ``failed_op`` the
    (normalized :class:`~repro.graph.mutations.MutationOp`) update that
    raised, and ``__cause__`` the underlying error.
    """

    def __init__(
        self, message: str, applied: Sequence[object], failed_op: object
    ) -> None:
        super().__init__(message)
        self.applied = applied
        self.failed_op = failed_op

    def __reduce__(self) -> tuple:
        # The default exception reduce replays only ``args`` (the message);
        # replay all three so the error survives process boundaries.
        return (type(self), (self.args[0], self.applied, self.failed_op))
