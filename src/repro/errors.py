"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch one type to handle anything the library signals.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """A graph operation received invalid input (unknown node, bad edge...)."""


class PatternError(ReproError):
    """A pattern query is malformed or unsuitable for the chosen algorithm."""


class FragmentationError(ReproError):
    """A fragmentation is inconsistent (overlapping parts, dangling edges...)."""


class ProtocolError(ReproError):
    """A distributed protocol reached an invalid state (lost message, bad round)."""


class WorkloadError(ReproError):
    """A benchmark workload could not be generated with the requested shape."""
