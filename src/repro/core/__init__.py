"""The paper's contribution: distributed graph-simulation algorithms.

* :func:`~repro.core.dgpm.run_dgpm` -- the partition-bounded algorithm dGPM
  (Section 4, Theorem 2), with the two Section-4.2 optimizations (incremental
  local evaluation and the tunable push operation) individually switchable;
  ``optimized=False`` yields the paper's dGPMNOpt ablation.
* :func:`~repro.core.dgpmd.run_dgpmd` -- the rank-scheduled algorithm for DAG
  queries/graphs (Section 5.1, Theorem 3).
* :func:`~repro.core.dgpmt.run_dgpmt` -- the two-round tree algorithm
  (Section 5.2, Corollary 4).
* :func:`~repro.core.dispatch.run_auto` -- picks the best applicable
  algorithm from the shapes of ``Q``, ``G`` and ``F``.
* :mod:`~repro.core.impossibility` -- the Theorem-1 gadget families and an
  auditor that demonstrates the impossibility empirically.
* :class:`~repro.core.incremental.IncrementalDgpmSession` -- long-lived
  evaluation maintaining ``Q(G)`` under edge updates (Section 4.2 / [13]);
  :class:`~repro.core.incremental.IncrementalMatchState` is the same
  machinery over shared session-owned structures (one per hot query of a
  :class:`~repro.session.SimulationSession`).
"""

from repro.core.config import DgpmConfig
from repro.core.dgpm import run_dgpm
from repro.core.dgpmd import run_dgpmd
from repro.core.dgpmt import run_dgpmt
from repro.core.dispatch import run_auto
from repro.core.incremental import (
    IncrementalDgpmSession,
    IncrementalMatchState,
    UpdateMetrics,
)

__all__ = [
    "DgpmConfig",
    "run_dgpm",
    "run_dgpmd",
    "run_dgpmt",
    "run_auto",
    "IncrementalDgpmSession",
    "IncrementalMatchState",
    "UpdateMetrics",
]
