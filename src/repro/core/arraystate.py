"""Array-native per-site evaluation state (``engine="array"``).

:class:`ArrayEvalState` is a drop-in replacement for
:class:`~repro.core.state.LocalEvalState` over a
:class:`~repro.core.arraycompile.CompiledFragment`: candidate sets ``sim(u)``
are one bool row per query node over the fragment's dense node ids, and the
HHK successor counters are a ``|V_local| x |Q|`` int matrix.  Processing a
falsification batch is vectorized counter decrements plus
``nonzero(count == 0)`` worklist extraction -- one numpy wave per
(query-node, removal-batch) pair instead of a Python loop per (node, node)
pair -- with exactly the dict engine's semantics (same fixpoint, same
newly-falsified local variables).

The symbolic side (:meth:`ArrayEvalState.in_node_equations`) exploits
monotonicity instead of brute-force reduction: every expression in play is a
conj/disj of variables, so evaluating the *pessimistic* fixpoint (all
virtual variables false -- one extra vectorized propagation) brackets every
pair between ``sim`` (the optimistic fixpoint) and ``pess``.  Pairs true in
``pess`` are definitively TRUE; pairs outside ``sim`` are already falsified;
only the (typically thin) boundary slice in between genuinely depends on
virtual variables and enters the symbolic reduction.  The reduced equations
are logically equal to the dict engine's (same greatest fixpoint projected
onto the same virtual variables), just built from a system that is orders of
magnitude smaller.

:class:`ArrayRankState` vectorizes dGPMd's per-rank exact evaluation, and
:class:`ArrayTreeState` vectorizes dGPMt's bottom-up subtree sweep with the
same optimistic/pessimistic bracketing (symbolic expressions only for pairs
whose value actually depends on child-fragment roots).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.boolean.expr import BoolExpr, FALSE, TRUE, Var, conj, disj
from repro.core.arraycompile import (
    CompiledFragment,
    gather_csr,
    require_numpy,
    segment_any,
    segment_sum_full,
)
from repro.core.state import VarKey
from repro.graph.digraph import Node
from repro.graph.pattern import Pattern
from repro.partition.fragment import Fragment


class _QueryView:
    """The query compiled against a fragment snapshot's dense ids."""

    __slots__ = (
        "qnodes", "qindex", "qlab", "label_match", "children", "parents", "relevant",
    )

    def __init__(self, compiled: CompiledFragment, query: Pattern, interner) -> None:
        np = require_numpy()
        self.qnodes: Tuple[Node, ...] = tuple(query.nodes())
        self.qindex: Dict[Node, int] = {u: i for i, u in enumerate(self.qnodes)}
        self.qlab: List[int] = [
            interner.intern(query.label(u)) for u in self.qnodes
        ]
        #: (Q, N) bool -- label agreement, the optimistic seed of sim
        #: (rows copied from the snapshot's per-label cache)
        self.label_match = np.empty((len(self.qnodes), compiled.n_nodes), dtype=bool)
        for i, lab in enumerate(self.qlab):
            self.label_match[i] = compiled.label_row(lab)
        self.children: List[List[int]] = [
            [self.qindex[w] for w in query.children(u)] for u in self.qnodes
        ]
        self.parents: List[List[int]] = [
            [self.qindex[w] for w in query.parents(u)] for u in self.qnodes
        ]
        #: query nodes some edge targets (the only ones counters exist for)
        self.relevant: List[int] = [i for i, ps in enumerate(self.parents) if ps]


class ArrayEvalState:
    """Counter-based partial evaluation over a compiled fragment.

    Mirrors :class:`~repro.core.state.LocalEvalState`'s public protocol
    (``run_initial`` / ``falsify_virtual`` / ``drain_newly_false`` /
    ``local_matches`` / ``virtual_candidates`` / ``is_candidate`` /
    ``in_node_equations``) so :class:`~repro.core.dgpm.DgpmSiteProgram`
    runs unchanged on either engine.
    """

    def __init__(
        self,
        compiled: CompiledFragment,
        fragment: Fragment,
        query: Pattern,
        interner,
        known_false_virtual: Iterable[VarKey] = (),
    ) -> None:
        np = require_numpy()
        self.compiled = compiled
        self.fragment = fragment
        self.query = query
        self.view = _QueryView(compiled, query, interner)
        #: (Q, N) bool -- not-yet-falsified candidates (local and virtual)
        self.sim = self.view.label_match.copy()

        # Pre-apply falsifications already known (dGPMNOpt from-scratch path).
        pre_removed = False
        for u, v in known_false_virtual:
            qi = self.view.qindex.get(u)
            vi = compiled.index.get(v)
            if qi is not None and vi is not None:
                self.sim[qi, vi] = False
                pre_removed = True

        # count[v, j] = |succ(v) ∩ sim(q_j)| -- with a pristine sim this is
        # the snapshot's cached per-label column; pre-removals (dGPMNOpt)
        # force the per-query segment-sum (removals change the seed).
        n = compiled.n_nodes
        self.count = np.zeros((n, len(self.view.qnodes)), dtype=np.int64)
        for j in self.view.relevant:
            if pre_removed:
                self.count[:, j] = segment_sum_full(
                    self.sim[j, compiled.fwd_indices], compiled.fwd_indptr
                )
            else:
                self.count[:, j] = compiled.count_col(self.view.qlab[j])

        self._newly_false: List[Tuple[int, object]] = []  # (query idx, id array)
        self._initialized = False
        #: when True, run_initial/falsify_virtual buffer falsifications
        #: instead of materializing VarKey tuples; the caller drains via
        #: drain_for_shipping() (or drain_newly_false() after a rewire).
        self.defer_drain = False

    # ------------------------------------------------------------------
    # fixpoint machinery
    # ------------------------------------------------------------------
    def run_initial(self) -> List[VarKey]:
        """Seed with all local violations; propagate to the local fixpoint."""
        np = require_numpy()
        if self._initialized:
            raise RuntimeError("run_initial may only be called once")
        self._initialized = True
        c, view = self.compiled, self.view
        frontier: List[Tuple[int, object]] = []
        for i, children in enumerate(view.children):
            if not children:
                continue
            bad = self.sim[i] & c.local_mask
            bad &= (self.count[:, children] == 0).any(axis=1)
            idx = np.nonzero(bad)[0]
            if idx.size:
                self.sim[i, idx] = False
                self._newly_false.append((i, idx))
                frontier.append((i, idx))
        self._propagate(self.sim, self.count, frontier, record=True)
        if self.defer_drain:
            return []
        return self.drain_newly_false()

    def falsify_virtual(self, pairs: Iterable[VarKey]) -> List[VarKey]:
        """Apply received falsifications; returns newly falsified local vars."""
        np = require_numpy()
        c, view = self.compiled, self.view
        qindex_get, index_get = view.qindex.get, c.index.get
        per_q: Dict[int, List[int]] = {}
        for u, v in pairs:
            qi = qindex_get(u)
            vi = index_get(v)
            if qi is None or vi is None:
                continue
            per_q.setdefault(qi, []).append(vi)
        frontier = []
        for qi, vis in per_q.items():
            idx = np.unique(np.asarray(vis, dtype=np.int64))
            row = self.sim[qi]
            idx = idx[row[idx]]  # drop pairs that are already false
            if idx.size:
                row[idx] = False
                frontier.append((qi, idx))
        self._propagate(self.sim, self.count, frontier, record=True)
        if self.defer_drain:
            return []
        return self.drain_newly_false()

    def falsify_virtual_gids(self, chunks) -> None:
        """Apply falsifications shipped as ``(query node, global-id array)``.

        The fully vectorized receive: global ids map to local dense ids
        through the compiled fragment's table, unknown ids (pairs this site
        never watched) drop out as ``-1``.  Falsifications land in the
        deferred-drain buffer; the caller drains shippable pairs.
        """
        np = require_numpy()
        c, view = self.compiled, self.view
        g2l = c.g2l()
        per_q: Dict[int, List] = {}
        for u, gids in chunks:
            qi = view.qindex.get(u)
            if qi is not None:
                per_q.setdefault(qi, []).append(gids)
        frontier = []
        for qi, parts in per_q.items():
            gids = parts[0] if len(parts) == 1 else np.concatenate(parts)
            gids = gids[gids < g2l.size]
            idx = g2l[gids]
            idx = np.unique(idx[idx >= 0])
            row = self.sim[qi]
            idx = idx[row[idx]]  # drop pairs that are already false
            if idx.size:
                row[idx] = False
                frontier.append((qi, idx))
        self._propagate(self.sim, self.count, frontier, record=True)

    def _propagate(self, sim, count, frontier, record: bool) -> None:
        """Vectorized counter waves: one wave = one query node's pending batch.

        Pending removal batches are coalesced per query node before each
        wave (decrements are additive, and a pair is removed at most once,
        so batching order never changes the fixpoint) -- big batches are
        exactly where one ``bincount`` beats per-pair loops.  Predecessors
        are always local (fragments never store out-edges of virtual nodes),
        so every newly-zero counter row is a local node and every removal it
        causes is a local falsification.
        """
        np = require_numpy()
        c, view = self.compiled, self.view
        n = c.n_nodes
        pending: Dict[int, List] = {}
        for i, removed in frontier:
            pending.setdefault(i, []).append(removed)
        while pending:
            i, chunks = pending.popitem()
            removed = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
            preds, _ = gather_csr(c.rev_indptr, c.rev_indices, removed)
            if preds.size == 0:
                continue
            dec = np.bincount(preds, minlength=n)
            aff = np.nonzero(dec)[0]
            col = count[:, i]
            before = col[aff]
            after = before - dec[aff]
            col[aff] = after
            newly_zero = aff[(before > 0) & (after == 0)]
            if newly_zero.size == 0:
                continue
            for p in view.parents[i]:
                rm = newly_zero[sim[p, newly_zero]]
                if rm.size:
                    sim[p, rm] = False
                    if record:
                        self._newly_false.append((p, rm))
                    pending.setdefault(p, []).append(rm)

    def drain_newly_false(self) -> List[VarKey]:
        """Take (and clear) the buffer of newly falsified local variables."""
        qnodes, nodes = self.view.qnodes, self.compiled.nodes
        out: List[VarKey] = [
            (qnodes[i], nodes[v])
            for i, arr in self._newly_false
            for v in arr.tolist()
        ]
        self._newly_false = []
        return out

    def drain_for_shipping(self) -> Tuple[List[VarKey], int]:
        """``(shippable falsifications, total newly-false count)``.

        Shippable = in-node pairs whose query node has a parent -- exactly
        the pairs ``DgpmSiteProgram._messages_for`` would keep; interior
        falsifications are counted (for the metrics) without ever
        materializing as Python tuples.  Only valid while no rewire has
        added extra watchers (the site program falls back to the full drain
        then).
        """
        c, view = self.compiled, self.view
        total = 0
        out: List[VarKey] = []
        for i, arr in self._newly_false:
            total += int(arr.size)
            if view.parents[i]:
                ship = arr[c.in_mask[arr]]
                if ship.size:
                    u = view.qnodes[i]
                    out.extend((u, c.nodes[v]) for v in ship.tolist())
        self._newly_false = []
        return out, total

    def drain_shippable_ids(self) -> Tuple[List[Tuple[Node, object]], int]:
        """Like :meth:`drain_for_shipping` but as ``(query node, id array)``
        chunks of local dense ids -- no VarKey tuples at all; the site
        program routes and ships them as global-id arrays.  The buffer's
        per-wave fragments are coalesced to one chunk per query node.
        """
        np = require_numpy()
        c, view = self.compiled, self.view
        total = 0
        per_i: Dict[int, List] = {}
        for i, arr in self._newly_false:
            total += int(arr.size)
            if view.parents[i]:
                per_i.setdefault(i, []).append(arr)
        self._newly_false = []
        out: List[Tuple[Node, object]] = []
        for i, parts in per_i.items():
            arr = parts[0] if len(parts) == 1 else np.concatenate(parts)
            ship = arr[c.in_mask[arr]]
            if ship.size:
                out.append((view.qnodes[i], ship))
        return out, total

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def local_matches(self) -> Dict[Node, Set[Node]]:
        """Current candidates restricted to local nodes (the site's answer)."""
        np = require_numpy()
        c = self.compiled
        out: Dict[Node, Set[Node]] = {}
        for i, u in enumerate(self.view.qnodes):
            idx = np.nonzero(self.sim[i] & c.local_mask)[0]
            out[u] = set(map(c.nodes.__getitem__, idx.tolist()))
        return out

    def virtual_candidates(self) -> List[VarKey]:
        """Virtual variables still assumed true (the paper's ``Fi.O'``)."""
        np = require_numpy()
        c = self.compiled
        out: List[VarKey] = []
        for i, u in enumerate(self.view.qnodes):
            idx = np.nonzero(self.sim[i] & c.virtual_mask)[0]
            out.extend((u, c.nodes[v]) for v in idx.tolist())
        return out

    def is_candidate(self, u: Node, v: Node) -> bool:
        """True iff ``X(u, v)`` has not been falsified."""
        qi = self.view.qindex.get(u)
        vi = self.compiled.index.get(v)
        if qi is None or vi is None:
            return False
        return bool(self.sim[qi, vi])

    # ------------------------------------------------------------------
    # symbolic equations (Example 6, push)
    # ------------------------------------------------------------------
    def _pessimistic(self):
        """The fixpoint with every virtual variable false (one extra sweep).

        Monotonicity makes this an exact lower bracket: a pair true here is
        true under *any* valuation of the virtual variables.
        """
        np = require_numpy()
        c = self.compiled
        pess = self.sim.copy()
        pess_count = self.count.copy()
        frontier = []
        for i in range(len(self.view.qnodes)):
            idx = np.nonzero(pess[i] & c.virtual_mask)[0]
            if idx.size:
                pess[i, idx] = False
                frontier.append((i, idx))
        self._propagate(pess, pess_count, frontier, record=False)
        return pess

    def in_node_equations(self, max_terms: int = 4096) -> Dict[VarKey, BoolExpr]:
        """Each unresolved in-node variable, reduced to virtual variables only.

        Same contract as the dict engine's: definitively-true in-node pairs
        map to TRUE, falsified pairs are absent, the rest reduce to
        expressions over virtual-variable leaves.  Raises
        :class:`~repro.boolean.system.EquationBlowupError` past
        ``max_terms``, exactly like the dict path.
        """
        np = require_numpy()
        from collections import deque

        from repro.boolean.system import EquationSystem

        c, view = self.compiled, self.view
        pess = self._pessimistic()

        out: Dict[VarKey, BoolExpr] = {}
        queue: deque = deque()
        seen: Set[Tuple[int, int]] = set()
        for i, u in enumerate(view.qnodes):
            idx = np.nonzero(self.sim[i] & c.in_mask)[0]
            for vi in idx.tolist():
                if pess[i, vi]:
                    out[(u, c.nodes[vi])] = TRUE
                else:
                    queue.append((i, vi))
                    seen.add((i, vi))

        keep = [(view.qnodes[i], c.nodes[vi]) for i, vi in queue]
        if not keep:
            return out

        # Build the dependent subsystem only: pairs in sim \ pess, reached
        # from the unresolved in-node variables.  Constants fold on sight.
        equations: Dict[VarKey, BoolExpr] = {}
        fwd_indptr, fwd_indices = c.fwd_indptr, c.fwd_indices
        while queue:
            i, vi = queue.popleft()
            terms: List[BoolExpr] = []
            for ci in view.children[i]:
                succs = fwd_indices[fwd_indptr[vi]:fwd_indptr[vi + 1]]
                alts: List[BoolExpr] = []
                term_true = False
                for w in succs.tolist():
                    if not self.sim[ci, w]:
                        continue
                    if pess[ci, w]:
                        term_true = True
                        break
                    alts.append(Var((view.qnodes[ci], c.nodes[w])))
                    if c.local_mask[w] and (ci, w) not in seen:
                        seen.add((ci, w))
                        queue.append((ci, w))
                if term_true:
                    continue
                terms.append(disj(alts) if alts else FALSE)
            equations[(view.qnodes[i], c.nodes[vi])] = conj(terms)
        system = EquationSystem(equations)
        out.update(system.reduced_system(keep=keep, max_terms=max_terms).as_dict())
        return out


# ----------------------------------------------------------------------
# dGPMd: vectorized per-rank exact evaluation
# ----------------------------------------------------------------------

class ArrayRankState:
    """Array backend for dGPMd's rank schedule over one fragment.

    Final (exact) decisions accumulate rank by rank in a ``(Q, N)`` bool
    table; evaluating rank ``r`` is, per query node, one CSR gather plus
    segment-any per query child -- the per-(node, child) Python loop of the
    dict path collapses into O(children) numpy calls.
    """

    def __init__(self, compiled: CompiledFragment, query: Pattern, interner) -> None:
        np = require_numpy()
        self.compiled = compiled
        self.view = _QueryView(compiled, query, interner)
        n = compiled.n_nodes
        q = len(self.view.qnodes)
        #: exact matches, filled for a query node when its rank is evaluated
        self.sim = np.zeros((q, n), dtype=bool)
        #: virtual variables reported false by their owners
        self.virtual_false = np.zeros((q, n), dtype=bool)

    def mark_virtual_false(self, pairs: Iterable[VarKey]) -> None:
        for u, v in pairs:
            qi = self.view.qindex.get(u)
            vi = self.compiled.index.get(v)
            if qi is not None and vi is not None:
                self.virtual_false[qi, vi] = True

    def evaluate_nodes(self, query_nodes: Iterable[Node], in_nodes_shippable) -> List[VarKey]:
        """Decide every given query node exactly; return falsified in-node vars.

        ``in_nodes_shippable(u)`` tells whether falsifications of ``u`` are
        worth shipping (dict path: ``query.parents(u)`` non-empty).
        """
        np = require_numpy()
        c, view = self.compiled, self.view
        falsified: List[VarKey] = []
        for u in query_nodes:
            i = view.qindex[u]
            cand = np.nonzero(view.label_match[i] & c.local_mask)[0]
            if cand.size == 0:
                continue
            ok_all = np.ones(cand.size, dtype=bool)
            if view.children[i]:
                neigh, counts = gather_csr(c.fwd_indptr, c.fwd_indices, cand)
                for ci in view.children[i]:
                    # local witnesses: already-final sim; virtual witnesses:
                    # label agreement minus reported falsifications
                    ok_child = np.where(
                        c.local_mask,
                        self.sim[ci],
                        view.label_match[ci] & ~self.virtual_false[ci],
                    )
                    ok_all &= segment_any(ok_child[neigh], counts)
            matched = cand[ok_all]
            self.sim[i, matched] = True
            if in_nodes_shippable(u):
                failed = cand[~ok_all]
                ship = failed[c.in_mask[failed]]
                falsified.extend((u, c.nodes[v]) for v in ship.tolist())
        return falsified

    def matches(self) -> Dict[Node, Set[Node]]:
        """The final per-query-node match sets (local nodes)."""
        np = require_numpy()
        c = self.compiled
        return {
            u: set(map(c.nodes.__getitem__, np.nonzero(self.sim[i])[0].tolist()))
            for i, u in enumerate(self.view.qnodes)
        }


# ----------------------------------------------------------------------
# dGPMt: vectorized bottom-up subtree sweep
# ----------------------------------------------------------------------

class ArrayTreeState:
    """Array backend for dGPMt's per-site bottom-up symbolic evaluation.

    Two vectorized boolean sweeps (virtual roots all-true / all-false)
    bracket every local pair; the monotone expressions dGPMt builds make the
    bracket exact, so symbolic :class:`~repro.boolean.expr.BoolExpr` values
    are only materialized for the pairs that genuinely depend on child
    fragments' roots.
    """

    def __init__(self, compiled: CompiledFragment, query: Pattern, interner) -> None:
        np = require_numpy()
        self.compiled = compiled
        self.query = query
        self.view = _QueryView(compiled, query, interner)
        n = compiled.n_nodes
        q = len(self.view.qnodes)
        self.opt = np.zeros((q, n), dtype=bool)
        self.pess = np.zeros((q, n), dtype=bool)
        self._exprs: Optional[Dict[VarKey, BoolExpr]] = None

    def bottom_up(self) -> None:
        """Evaluate both brackets leaves-first, one vectorized level at a time."""
        np = require_numpy()
        c, view = self.compiled, self.view
        for level in c.tree_levels():
            neigh, counts = gather_csr(c.fwd_indptr, c.fwd_indices, level)
            for i in range(len(view.qnodes)):
                cand = view.label_match[i][level]
                if not cand.any():
                    continue
                hit_opt = cand.copy()
                hit_pess = cand.copy()
                for ci in view.children[i]:
                    ok_opt = np.where(
                        c.local_mask, self.opt[ci], view.label_match[ci]
                    )
                    ok_pess = c.local_mask & self.pess[ci]
                    hit_opt &= segment_any(ok_opt[neigh], counts)
                    hit_pess &= segment_any(ok_pess[neigh], counts)
                self.opt[i, level[hit_opt]] = True
                self.pess[i, level[hit_pess]] = True

    def exprs(self) -> Dict[VarKey, BoolExpr]:
        """Symbolic values for the dependent pairs only (lazily built).

        Dependent pairs (``opt`` true, ``pess`` false) are processed in the
        same leaves-first order, so child expressions exist before parents
        reference them; constant children fold to TRUE/FALSE on sight.
        """
        if self._exprs is not None:
            return self._exprs
        np = require_numpy()
        c, view = self.compiled, self.view
        dependent = self.opt & ~self.pess
        exprs: Dict[VarKey, BoolExpr] = {}
        by_pair: Dict[Tuple[int, int], BoolExpr] = {}
        for level in c.tree_levels():
            for i in range(len(view.qnodes)):
                for vi in level[dependent[i][level]].tolist():
                    terms: List[BoolExpr] = []
                    succs = c.fwd_indices[
                        c.fwd_indptr[vi]:c.fwd_indptr[vi + 1]
                    ].tolist()
                    for ci in view.children[i]:
                        alts: List[BoolExpr] = []
                        term_true = False
                        for w in succs:
                            if not view.label_match[ci, w]:
                                continue
                            if c.local_mask[w]:
                                if self.pess[ci, w]:
                                    term_true = True
                                    break
                                if self.opt[ci, w]:
                                    alts.append(by_pair[(ci, w)])
                            else:
                                alts.append(Var((view.qnodes[ci], c.nodes[w])))
                        if term_true:
                            continue
                        terms.append(disj(alts) if alts else FALSE)
                    expr = conj(terms)
                    by_pair[(i, vi)] = expr
                    exprs[(view.qnodes[i], c.nodes[vi])] = expr
        self._exprs = exprs
        return exprs

    def root_vector(self, root: Node) -> Dict[VarKey, BoolExpr]:
        """The Boolean vector of the fragment's subtree root."""
        c, view = self.compiled, self.view
        ri = c.index[root]
        vector: Dict[VarKey, BoolExpr] = {}
        exprs = self.exprs()
        for i, u in enumerate(view.qnodes):
            if not view.label_match[i, ri]:
                continue
            if self.pess[i, ri]:
                vector[(u, root)] = TRUE
            elif not self.opt[i, ri]:
                vector[(u, root)] = FALSE
            else:
                vector[(u, root)] = exprs[(u, root)]
        return vector

    def finalize(self, values: Dict[VarKey, bool]) -> Dict[Node, Set[Node]]:
        """Local matches once the coordinator's virtual-root verdicts arrive."""
        np = require_numpy()
        c, view = self.compiled, self.view
        out: Dict[Node, Set[Node]] = {u: set() for u in view.qnodes}
        exprs = self.exprs()
        for i, u in enumerate(view.qnodes):
            sure = np.nonzero(self.pess[i] & c.local_mask)[0]
            out[u].update(map(c.nodes.__getitem__, sure.tolist()))
            maybe = np.nonzero(self.opt[i] & ~self.pess[i] & c.local_mask)[0]
            for vi in maybe.tolist():
                expr = exprs[(u, c.nodes[vi])]
                if expr.evaluate_partial(values) == TRUE or (
                    expr.is_const() and expr.evaluate({})
                ):
                    out[u].add(c.nodes[vi])
        return out
