"""Algorithm dGPMt: two-round simulation on distributed trees (Section 5.2).

Preconditions (Corollary 4): ``G`` is a rooted directed tree and every
fragment is a connected subtree.  Then each fragment has at most one in-node
(its subtree root) and its virtual nodes are exactly the roots of child
fragments, so the whole run needs **two** coordinator round-trips:

1. every site computes, bottom-up over its subtree, the Boolean vector of its
   root -- one equation per query node over the virtual (child-root)
   variables -- and ships that single vector to the coordinator;
2. the coordinator stitches the ``|F|`` vectors into one acyclic equation
   system, solves it bottom-up (``O(|Q||F|)``), and returns to each site the
   truth values of its virtual variables; sites finalize local matches.

Data shipment is ``O(|Q||F|)`` -- *parallel scalable* in data shipment, the
positive result the impossibility theorem leaves room for; with fixed ``|F|``
response time ``O(|Q||Fm| + |Q||F|)`` is parallel scalable too.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set

from repro.boolean.expr import BoolExpr, FALSE, TRUE, Var, conj, disj
from repro.boolean.system import EquationSystem
from repro.core.config import DgpmConfig
from repro.core.state import VarKey
from repro.errors import FragmentationError, GraphError
from repro.graph import algorithms
from repro.graph.digraph import Node
from repro.graph.pattern import Pattern
from repro.partition.fragmentation import Fragmentation
from repro.runtime.engine import SyncEngine, TickResult
from repro.runtime.messages import COORDINATOR, Message, MessageKind
from repro.runtime.metrics import RunResult
from repro.runtime.network import Network
from repro.simulation.matchrel import MatchRelation


class DgpmtSiteProgram:
    """Per-site half of dGPMt: bottom-up symbolic evaluation of a subtree.

    ``tree_state`` may be an
    :class:`~repro.core.arraystate.ArrayTreeState` (the array engine's
    vectorized bottom-up sweep); when None the sweep builds dict-keyed
    symbolic expressions directly.
    """

    def __init__(
        self,
        fid: int,
        fragmentation: Fragmentation,
        query: Pattern,
        config: DgpmConfig,
        tree_state=None,
    ) -> None:
        self.fid = fid
        self.fragment = fragmentation[fid]
        self.query = query
        self.cost = config.cost
        self.config = config
        self.tree_state = tree_state
        #: symbolic value of every local pair, filled bottom-up (dict path)
        self.exprs: Dict[VarKey, BoolExpr] = {}
        self._finalized: Dict[Node, Set[Node]] = {}

    # ------------------------------------------------------------------
    def _bottom_up(self) -> None:
        """Evaluate every local pair symbolically, leaves first.

        Virtual nodes (child-fragment roots) stay symbolic; the subtree
        structure guarantees each node is processed after all its children,
        so a single pass suffices (no fixpoint, no SCCs).
        """
        graph = self.fragment.graph
        local = self.fragment.local_nodes
        # Reverse-BFS order of the local subtree (children before parents).
        roots = [v for v in local if not any(p in local for p in graph.predecessors(v))]
        order: List[Node] = []
        stack = list(roots)
        seen: Set[Node] = set(roots)
        while stack:
            node = stack.pop()
            order.append(node)
            for child in graph.successors(node):
                if child in local and child not in seen:
                    seen.add(child)
                    stack.append(child)
        for v in reversed(order):
            v_label = graph.label(v)
            for u in self.query.nodes():
                if self.query.label(u) != v_label:
                    continue
                children = self.query.children(u)
                if not children:
                    self.exprs[(u, v)] = TRUE
                    continue
                terms: List[BoolExpr] = []
                for u_child in children:
                    want = self.query.label(u_child)
                    alts: List[BoolExpr] = []
                    for succ in graph.successors(v):
                        if graph.label(succ) != want:
                            continue
                        if succ in local:
                            alts.append(self.exprs.get((u_child, succ), FALSE))
                        else:
                            alts.append(Var((u_child, succ)))
                    terms.append(disj(alts) if alts else FALSE)
                self.exprs[(u, v)] = conj(terms)

    def _find_root(self) -> Node:
        """The unique local node with no local predecessor (subtree root)."""
        graph = self.fragment.graph
        local = self.fragment.local_nodes
        roots = [v for v in local if not any(p in local for p in graph.predecessors(v))]
        if len(roots) != 1:
            raise FragmentationError(
                f"fragment {self.fid} is not a connected subtree ({len(roots)} roots)"
            )
        return roots[0]

    def _root_vector(self) -> Dict[VarKey, BoolExpr]:
        """The Boolean vector of the fragment's subtree root."""
        root = self._find_root()
        if self.tree_state is not None:
            return self.tree_state.root_vector(root)
        graph = self.fragment.graph
        return {
            (u, root): self.exprs.get((u, root), FALSE)
            for u in self.query.nodes()
            if graph.label(root) == self.query.label(u)
        }

    # ------------------------------------------------------------------
    def on_start(self) -> TickResult:
        if self.tree_state is not None:
            self.tree_state.bottom_up()
        else:
            self._bottom_up()
        vector = self._root_vector()
        n_terms = sum(expr.n_terms for expr in vector.values()) or 1
        message = Message(
            src=self.fid,
            dst=COORDINATOR,
            kind=MessageKind.EQUATION,
            payload=(self.fid, vector),
            size_bytes=self.cost.message_header_bytes + self.cost.equation_bytes(n_terms),
        )
        return TickResult(messages=[message], halted=False)

    def on_tick(self, round_no: int, inbox: List[Message]) -> TickResult:
        values: Dict[VarKey, bool] = {}
        for message in inbox:
            if message.kind == MessageKind.VAR_VALUES:
                values.update(message.payload)
        if not values and not inbox:
            return TickResult(messages=[], halted=False)
        # Finalize: substitute the coordinator's verdicts on virtual roots.
        if self.tree_state is not None:
            self._finalized = self.tree_state.finalize(values)
            return TickResult(messages=[], halted=True)
        for (u, v), expr in self.exprs.items():
            self._finalized.setdefault(u, set())
            if expr.evaluate_partial(values) == TRUE or (
                expr.is_const() and expr.evaluate({})
            ):
                self._finalized[u].add(v)
        for u in self.query.nodes():
            self._finalized.setdefault(u, set())
        return TickResult(messages=[], halted=True)

    def collect(self) -> Message:
        payload = self._finalized
        size = self.cost.var_batch_bytes(sum(len(vs) for vs in payload.values()))
        return Message(
            src=self.fid, dst=COORDINATOR, kind=MessageKind.RESULT,
            payload=payload, size_bytes=size,
        )


class _TreeCoordinator:
    """Coordinator side: assemble the |F| root vectors, solve, reply."""

    def __init__(self, fragmentation: Fragmentation, query: Pattern, cost) -> None:
        self.fragmentation = fragmentation
        self.query = query
        self.cost = cost
        self.vectors: Dict[int, Dict[VarKey, BoolExpr]] = {}

    def __call__(self, messages: List[Message]) -> List[Message]:
        for message in messages:
            if message.kind == MessageKind.EQUATION:
                fid, vector = message.payload
                self.vectors[fid] = vector
        if len(self.vectors) < self.fragmentation.n_fragments:
            return []
        # All partial answers in: one acyclic system over root variables.
        equations: Dict[VarKey, BoolExpr] = {}
        for vector in self.vectors.values():
            equations.update(vector)
        system = EquationSystem(equations)
        externals = {name: False for name in system.external_parameters()}
        solved = system.solve_acyclic(externals)

        replies: List[Message] = []
        for frag in self.fragmentation:
            values: Dict[VarKey, bool] = {}
            for v in frag.virtual_nodes:
                for u in self.query.nodes():
                    if self.query.label(u) == frag.graph.label(v):
                        values[(u, v)] = solved.get((u, v), False)
            replies.append(
                Message(
                    src=COORDINATOR,
                    dst=frag.fid,
                    kind=MessageKind.VAR_VALUES,
                    payload=values,
                    size_bytes=self.cost.var_batch_bytes(len(values)),
                )
            )
        return replies


def execute_dgpmt(
    query: Pattern,
    fragmentation: Fragmentation,
    config: Optional[DgpmConfig] = None,
    engine: str = "dict",
    compiled=None,
) -> RunResult:
    """One dGPMt evaluation (two coordinator round-trips).

    ``engine``/``compiled`` as in :func:`~repro.core.dgpm.execute_dgpm`.
    """
    config = config or DgpmConfig()
    cost = config.cost
    start = time.perf_counter()
    if not algorithms.is_tree(fragmentation.graph):
        raise GraphError("dGPMt requires a rooted directed tree data graph")
    if not fragmentation.has_connected_fragments():
        raise FragmentationError("dGPMt requires connected fragments")

    tree_states = None
    if engine != "dict":
        from repro.core.arraycompile import CompiledFragmentation, validate_engine
        from repro.core.arraystate import ArrayTreeState

        validate_engine(engine)
        if compiled is None:
            compiled = CompiledFragmentation(fragmentation)

        def tree_states(fid):
            return ArrayTreeState(compiled.get(fid), query, compiled.interner)

    network = Network(cost)
    for frag in fragmentation:
        network.send(
            Message(
                src=COORDINATOR, dst=frag.fid, kind=MessageKind.QUERY, payload=query,
                size_bytes=cost.query_bytes(query.n_nodes, query.n_edges),
            )
        )
    network.deliver()

    programs = {
        frag.fid: DgpmtSiteProgram(
            frag.fid,
            fragmentation,
            query,
            config,
            tree_state=tree_states(frag.fid) if tree_states is not None else None,
        )
        for frag in fragmentation
    }
    coordinator = _TreeCoordinator(fragmentation, query, cost)
    engine = SyncEngine(programs, network, cost, coordinator_inbox_handler=coordinator)
    engine.run_fixpoint()
    results = engine.collect_results()
    network.deliver()

    merged: Dict[Node, Set[Node]] = {u: set() for u in query.nodes()}
    assemble_start = time.perf_counter()
    for message in results:
        for u, vs in message.payload.items():
            merged[u] |= vs
    relation = MatchRelation(query.nodes(), merged)
    assemble_time = time.perf_counter() - assemble_start

    wall = time.perf_counter() - start
    metrics = engine.metrics("dGPMt", wall_seconds=wall, extra_compute=assemble_time)
    return RunResult(relation=relation, metrics=metrics)


def run_dgpmt(
    query: Pattern,
    fragmentation: Fragmentation,
    config: Optional[DgpmConfig] = None,
) -> RunResult:
    """Evaluate ``query`` on a distributed tree with dGPMt (Corollary 4).

    Raises :class:`~repro.errors.GraphError` if ``G`` is not a rooted tree or
    :class:`~repro.errors.FragmentationError` if fragments are not connected.

    One-shot convenience over :class:`~repro.session.SimulationSession`.
    """
    from repro.session import SimulationSession

    return SimulationSession(fragmentation, config=config).run(query, algorithm="dgpmt")
