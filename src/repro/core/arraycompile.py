"""Columnar fragment snapshots for the array-native engine (``engine="array"``).

The dict engine evaluates a query over Python dict-of-sets state
(:class:`~repro.core.state.LocalEvalState`); the array engine instead
compiles every fragment once into a :class:`CompiledFragment` -- dense node
ids, labels interned to dense ints via the session's
:class:`~repro.session.cache.LabelInterner`, CSR adjacency in both
directions, and boundary index arrays -- so per-query evaluation
(:mod:`repro.core.arraystate`) is numpy kernels over flat arrays instead of
per-pair Python loops.

Compilation is *per graph*, not per query, which is why it lives behind
:class:`CompiledFragmentation`: a cache keyed by each fragment graph's
mutation stamp (:attr:`~repro.graph.digraph.DiGraph.version`) plus the
identity of the fragment's boundary frozensets (``Vi``/``Fi.O``/``Fi.I`` are
*replaced*, never mutated, by the fragmentation maintenance layer, so an
identity check is exact even when the graph itself did not change -- e.g. a
crossing-edge delete that only drops an in-node marker on the target
fragment).  A :class:`~repro.session.SimulationSession` holds one such cache
for its resident fragmentation; mutations invalidate exactly the fragments
they touched, and the next array-engine query recompiles only those.

numpy is imported lazily: the dict engine (and everything else in the
package) stays importable without it, and requesting ``engine="array"``
without numpy raises a single clear :class:`RuntimeError`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.partition.fragment import Fragment
from repro.partition.fragmentation import Fragmentation
from repro.session.cache import LabelInterner

_np = None


def require_numpy():
    """Return the numpy module, or raise a clear error if it is missing.

    Every array-engine entry point funnels through this, so the failure mode
    of a numpy-less install is one actionable message instead of an
    ImportError deep inside a kernel.
    """
    global _np
    if _np is None:
        try:
            import numpy
        except ImportError:
            raise RuntimeError(
                "engine='array' requires numpy, which is not installed; "
                "install numpy (pip install numpy) or use engine='dict'"
            ) from None
        _np = numpy
    return _np


def have_numpy() -> bool:
    """True iff the array engine can run in this interpreter."""
    try:
        require_numpy()
    except RuntimeError:
        return False
    return True


# ----------------------------------------------------------------------
# CSR kernels shared by the array evaluators
# ----------------------------------------------------------------------

def gather_csr(indptr, indices, rows):
    """Concatenated adjacency of ``rows``: ``indices[indptr[r]:indptr[r+1]]``.

    Returns ``(neighbors, counts)`` where ``counts[k]`` is the degree of
    ``rows[k]`` -- the segment boundaries that :func:`segment_any` /
    :func:`segment_sum` consume.  Pure integer arithmetic, no Python loop.
    """
    np = require_numpy()
    starts = indptr[rows]
    counts = indptr[rows + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=indices.dtype), counts
    # position j of the output belongs to segment k and offset j - seg_start;
    # np.repeat expands per-row starts, the arange supplies in-segment offsets
    seg_starts = np.repeat(np.cumsum(counts) - counts, counts)
    flat = np.arange(total, dtype=np.int64) - seg_starts + np.repeat(starts, counts)
    return indices[flat], counts


def segment_any(values, counts):
    """Per-segment ``any`` of a flat bool array split by ``counts``.

    ``values`` is the concatenation of variable-length segments (as produced
    by :func:`gather_csr`); empty segments yield False.
    """
    np = require_numpy()
    cs = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(values, dtype=np.int64)))
    ends = np.cumsum(counts)
    return (cs[ends] - cs[ends - counts]) > 0


def segment_sum_full(values, indptr):
    """Per-node sum of ``values`` (one entry per CSR slot) over all nodes."""
    np = require_numpy()
    cs = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(values, dtype=np.int64)))
    return cs[indptr[1:]] - cs[indptr[:-1]]


# ----------------------------------------------------------------------
# compiled fragments
# ----------------------------------------------------------------------

class CompiledFragment:
    """One fragment's columnar snapshot (see the module docstring).

    All arrays are indexed by the fragment graph's dense node ids
    (``nodes[i]`` is the node object behind id ``i``); ``local_mask`` /
    ``virtual_mask`` / ``in_mask`` encode the Section-2.2 boundary sets.
    """

    __slots__ = (
        "fid", "nodes", "index", "labels",
        "local_mask", "virtual_mask", "in_mask", "virtual_idx",
        "fwd_indptr", "fwd_indices", "rev_indptr", "rev_indices",
        "graph_version", "_local_ref", "_virtual_ref", "_in_ref",
        "_tree_levels", "gids", "_gid_map", "_g2l", "_routes",
        "_label_rows", "_count_cols",
    )

    def __init__(
        self,
        fragment: Fragment,
        interner: LabelInterner,
        gid_map: Optional[Dict] = None,
    ) -> None:
        np = require_numpy()
        graph = fragment.graph
        (self.nodes, self.index, self.fwd_indptr, self.fwd_indices,
         self.rev_indptr, self.rev_indices) = graph.dense_csr()
        self.fid = fragment.fid
        n = len(self.nodes)
        labels = graph.labels()
        self.labels = np.fromiter(
            (interner.intern(labels[v]) for v in self.nodes),
            dtype=np.int64,
            count=n,
        )
        self.local_mask = np.zeros(n, dtype=bool)
        self.virtual_mask = np.zeros(n, dtype=bool)
        self.in_mask = np.zeros(n, dtype=bool)
        for v in fragment.local_nodes:
            self.local_mask[self.index[v]] = True
        for v in fragment.virtual_nodes:
            self.virtual_mask[self.index[v]] = True
        for v in fragment.in_nodes:
            self.in_mask[self.index[v]] = True
        self.virtual_idx = np.nonzero(self.virtual_mask)[0]
        self.graph_version = graph.version
        # Identity-stable references for the freshness check: the maintenance
        # layer replaces these frozensets wholesale on any boundary change.
        self._local_ref = fragment.local_nodes
        self._virtual_ref = fragment.virtual_nodes
        self._in_ref = fragment.in_nodes
        self._tree_levels: Optional[List] = None
        # Cross-fragment dense ids: when built under a CompiledFragmentation,
        # every node gets one id shared by all fragments, so falsifications
        # travel between sites as flat int arrays (no per-pair tuples).
        self._gid_map = gid_map
        self.gids = None
        if gid_map is not None:
            ids = []
            for v in self.nodes:
                gi = gid_map.get(v)
                if gi is None:
                    gi = len(gid_map)
                    gid_map[v] = gi
                ids.append(gi)
            self.gids = np.asarray(ids, dtype=np.int64)
        self._g2l = None
        self._routes = None
        self._label_rows: Dict[int, object] = {}
        self._count_cols: Dict[int, object] = {}

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def is_fresh(self, fragment: Fragment) -> bool:
        """True iff this snapshot still describes ``fragment`` exactly."""
        return (
            fragment.graph.version == self.graph_version
            and fragment.local_nodes is self._local_ref
            and fragment.virtual_nodes is self._virtual_ref
            and fragment.in_nodes is self._in_ref
        )

    def label_row(self, lab: int):
        """Cached bool row: which nodes carry interned label ``lab``.

        Query-independent (labels are a property of the snapshot), so one
        row per distinct label serves every query.  Treat as read-only.
        """
        row = self._label_rows.get(lab)
        if row is None:
            row = self.labels == lab
            self._label_rows[lab] = row
        return row

    def count_col(self, lab: int):
        """Cached int column: per node, how many successors carry ``lab``.

        This is the HHK counter seed for any query node labelled ``lab``
        (before falsifications), again query-independent.  Treat as
        read-only -- evaluation states copy it into their counter matrix.
        """
        col = self._count_cols.get(lab)
        if col is None:
            col = segment_sum_full(
                self.label_row(lab)[self.fwd_indices], self.fwd_indptr
            )
            self._count_cols[lab] = col
        return col

    def g2l(self):
        """Global-id -> local dense id (or -1), for vectorized receives.

        Built lazily on first receive, so the table covers every global id
        assigned up to that point; ids a site must resolve are its own
        virtual nodes, all registered no later than its own compilation.
        """
        if self._g2l is None:
            np = require_numpy()
            arr = np.full(len(self._gid_map), -1, dtype=np.int64)
            arr[self.gids] = np.arange(self.n_nodes, dtype=np.int64)
            self._g2l = arr
        return self._g2l

    def shipping_routes(self, deps):
        """``(group_of, groups)``: per-in-node watcher routing, vectorizable.

        ``group_of[dense_id]`` is an index into ``groups`` (distinct watcher
        site tuples) for in-nodes, -1 elsewhere.  Cached per
        ``deps.version`` -- fragmentation patches that change watcher sets
        without touching this fragment's snapshot still invalidate it.
        """
        if self._routes is not None:
            cached_deps, cached_version, table = self._routes
            if cached_deps is deps and cached_version == deps.version:
                return table
        np = require_numpy()
        group_of = np.full(self.n_nodes, -1, dtype=np.int64)
        groups: List[Tuple[int, ...]] = []
        sig: Dict[Tuple[int, ...], int] = {}
        for vid in np.nonzero(self.in_mask)[0].tolist():
            peers = tuple(sorted(deps.watcher_sites(self.fid, self.nodes[vid])))
            gi = sig.get(peers)
            if gi is None:
                gi = len(groups)
                sig[peers] = gi
                groups.append(peers)
            group_of[vid] = gi
        table = (group_of, groups)
        self._routes = (deps, deps.version, table)
        return table

    def tree_levels(self) -> List:
        """Local nodes grouped by height in the local subtree, leaves first.

        Level ``k`` holds every local node all of whose local successors sit
        in levels ``< k`` -- the bottom-up schedule dGPMt's array evaluator
        vectorizes over.  Built lazily (only tree workloads need it) and
        cached on the snapshot (pure structure, same lifetime).
        """
        if self._tree_levels is not None:
            return self._tree_levels
        np = require_numpy()
        n = self.n_nodes
        # remaining local out-degree of each local node
        local_succ = self.local_mask[self.fwd_indices]
        remaining = segment_sum_full(local_succ, self.fwd_indptr)
        placed = ~self.local_mask  # virtual nodes are never scheduled
        frontier = np.nonzero(self.local_mask & (remaining == 0))[0]
        levels: List = []
        while frontier.size:
            levels.append(frontier)
            placed[frontier] = True
            preds, _ = gather_csr(self.rev_indptr, self.rev_indices, frontier)
            if preds.size == 0:
                frontier = np.empty(0, dtype=np.int64)
                continue
            dec = np.bincount(preds, minlength=n)
            remaining = remaining - dec
            frontier = np.nonzero(~placed & (remaining == 0) & self.local_mask)[0]
        self._tree_levels = levels
        return levels

    def __repr__(self) -> str:
        return (
            f"CompiledFragment(fid={self.fid}, n_nodes={self.n_nodes}, "
            f"n_edges={len(self.fwd_indices)})"
        )


class CompiledFragmentation:
    """Per-graph compiled-CSR cache over one resident fragmentation.

    ``get(fid)`` returns a fresh :class:`CompiledFragment`, recompiling only
    when the fragment's mutation stamp moved (graph version or replaced
    boundary sets) -- a query stream over a mutating graph recompiles
    exactly the fragments each update touched.
    """

    def __init__(
        self,
        fragmentation: Fragmentation,
        interner: Optional[LabelInterner] = None,
    ) -> None:
        require_numpy()
        self.fragmentation = fragmentation
        self.interner = interner if interner is not None else LabelInterner()
        #: node -> global dense id, shared by every compiled fragment (grows
        #: monotonically; recompiles reuse existing ids)
        self.gid_map: Dict = {}
        self._compiled: Dict[int, CompiledFragment] = {}
        #: compilations performed (observability: tests assert the cache
        #: recompiles exactly the mutated fragments, benchmarks report it)
        self.compilations = 0

    def get(self, fid: int) -> CompiledFragment:
        fragment = self.fragmentation[fid]
        entry = self._compiled.get(fid)
        if entry is None or not entry.is_fresh(fragment):
            entry = CompiledFragment(fragment, self.interner, gid_map=self.gid_map)
            self._compiled[fid] = entry
            self.compilations += 1
        return entry

    def warm(self) -> "CompiledFragmentation":
        """Compile every fragment now (otherwise each compiles on first use)."""
        for frag in self.fragmentation:
            self.get(frag.fid)
        return self

    def __len__(self) -> int:
        return len(self._compiled)


#: engines the execution layer understands; session and execute_* validate
#: against this so the error message has one source of truth
ENGINES: Tuple[str, ...] = ("dict", "array")


def validate_engine(engine: str) -> str:
    """Normalize and validate an engine name; raises ``ValueError`` if unknown."""
    name = engine.lower()
    if name not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r} (known: {', '.join(ENGINES)})"
        )
    return name
