"""Per-site partial evaluation state: the engine room of lEval (Section 4.1).

One :class:`LocalEvalState` holds, for one fragment ``Fi``:

* candidate sets ``sim(u)`` over the fragment's nodes (local *and* virtual);
  virtual nodes are *optimistically* assumed to match whenever their label
  agrees (``"it always assumes the unevaluated virtual nodes as match
  candidates"``), because graph simulation is a greatest fixpoint;
* successor counters ``count[(v, u')] = |succ(v) ∩ sim(u')|`` for local
  ``v`` -- the standard HHK bookkeeping, restricted to the fragment.

Falsifications propagate through a worklist: removing a node from ``sim(u')``
decrements its predecessors' counters, and a counter hitting zero falsifies
the predecessor pair.  Processing a message this way touches *only the
affected area* -- the counter worklist **is** the paper's incremental lEval
with its ``O(|AFF|)`` guarantee.  The non-incremental dGPMNOpt instead calls
:func:`recompute_from_scratch` on every message batch.

The symbolic side (:meth:`LocalEvalState.in_node_equations`) reduces each
in-node variable to a Boolean equation over virtual-node variables only,
reproducing the paper's Example-6 table; the push operation ships those
equations.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Set, Tuple

from repro.boolean.expr import BoolExpr, FALSE, TRUE, Var, conj, disj
from repro.boolean.system import EquationSystem
from repro.graph.digraph import Node
from repro.graph.pattern import Pattern
from repro.partition.fragment import Fragment

#: A Boolean variable key ``X(u, v)``: (query node, data node).
VarKey = Tuple[Node, Node]


class LocalEvalState:
    """Counter-based partial evaluation of a pattern on one fragment."""

    def __init__(
        self,
        fragment: Fragment,
        query: Pattern,
        known_false_virtual: Iterable[VarKey] = (),
    ) -> None:
        self.fragment = fragment
        self.query = query
        graph = fragment.graph

        #: sim[u] -- not-yet-falsified candidates among the fragment's nodes
        #: (served from the graph's lazy label index, no full-graph scan)
        self.sim: Dict[Node, Set[Node]] = {}
        for u in query.nodes():
            self.sim[u] = set(graph.nodes_with_label(query.label(u)))

        # Pre-apply falsifications of virtual variables already known
        # (used by the from-scratch recomputation of dGPMNOpt).
        pre_removed: List[VarKey] = []
        for u, v in known_false_virtual:
            if v in self.sim.get(u, ()):
                self.sim[u].discard(v)
                pre_removed.append((u, v))

        #: count[(v, u')] for local v: successors of v still in sim(u')
        #: -- seeded from the graph's successor-label counts; before the
        #: pre-removals below, succ(v) ∩ sim(u') is exactly the successors
        #: of v labeled fv(u').
        self.count: Dict[Tuple[Node, Node], int] = {}
        relevant = [u for u in query.nodes() if query.parents(u)]
        for v in fragment.local_nodes:
            slc = graph.successor_label_counts(v)
            for u_child in relevant:
                self.count[(v, u_child)] = slc.get(query.label(u_child), 0)
        # Discount pre-removed candidates: their (all-local) predecessors no
        # longer see them in sim(u).
        for u, v in pre_removed:
            for v_pred in graph.predecessors(v):
                key = (v_pred, u)
                if key in self.count:
                    self.count[key] -= 1

        self._worklist: Deque[VarKey] = deque()
        self._newly_false: List[VarKey] = []
        self._initialized = False

    # ------------------------------------------------------------------
    # fixpoint machinery
    # ------------------------------------------------------------------
    def run_initial(self) -> List[VarKey]:
        """Seed with all local violations and propagate to the local fixpoint.

        Returns every falsified variable of a *local* node, in removal order.
        """
        if self._initialized:
            raise RuntimeError("run_initial may only be called once")
        self._initialized = True
        local = self.fragment.local_nodes
        for u in self.query.nodes():
            children = self.query.children(u)
            if not children:
                continue
            for v in [v for v in self.sim[u] if v in local]:
                if any(self.count[(v, u_child)] == 0 for u_child in children):
                    self.sim[u].discard(v)
                    self._worklist.append((u, v))
                    self._newly_false.append((u, v))
        self._propagate()
        return self.drain_newly_false()

    def falsify_virtual(self, pairs: Iterable[VarKey]) -> List[VarKey]:
        """Apply falsifications of virtual variables received from other sites.

        Incremental: touches only the affected area.  Returns the local
        variables newly falsified in response.  Duplicate or unknown pairs
        are ignored (messages may arrive twice after a push rewire).
        """
        for u, v in pairs:
            if v in self.sim.get(u, ()):
                self.sim[u].discard(v)
                self._worklist.append((u, v))
        self._propagate()
        return self.drain_newly_false()

    def _propagate(self) -> None:
        query = self.query
        graph = self.fragment.graph
        local = self.fragment.local_nodes
        while self._worklist:
            u_rm, v_rm = self._worklist.popleft()
            if v_rm not in graph:
                # A remove_node cascade already detached v_rm from this
                # fragment; its predecessors' counters were adjusted by the
                # cascade's own edge deletions (in-edges repair first).
                continue
            for v_pred in graph.predecessors(v_rm):
                # All predecessors are local: fragments never store
                # out-edges of virtual nodes.
                key = (v_pred, u_rm)
                if key not in self.count:
                    continue
                self.count[key] -= 1
                if self.count[key] == 0:
                    for u_parent in query.parents(u_rm):
                        if v_pred in self.sim[u_parent]:
                            self.sim[u_parent].discard(v_pred)
                            self._worklist.append((u_parent, v_pred))
                            if v_pred in local:
                                self._newly_false.append((u_parent, v_pred))

    def drain_newly_false(self) -> List[VarKey]:
        """Take (and clear) the buffer of newly falsified local variables."""
        out = self._newly_false
        self._newly_false = []
        return out

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def local_matches(self) -> Dict[Node, Set[Node]]:
        """Current candidates restricted to local nodes (the site's answer)."""
        local = self.fragment.local_nodes
        return {u: {v for v in vs if v in local} for u, vs in self.sim.items()}

    def virtual_candidates(self) -> List[VarKey]:
        """Virtual variables still assumed true (the paper's ``Fi.O'``)."""
        virtual = self.fragment.virtual_nodes
        return [(u, v) for u, vs in self.sim.items() for v in vs if v in virtual]

    def is_candidate(self, u: Node, v: Node) -> bool:
        """True iff ``X(u, v)`` has not been falsified."""
        return v in self.sim.get(u, ())

    # ------------------------------------------------------------------
    # symbolic equations (Example 6, push, dGPMt)
    # ------------------------------------------------------------------
    def equation_system(self) -> EquationSystem:
        """The local Boolean equation system over not-yet-falsified pairs.

        Internal variables are ``(u, v)`` with ``v`` local; external
        parameters are virtual pairs.  Definitively-true pairs (childless
        query nodes) appear as TRUE.
        """
        equations: Dict[VarKey, BoolExpr] = {}
        graph = self.fragment.graph
        local = self.fragment.local_nodes
        for u in self.query.nodes():
            children = self.query.children(u)
            for v in self.sim[u]:
                if v not in local:
                    continue
                if not children:
                    equations[(u, v)] = TRUE
                    continue
                terms = []
                for u_child in children:
                    targets = self.sim[u_child]
                    alts = [
                        Var((u_child, succ))
                        for succ in graph.successors(v)
                        if succ in targets
                    ]
                    terms.append(disj(alts) if alts else FALSE)
                equations[(u, v)] = conj(terms)
        return EquationSystem(equations)

    def in_node_equations(self, max_terms: int = 4096) -> Dict[VarKey, BoolExpr]:
        """Each unresolved in-node variable, reduced to virtual variables only.

        This is exactly the per-in-node table of the paper's Example 6.
        Variables of in-nodes that are already definitively true reduce to
        TRUE; falsified ones are simply absent (their falsity was shipped).
        """
        system = self.equation_system()
        in_vars = [
            (u, v)
            for u in self.query.nodes()
            for v in self.sim[u]
            if v in self.fragment.in_nodes
        ]
        return system.reduced_system(keep=in_vars, max_terms=max_terms).as_dict()
