"""Local dependency graphs ``G_d^i`` (Section 4.1).

Site ``Si`` must know, for each of its in-nodes ``v``, which sites hold ``v``
as a virtual node -- those are the sites waiting for the truth values of
``X(u, v)``.  The paper computes this offline by sharing virtual/in-node
identifiers [26, 28]; here it is derived from the
:class:`~repro.partition.fragmentation.Fragmentation` once per run and handed
to every site program.

The structure is bidirectional because the push operation (Section 4.2) also
needs the *children* direction: for each virtual node of ``Si``, the owning
site.

The tables are *patchable*: :meth:`DependencyGraphs.apply_delta` absorbs a
:class:`~repro.partition.fragmentation.MutationDelta` from the
fragmentation's in-place mutation API, updating only the touched
watcher/owner entries -- a session serving queries over a mutating graph
never rebuilds them (see :class:`repro.session.SimulationSession`).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.graph.digraph import Node
from repro.partition.fragmentation import Fragmentation, MutationDelta


class DependencyGraphs:
    """All sites' local dependency graphs, computed from the fragmentation."""

    def __init__(self, fragmentation: Fragmentation) -> None:
        n = fragmentation.n_fragments
        #: watchers[i][v] = sites (other than i) holding in-node v of Fi as virtual
        self.watchers: List[Dict[Node, Set[int]]] = [dict() for _ in range(n)]
        #: owners[i][v'] = owning site of virtual node v' of Fi
        self.owners: List[Dict[Node, int]] = [dict() for _ in range(n)]
        #: bumped on every patch -- caches derived from the watcher tables
        #: (e.g. the array engine's shipping routes) key on this
        self.version = 0
        for frag in fragmentation:
            for v in frag.virtual_nodes:
                owner = frag.owner_of_virtual(v)
                self.owners[frag.fid][v] = owner
                self.watchers[owner].setdefault(v, set()).add(frag.fid)

    def apply_delta(self, delta: MutationDelta) -> None:
        """Patch the watcher/owner tables after one fragmentation update.

        Only boundary transitions matter: a crossing edge whose source
        fragment stops (starts) holding ``v`` as a virtual node removes
        (adds) one watcher entry.  Local edges, and crossing edges that leave
        ``Fi.O`` membership unchanged, are no-ops here.  Composite deltas
        (``remove_node``) replay their cascade of edge deletions; the node
        drop itself moves no boundary metadata (the node is isolated by
        then).
        """
        if delta.cascade:
            for edge_delta in delta.cascade:
                self.apply_delta(edge_delta)
            return
        self.version += 1
        if delta.virtual_dropped:
            self.owners[delta.source_fid].pop(delta.v, None)
            sites = self.watchers[delta.target_fid].get(delta.v)
            if sites is not None:
                sites.discard(delta.source_fid)
                if not sites:
                    del self.watchers[delta.target_fid][delta.v]
        if delta.virtual_added:
            self.owners[delta.source_fid][delta.v] = delta.target_fid
            self.watchers[delta.target_fid].setdefault(delta.v, set()).add(delta.source_fid)

    def watcher_sites(self, fid: int, in_node: Node) -> Set[int]:
        """Sites that must be told when an ``X(u, in_node)`` of site ``fid`` flips."""
        return self.watchers[fid].get(in_node, set())

    def owner_site(self, fid: int, virtual: Node) -> int:
        """Owning site of ``virtual`` as seen from site ``fid``."""
        return self.owners[fid][virtual]

    def edges(self, fid: int) -> List[Tuple[int, int, FrozenSet[Node]]]:
        """Site ``fid``'s dependency edges ``(Sj, Si)`` with their annotations.

        Mirrors the paper's Example 5: edge ``(Sj, Si)`` annotated with the
        in-nodes of ``Si`` that are virtual in ``Sj``.
        """
        by_peer: Dict[int, Set[Node]] = {}
        for node, sites in self.watchers[fid].items():
            for peer in sites:
                by_peer.setdefault(peer, set()).add(node)
        return [(peer, fid, frozenset(nodes)) for peer, nodes in sorted(by_peer.items())]
