"""Configuration of the dGPM family of algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.runtime.costmodel import CostModel, DEFAULT_COST


@dataclass(frozen=True)
class DgpmConfig:
    """Knobs for :func:`repro.core.dgpm.run_dgpm` and friends.

    ``incremental`` and ``enable_push`` are the two Section-4.2 optimizations;
    disabling both gives the paper's dGPMNOpt baseline.  ``push_threshold`` is
    the paper's θ (fixed to 0.2 in their experiments).
    """

    #: incremental local evaluation (counter propagation) instead of
    #: recomputing the whole local fixpoint on every message batch
    incremental: bool = True
    #: enable the push operation (ship Boolean equations to parent sites)
    enable_push: bool = True
    #: θ: push triggers when B(Si) = |Fi.O'| / (m * |Fi.I'|) >= θ
    push_threshold: float = 0.2
    #: cap on the size of shipped equations (falls back to value shipping)
    push_max_terms: int = 2048
    #: report only the Boolean answer (smaller result collection)
    boolean_only: bool = False
    #: adversarial asynchrony: ``(seed, fraction)`` makes the network release
    #: only a random ``fraction`` of queued messages per round (dGPM's
    #: fixpoint is schedule-independent -- Section 4.1; only honoured by
    #: run_dgpm, since dGPMd/dGPMt/dMes rely on synchronized rounds)
    scramble: Optional[Tuple[int, float]] = None
    #: wire sizes and link model
    cost: CostModel = field(default_factory=lambda: DEFAULT_COST)

    def without_optimizations(self) -> "DgpmConfig":
        """The dGPMNOpt variant of this configuration."""
        return DgpmConfig(
            incremental=False,
            enable_push=False,
            push_threshold=self.push_threshold,
            push_max_terms=self.push_max_terms,
            boolean_only=self.boolean_only,
            scramble=self.scramble,
            cost=self.cost,
        )
