"""Algorithm selection: pick the strongest applicable guarantee.

The paper's hierarchy (Sections 4-5): trees admit parallel-scalable data
shipment (dGPMt); DAG queries/graphs admit rank scheduling (dGPMd); general
graphs get the partition-bounded dGPM.  :func:`run_auto` applies the first
algorithm whose precondition holds.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import DgpmConfig
from repro.core.dgpm import run_dgpm
from repro.core.dgpmd import run_dgpmd
from repro.core.dgpmt import run_dgpmt
from repro.graph import algorithms
from repro.graph.pattern import Pattern
from repro.partition.fragmentation import Fragmentation
from repro.runtime.metrics import RunResult


def choose_algorithm(query: Pattern, fragmentation: Fragmentation) -> str:
    """Name of the algorithm :func:`run_auto` would use."""
    graph = fragmentation.graph
    if algorithms.is_tree(graph) and fragmentation.has_connected_fragments():
        return "dGPMt"
    if query.is_dag() or algorithms.is_dag(graph):
        return "dGPMd"
    return "dGPM"


def run_auto(
    query: Pattern,
    fragmentation: Fragmentation,
    config: Optional[DgpmConfig] = None,
) -> RunResult:
    """Evaluate ``query`` with the best algorithm for the instance's shape."""
    name = choose_algorithm(query, fragmentation)
    if name == "dGPMt":
        return run_dgpmt(query, fragmentation, config)
    if name == "dGPMd":
        return run_dgpmd(query, fragmentation, config)
    return run_dgpm(query, fragmentation, config)
