"""Algorithm dGPM: partition-bounded distributed graph simulation (Section 4).

Protocol, exactly as the paper's three phases:

1. **Partial evaluation** -- the coordinator broadcasts ``Q``; every site runs
   lEval (:class:`~repro.core.state.LocalEvalState`) in parallel, assuming
   virtual nodes match optimistically, and ships the falsifications of its
   in-node variables, one ``X(u, v) := false`` message per watcher site
   (the paper's Example 9 counts individual variables as messages).
2. **Message passing** -- on receiving falsifications of its virtual
   variables, a site re-evaluates (incrementally by default; from scratch in
   the dGPMNOpt ablation) and ships newly falsified in-node variables, guided
   by its local dependency graph.  A changed-flag goes to the coordinator.
   The *push* optimization (Section 4.2) may ship Boolean equations instead,
   re-wiring the dependency graph to bypass slow chains; see
   :class:`_PushState`.
3. **Assembly** -- sites ship local matches; the coordinator unions them and
   collapses to the empty relation when some query node has no match.

Falsification-only shipping bounds DS by ``O(|Ef| |Vq|)`` and the round count
by ``O(|Vf| |Vq|)`` (each round falsifies at least one boundary variable) --
Theorem 2.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.boolean.expr import BoolExpr, FALSE
from repro.boolean.system import EquationBlowupError
from repro.core.config import DgpmConfig
from repro.core.depgraph import DependencyGraphs
from repro.core.state import LocalEvalState, VarKey
from repro.graph.digraph import Node
from repro.graph.pattern import Pattern
from repro.partition.fragmentation import Fragmentation
from repro.runtime.engine import SyncEngine, TickResult
from repro.runtime.messages import COORDINATOR, Message, MessageKind
from repro.runtime.metrics import RunResult
from repro.runtime.network import Network
from repro.simulation.matchrel import MatchRelation


class _PushState:
    """Per-site bookkeeping for pushed (inlined) Boolean equations.

    When a child site pushes the equation of a virtual variable, this site
    becomes responsible for evaluating it from grandchild falsifications.
    ``equations[(u, v)]`` is the pending expression; leaves are variables
    owned by other sites.  ``leaf_index`` maps each leaf to the pushed
    variables mentioning it.
    """

    def __init__(self) -> None:
        self.equations: Dict[VarKey, BoolExpr] = {}
        self.leaf_index: Dict[VarKey, Set[VarKey]] = {}
        self.known_false_leaves: Set[VarKey] = set()

    def add(self, var: VarKey, expr: BoolExpr) -> Optional[VarKey]:
        """Register a pushed equation; returns ``var`` if already false."""
        expr = expr.substitute({leaf: FALSE for leaf in self.known_false_leaves})
        if expr == FALSE:
            return var
        self.equations[var] = expr
        for leaf in expr.variables():
            self.leaf_index.setdefault(leaf, set()).add(var)
        return None

    def on_leaf_false(self, leaf: VarKey) -> List[VarKey]:
        """A grandchild falsified ``leaf``; returns pushed vars now false."""
        self.known_false_leaves.add(leaf)
        out: List[VarKey] = []
        for var in list(self.leaf_index.get(leaf, ())):
            expr = self.equations.get(var)
            if expr is None:
                continue
            expr = expr.substitute({leaf: FALSE})
            if expr == FALSE:
                del self.equations[var]
                out.append(var)
            else:
                self.equations[var] = expr
        return out


class DgpmSiteProgram:
    """The per-site half of dGPM (procedures lEval + lMsg)."""

    def __init__(
        self,
        fid: int,
        fragmentation: Fragmentation,
        query: Pattern,
        deps: DependencyGraphs,
        config: DgpmConfig,
    ) -> None:
        self.fid = fid
        self.fragment = fragmentation[fid]
        self.query = query
        self.deps = deps
        self.config = config
        self.cost = config.cost
        self.state = LocalEvalState(self.fragment, query)
        #: falsified virtual vars accumulated so far (for from-scratch mode
        #: and for de-duplicating deliveries after a push rewire)
        self.known_false_virtual: Set[VarKey] = set()
        #: in-node vars whose falsity we already shipped
        self.shipped: Set[VarKey] = set()
        #: extra watchers added by rewire messages: var -> site ids
        self.extra_watchers: Dict[VarKey, Set[int]] = {}
        #: vars delegated away by our own push (no VAR_UPDATE needed anymore,
        #: but we keep shipping for safety -- receivers de-duplicate)
        self.pushed_vars: Set[VarKey] = set()
        self.push_done = False
        self.pushes_triggered = 0
        self.push_state = _PushState()

    # ------------------------------------------------------------------
    # lMsg: route falsifications along the dependency graph
    # ------------------------------------------------------------------
    def _messages_for(self, falsified: Iterable[VarKey]) -> List[Message]:
        out: List[Message] = []
        in_nodes = self.fragment.in_nodes
        for u, v in falsified:
            if v not in in_nodes or (u, v) in self.shipped:
                continue
            if not self.query.parents(u) and (u, v) not in self.extra_watchers:
                # No query edge targets u, so no site's equation can mention
                # X(u, v); shipping it would be pure waste (Example 9 counts
                # confirm the paper skips these).
                continue
            self.shipped.add((u, v))
            targets = set(self.deps.watcher_sites(self.fid, v))
            targets |= self.extra_watchers.get((u, v), set())
            for peer in sorted(targets):
                out.append(
                    Message(
                        src=self.fid,
                        dst=peer,
                        kind=MessageKind.VAR_UPDATE,
                        payload=[(u, v)],
                        size_bytes=self.cost.var_batch_bytes(1),
                    )
                )
        return out

    def _control_flag(self, changed: bool) -> Message:
        return Message(
            src=self.fid,
            dst=COORDINATOR,
            kind=MessageKind.CONTROL,
            payload=changed,
            size_bytes=self.cost.control_flag_bytes,
        )

    # ------------------------------------------------------------------
    # push operation (Section 4.2)
    # ------------------------------------------------------------------
    def _benefit(self, equations: Dict[VarKey, BoolExpr]) -> float:
        n_unresolved_virtual = len(self.state.virtual_candidates())
        unresolved_in = [k for k, e in equations.items() if not e.is_const()]
        m = sum(e.n_terms for k, e in equations.items() if k in set(unresolved_in))
        if not unresolved_in or m == 0:
            return 0.0
        return n_unresolved_virtual / (m * len(unresolved_in))

    def _try_push(self) -> List[Message]:
        """Ship in-node equations to watcher sites when B(Si) >= θ."""
        if self.push_done or not self.config.enable_push:
            return []
        try:
            equations = self.state.in_node_equations(self.config.push_max_terms)
        except EquationBlowupError:
            self.push_done = True
            return []
        pending = {k: e for k, e in equations.items() if not e.is_const()}
        if not pending:
            return []
        if self._benefit(equations) < self.config.push_threshold:
            return []
        self.push_done = True
        self.pushes_triggered += 1
        out: List[Message] = []
        rewires: Dict[int, List[Tuple[VarKey, int]]] = {}
        for (u, v), expr in sorted(pending.items(), key=repr):
            watchers = sorted(self.deps.watcher_sites(self.fid, v))
            for peer in watchers:
                out.append(
                    Message(
                        src=self.fid,
                        dst=peer,
                        kind=MessageKind.EQUATION,
                        payload=((u, v), expr),
                        size_bytes=self.cost.message_header_bytes
                        + self.cost.equation_bytes(expr.n_terms),
                    )
                )
                # Every leaf variable's owner must now also notify `peer`.
                for leaf_u, leaf_v in expr.variables():
                    owner = self.deps.owner_site(self.fid, leaf_v)
                    rewires.setdefault(owner, []).append(((leaf_u, leaf_v), peer))
            self.pushed_vars.add((u, v))
        for owner, entries in sorted(rewires.items()):
            out.append(
                Message(
                    src=self.fid,
                    dst=owner,
                    kind=MessageKind.REWIRE,
                    payload=entries,
                    size_bytes=self.cost.var_batch_bytes(len(entries)),
                )
            )
        return out

    # ------------------------------------------------------------------
    # engine hooks
    # ------------------------------------------------------------------
    def on_start(self) -> TickResult:
        falsified = self.state.run_initial()
        messages = self._messages_for(falsified)
        messages.extend(self._try_push())
        if messages:
            messages.append(self._control_flag(True))
        return TickResult(messages=messages, halted=True, n_falsified=len(falsified))

    def on_tick(self, round_no: int, inbox: List[Message]) -> TickResult:
        incoming: List[VarKey] = []
        late_rewire_forwards: List[Message] = []
        for message in inbox:
            if message.kind == MessageKind.VAR_UPDATE:
                for key in message.payload:
                    if key not in self.known_false_virtual:
                        self.known_false_virtual.add(key)
                        incoming.append(key)
            elif message.kind == MessageKind.EQUATION:
                var, expr = message.payload
                immediately_false = self.push_state.add(var, expr)
                if immediately_false is not None:
                    incoming.append(immediately_false)
            elif message.kind == MessageKind.REWIRE:
                for var, new_watcher in message.payload:
                    self.extra_watchers.setdefault(var, set()).add(new_watcher)
                    # If we already falsified it, forward to the new watcher
                    # so nothing is lost in flight.
                    if var in self.shipped:
                        late_rewire_forwards.append(
                            Message(
                                src=self.fid,
                                dst=new_watcher,
                                kind=MessageKind.VAR_UPDATE,
                                payload=[var],
                                size_bytes=self.cost.var_batch_bytes(1),
                            )
                        )

        # Pushed equations react to leaf falsifications as well.
        for key in list(incoming):
            for var in self.push_state.on_leaf_false(key):
                incoming.append(var)

        if not incoming:
            return TickResult(messages=late_rewire_forwards, halted=True)

        if self.config.incremental:
            falsified = self.state.falsify_virtual(incoming)
        else:
            falsified = self._recompute_from_scratch(incoming)
        messages = self._messages_for(falsified)
        messages.extend(late_rewire_forwards)
        if messages:
            messages.append(self._control_flag(True))
        return TickResult(messages=messages, halted=True, n_falsified=len(falsified))

    def _recompute_from_scratch(self, incoming: List[VarKey]) -> List[VarKey]:
        """dGPMNOpt: rebuild the whole local evaluation on every message."""
        self.state = LocalEvalState(
            self.fragment, self.query, known_false_virtual=self.known_false_virtual
        )
        self.state.run_initial()
        # Newly falsified = current false in-node candidates not yet shipped.
        out: List[VarKey] = []
        for u in self.query.nodes():
            want = self.query.label(u)
            for v in self.fragment.in_nodes:
                if self.fragment.graph.label(v) != want:
                    continue
                if not self.state.is_candidate(u, v) and (u, v) not in self.shipped:
                    out.append((u, v))
        return out

    def collect(self) -> Message:
        matches = self.state.local_matches()
        if self.config.boolean_only:
            payload = {u: bool(vs) for u, vs in matches.items()}
            size = self.cost.var_batch_bytes(len(payload))
        else:
            payload = matches
            size = self.cost.var_batch_bytes(sum(len(vs) for vs in matches.values()))
        return Message(
            src=self.fid,
            dst=COORDINATOR,
            kind=MessageKind.RESULT,
            payload=payload,
            size_bytes=size,
        )


def assemble_result(query: Pattern, result_messages: List[Message]) -> MatchRelation:
    """Coordinator phase 3: union local matches; empty if a query node is bare."""
    merged: Dict[Node, Set[Node]] = {u: set() for u in query.nodes()}
    for message in result_messages:
        for u, vs in message.payload.items():
            if isinstance(vs, bool):  # boolean_only collection
                if vs:
                    merged[u].add(("__some__", message.src, u))
            else:
                merged[u] |= vs
    return MatchRelation(query.nodes(), merged)


def execute_dgpm(
    query: Pattern,
    fragmentation: Fragmentation,
    config: Optional[DgpmConfig] = None,
    deps: Optional[DependencyGraphs] = None,
) -> RunResult:
    """One dGPM evaluation over (possibly pre-built) shared structures.

    ``deps`` may be the session's cached :class:`DependencyGraphs`; when
    omitted it is derived here, making this the full one-shot protocol.
    Drivers (:mod:`repro.session.drivers`) call this with the cached copy so
    repeated queries never pay the per-graph setup again.
    """
    config = config or DgpmConfig()
    cost = config.cost
    start = time.perf_counter()
    network = Network(cost, scramble=config.scramble)
    if deps is None:
        deps = DependencyGraphs(fragmentation)

    # Phase 1: the coordinator posts Q to every site (metered as QUERY).
    for frag in fragmentation:
        network.send(
            Message(
                src=COORDINATOR,
                dst=frag.fid,
                kind=MessageKind.QUERY,
                payload=query,
                size_bytes=cost.query_bytes(query.n_nodes, query.n_edges),
            )
        )
    while network.has_pending:  # broadcast completes before evaluation
        network.deliver()

    programs = {
        frag.fid: DgpmSiteProgram(frag.fid, fragmentation, query, deps, config)
        for frag in fragmentation
    }
    engine = SyncEngine(programs, network, cost)
    engine.run_fixpoint()
    results = engine.collect_results()
    network.deliver()

    assemble_start = time.perf_counter()
    relation = assemble_result(query, results)
    assemble_time = time.perf_counter() - assemble_start

    wall = time.perf_counter() - start
    name = "dGPM" if (config.incremental or config.enable_push) else "dGPMNOpt"
    metrics = engine.metrics(
        name,
        wall_seconds=wall,
        extra_compute=assemble_time,
        pushes=sum(p.pushes_triggered for p in programs.values()),
    )
    return RunResult(relation=relation, metrics=metrics)


def run_dgpm(
    query: Pattern,
    fragmentation: Fragmentation,
    config: Optional[DgpmConfig] = None,
) -> RunResult:
    """Evaluate ``query`` over ``fragmentation`` with dGPM (Theorem 2).

    Returns the match relation plus metered PT/DS (see
    :class:`~repro.runtime.metrics.RunMetrics`).  With
    ``config.without_optimizations()`` this is the paper's dGPMNOpt.

    One-shot convenience: equivalent to
    ``SimulationSession(fragmentation, config=config).run(query,
    algorithm="dgpm")``; for repeated querying of a resident fragmentation,
    hold a :class:`~repro.session.SimulationSession` instead.
    """
    from repro.session import SimulationSession

    return SimulationSession(fragmentation, config=config).run(query, algorithm="dgpm")
