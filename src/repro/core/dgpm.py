"""Algorithm dGPM: partition-bounded distributed graph simulation (Section 4).

Protocol, exactly as the paper's three phases:

1. **Partial evaluation** -- the coordinator broadcasts ``Q``; every site runs
   lEval (:class:`~repro.core.state.LocalEvalState`) in parallel, assuming
   virtual nodes match optimistically, and ships the falsifications of its
   in-node variables, one ``X(u, v) := false`` message per watcher site
   (the paper's Example 9 counts individual variables as messages).
2. **Message passing** -- on receiving falsifications of its virtual
   variables, a site re-evaluates (incrementally by default; from scratch in
   the dGPMNOpt ablation) and ships newly falsified in-node variables, guided
   by its local dependency graph.  A changed-flag goes to the coordinator.
   The *push* optimization (Section 4.2) may ship Boolean equations instead,
   re-wiring the dependency graph to bypass slow chains; see
   :class:`_PushState`.
3. **Assembly** -- sites ship local matches; the coordinator unions them and
   collapses to the empty relation when some query node has no match.

Falsification-only shipping bounds DS by ``O(|Ef| |Vq|)`` and the round count
by ``O(|Vf| |Vq|)`` (each round falsifies at least one boundary variable) --
Theorem 2.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.boolean.expr import BoolExpr, FALSE
from repro.boolean.system import EquationBlowupError
from repro.core.config import DgpmConfig
from repro.core.depgraph import DependencyGraphs
from repro.core.state import LocalEvalState, VarKey
from repro.graph.digraph import Node
from repro.graph.pattern import Pattern
from repro.partition.fragmentation import Fragmentation
from repro.runtime.engine import SyncEngine, TickResult
from repro.runtime.messages import COORDINATOR, Message, MessageKind
from repro.runtime.metrics import RunResult
from repro.runtime.network import Network
from repro.simulation.matchrel import MatchRelation


class _PushState:
    """Per-site bookkeeping for pushed (inlined) Boolean equations.

    When a child site pushes the equation of a virtual variable, this site
    becomes responsible for evaluating it from grandchild falsifications.
    ``equations[(u, v)]`` is the pending expression; leaves are variables
    owned by other sites.  ``leaf_index`` maps each leaf to the pushed
    variables mentioning it.
    """

    def __init__(self) -> None:
        self.equations: Dict[VarKey, BoolExpr] = {}
        self.leaf_index: Dict[VarKey, Set[VarKey]] = {}
        self.known_false_leaves: Set[VarKey] = set()

    def add(self, var: VarKey, expr: BoolExpr) -> Optional[VarKey]:
        """Register a pushed equation; returns ``var`` if already false."""
        expr = expr.substitute({leaf: FALSE for leaf in self.known_false_leaves})
        if expr == FALSE:
            return var
        self.equations[var] = expr
        for leaf in expr.variables():
            self.leaf_index.setdefault(leaf, set()).add(var)
        return None

    def on_leaf_false(self, leaf: VarKey) -> List[VarKey]:
        """A grandchild falsified ``leaf``; returns pushed vars now false."""
        self.known_false_leaves.add(leaf)
        out: List[VarKey] = []
        for var in list(self.leaf_index.get(leaf, ())):
            expr = self.equations.get(var)
            if expr is None:
                continue
            expr = expr.substitute({leaf: FALSE})
            if expr == FALSE:
                del self.equations[var]
                out.append(var)
            else:
                self.equations[var] = expr
        return out


class DgpmSiteProgram:
    """The per-site half of dGPM (procedures lEval + lMsg).

    ``state_factory(fragment, query, known_false_virtual=())`` builds the
    local evaluation state; the default is the dict engine's
    :class:`~repro.core.state.LocalEvalState`, the array engine passes a
    factory closing over its compiled-CSR cache.

    ``batch_updates`` ships the falsifications of one tick as **one**
    VAR_UPDATE per watcher site (the dGPMd Example-10 merge) instead of one
    message per variable.  The same variables travel in the same round, so
    the fixpoint and the final relation are identical; only the envelope
    count differs.  The dict engine keeps the paper-exact per-variable
    accounting (Example 9 counts individual variables); the array engine
    batches, which is where its vectorized falsification processing pays --
    each delivered batch is one set of counter decrements.
    """

    def __init__(
        self,
        fid: int,
        fragmentation: Fragmentation,
        query: Pattern,
        deps: DependencyGraphs,
        config: DgpmConfig,
        state_factory=None,
        batch_updates: bool = False,
    ) -> None:
        self.fid = fid
        self.fragment = fragmentation[fid]
        self.query = query
        self.deps = deps
        self.config = config
        self.cost = config.cost
        if state_factory is None:
            def state_factory(fragment, query, known_false_virtual=()):
                return LocalEvalState(
                    fragment, query, known_false_virtual=known_false_virtual
                )
        self._state_factory = state_factory
        self.batch_updates = batch_updates
        self.state = state_factory(self.fragment, query)
        #: array-engine fast path: the state buffers falsifications as id
        #: arrays and we drain only the shippable (in-node) pairs, so
        #: interior falsifications never become Python tuples.
        self._deferred_drain = batch_updates and hasattr(self.state, "defer_drain")
        if self._deferred_drain:
            self.state.defer_drain = True
        #: full vectorized shipping: falsifications travel between sites as
        #: global-id arrays, routed through precomputed watcher groups.
        #: Requires the incremental protocol without push -- the push paths
        #: (rewires, equation leaves) are keyed by VarKey tuples.
        self._gid_ship = (
            self._deferred_drain
            and config.incremental
            and not config.enable_push
            and getattr(self.state, "compiled", None) is not None
            and self.state.compiled.gids is not None
        )
        #: falsified virtual vars accumulated so far (for from-scratch mode
        #: and for de-duplicating deliveries after a push rewire)
        self.known_false_virtual: Set[VarKey] = set()
        #: in-node vars whose falsity we already shipped
        self.shipped: Set[VarKey] = set()
        #: extra watchers added by rewire messages: var -> site ids
        self.extra_watchers: Dict[VarKey, Set[int]] = {}
        #: vars delegated away by our own push (no VAR_UPDATE needed anymore,
        #: but we keep shipping for safety -- receivers de-duplicate)
        self.pushed_vars: Set[VarKey] = set()
        self.push_done = False
        self.pushes_triggered = 0
        self.push_state = _PushState()

    # ------------------------------------------------------------------
    # lMsg: route falsifications along the dependency graph
    # ------------------------------------------------------------------
    def _messages_for(self, falsified: Iterable[VarKey]) -> List[Message]:
        per_site: Dict[int, List[VarKey]] = {}
        in_nodes = self.fragment.in_nodes
        shipped = self.shipped
        parents = self.query.parents
        watcher_sites = self.deps.watcher_sites
        extra = self.extra_watchers
        fid = self.fid
        for key in falsified:
            u, v = key
            if v not in in_nodes or key in shipped:
                continue
            if not parents(u) and key not in extra:
                # No query edge targets u, so no site's equation can mention
                # X(u, v); shipping it would be pure waste (Example 9 counts
                # confirm the paper skips these).
                continue
            shipped.add(key)
            targets = watcher_sites(fid, v)
            if extra:
                targets = targets | extra.get(key, set())
            for peer in targets:
                per_site.setdefault(peer, []).append(key)
        if self.batch_updates:
            return [
                Message(
                    src=self.fid,
                    dst=peer,
                    kind=MessageKind.VAR_UPDATE,
                    payload=entries,
                    size_bytes=self.cost.var_batch_bytes(len(entries)),
                )
                for peer, entries in sorted(per_site.items())
            ]
        return [
            Message(
                src=self.fid,
                dst=peer,
                kind=MessageKind.VAR_UPDATE,
                payload=[key],
                size_bytes=self.cost.var_batch_bytes(1),
            )
            for peer, entries in sorted(per_site.items())
            for key in entries
        ]

    def _ship_gid_batches(self) -> Tuple[List[Message], int]:
        """Drain the array state and ship falsifications as global-id arrays.

        One VAR_UPDATE per watcher site per tick, payload
        ``("gids", [(query node, id array), ...])``; byte accounting matches
        the VarKey batches (same variable count per peer).  Pairs ship at
        most once by construction -- a local pair falsifies at most once --
        so no ``shipped`` bookkeeping is needed.
        """
        from repro.core.arraycompile import require_numpy

        np = require_numpy()
        chunks, total = self.state.drain_shippable_ids()
        if not chunks:
            return [], total
        compiled = self.state.compiled
        group_of, groups = compiled.shipping_routes(self.deps)
        gids = compiled.gids
        per_peer: Dict[int, List] = {}
        sizes: Dict[int, int] = {}
        for u, ids in chunks:
            gsel = group_of[ids]
            uniq = np.unique(gsel)
            for gi in uniq.tolist():
                if gi < 0:
                    continue
                peers = groups[gi]
                if not peers:
                    continue
                batch = gids[ids] if uniq.size == 1 else gids[ids[gsel == gi]]
                for peer in peers:
                    per_peer.setdefault(peer, []).append((u, batch))
                    sizes[peer] = sizes.get(peer, 0) + int(batch.size)
        return [
            Message(
                src=self.fid,
                dst=peer,
                kind=MessageKind.VAR_UPDATE,
                payload=("gids", entries),
                size_bytes=self.cost.var_batch_bytes(sizes[peer]),
            )
            for peer, entries in sorted(per_peer.items())
        ], total

    def _ship_falsified(self, falsified: List[VarKey]) -> Tuple[List[Message], int]:
        """``(messages, n_falsified)`` for this tick's falsifications.

        On the deferred-drain fast path ``falsified`` is empty and the pairs
        still sit in the state's buffer; drain only the shippable ones unless
        a rewire added extra watchers (then every pair matters again).
        """
        if self._deferred_drain:
            if self.extra_watchers:
                falsified = self.state.drain_newly_false()
            else:
                shippable, total = self.state.drain_for_shipping()
                return self._messages_for(shippable), total
        return self._messages_for(falsified), len(falsified)

    def _control_flag(self, changed: bool) -> Message:
        return Message(
            src=self.fid,
            dst=COORDINATOR,
            kind=MessageKind.CONTROL,
            payload=changed,
            size_bytes=self.cost.control_flag_bytes,
        )

    # ------------------------------------------------------------------
    # push operation (Section 4.2)
    # ------------------------------------------------------------------
    def _benefit(self, equations: Dict[VarKey, BoolExpr]) -> float:
        n_unresolved_virtual = len(self.state.virtual_candidates())
        unresolved_in = [k for k, e in equations.items() if not e.is_const()]
        m = sum(e.n_terms for k, e in equations.items() if k in set(unresolved_in))
        if not unresolved_in or m == 0:
            return 0.0
        return n_unresolved_virtual / (m * len(unresolved_in))

    def _try_push(self) -> List[Message]:
        """Ship in-node equations to watcher sites when B(Si) >= θ."""
        if self.push_done or not self.config.enable_push:
            return []
        try:
            equations = self.state.in_node_equations(self.config.push_max_terms)
        except EquationBlowupError:
            self.push_done = True
            return []
        pending = {k: e for k, e in equations.items() if not e.is_const()}
        if not pending:
            return []
        if self._benefit(equations) < self.config.push_threshold:
            return []
        self.push_done = True
        self.pushes_triggered += 1
        out: List[Message] = []
        rewires: Dict[int, List[Tuple[VarKey, int]]] = {}
        for (u, v), expr in sorted(pending.items(), key=repr):
            watchers = sorted(self.deps.watcher_sites(self.fid, v))
            for peer in watchers:
                out.append(
                    Message(
                        src=self.fid,
                        dst=peer,
                        kind=MessageKind.EQUATION,
                        payload=((u, v), expr),
                        size_bytes=self.cost.message_header_bytes
                        + self.cost.equation_bytes(expr.n_terms),
                    )
                )
                # Every leaf variable's owner must now also notify `peer`.
                for leaf_u, leaf_v in expr.variables():
                    owner = self.deps.owner_site(self.fid, leaf_v)
                    rewires.setdefault(owner, []).append(((leaf_u, leaf_v), peer))
            self.pushed_vars.add((u, v))
        for owner, entries in sorted(rewires.items()):
            out.append(
                Message(
                    src=self.fid,
                    dst=owner,
                    kind=MessageKind.REWIRE,
                    payload=entries,
                    size_bytes=self.cost.var_batch_bytes(len(entries)),
                )
            )
        return out

    # ------------------------------------------------------------------
    # engine hooks
    # ------------------------------------------------------------------
    def on_start(self) -> TickResult:
        falsified = self.state.run_initial()
        if self._gid_ship:
            messages, n_falsified = self._ship_gid_batches()
        else:
            messages, n_falsified = self._ship_falsified(falsified)
        messages.extend(self._try_push())
        if messages:
            messages.append(self._control_flag(True))
        return TickResult(messages=messages, halted=True, n_falsified=n_falsified)

    def on_tick(self, round_no: int, inbox: List[Message]) -> TickResult:
        incoming: List[VarKey] = []
        gid_chunks: List = []
        late_rewire_forwards: List[Message] = []
        for message in inbox:
            if message.kind == MessageKind.VAR_UPDATE:
                if self._gid_ship:
                    # payload = ("gids", [(query node, global-id array), ...])
                    gid_chunks.extend(message.payload[1])
                elif self._deferred_drain:
                    # The array state drops already-false pairs vectorized, so
                    # skip the per-key dedup; bulk-update the seen set below.
                    incoming.extend(message.payload)
                else:
                    for key in message.payload:
                        if key not in self.known_false_virtual:
                            self.known_false_virtual.add(key)
                            incoming.append(key)
            elif message.kind == MessageKind.EQUATION:
                var, expr = message.payload
                immediately_false = self.push_state.add(var, expr)
                if immediately_false is not None:
                    incoming.append(immediately_false)
            elif message.kind == MessageKind.REWIRE:
                for var, new_watcher in message.payload:
                    self.extra_watchers.setdefault(var, set()).add(new_watcher)
                    # If we already falsified it, forward to the new watcher
                    # so nothing is lost in flight.
                    if var in self.shipped:
                        late_rewire_forwards.append(
                            Message(
                                src=self.fid,
                                dst=new_watcher,
                                kind=MessageKind.VAR_UPDATE,
                                payload=[var],
                                size_bytes=self.cost.var_batch_bytes(1),
                            )
                        )

        if self._deferred_drain and incoming:
            self.known_false_virtual.update(incoming)

        # Pushed equations react to leaf falsifications as well.  (Skip the
        # bookkeeping entirely while no equation has ever been pushed here --
        # the common case, and a per-variable cost otherwise.)
        if self.push_state.leaf_index:
            for key in list(incoming):
                for var in self.push_state.on_leaf_false(key):
                    incoming.append(var)
        elif incoming:
            self.push_state.known_false_leaves.update(incoming)

        if not incoming and not gid_chunks:
            return TickResult(messages=late_rewire_forwards, halted=True)

        if self._gid_ship:
            self.state.falsify_virtual_gids(gid_chunks)
            if incoming:  # push machinery is off here; belt and braces
                self.state.falsify_virtual(incoming)
            messages, n_falsified = self._ship_gid_batches()
        elif self.config.incremental:
            falsified = self.state.falsify_virtual(incoming)
            messages, n_falsified = self._ship_falsified(falsified)
        else:
            falsified = self._recompute_from_scratch(incoming)
            messages = self._messages_for(falsified)
            n_falsified = len(falsified)
        messages.extend(late_rewire_forwards)
        if messages:
            messages.append(self._control_flag(True))
        return TickResult(messages=messages, halted=True, n_falsified=n_falsified)

    def _recompute_from_scratch(self, incoming: List[VarKey]) -> List[VarKey]:
        """dGPMNOpt: rebuild the whole local evaluation on every message."""
        self.state = self._state_factory(
            self.fragment, self.query, known_false_virtual=self.known_false_virtual
        )
        self.state.run_initial()
        # Newly falsified = current false in-node candidates not yet shipped.
        out: List[VarKey] = []
        for u in self.query.nodes():
            want = self.query.label(u)
            for v in self.fragment.in_nodes:
                if self.fragment.graph.label(v) != want:
                    continue
                if not self.state.is_candidate(u, v) and (u, v) not in self.shipped:
                    out.append((u, v))
        return out

    def collect(self) -> Message:
        matches = self.state.local_matches()
        if self.config.boolean_only:
            payload = {u: bool(vs) for u, vs in matches.items()}
            size = self.cost.var_batch_bytes(len(payload))
        else:
            payload = matches
            size = self.cost.var_batch_bytes(sum(len(vs) for vs in matches.values()))
        return Message(
            src=self.fid,
            dst=COORDINATOR,
            kind=MessageKind.RESULT,
            payload=payload,
            size_bytes=size,
        )


def assemble_result(query: Pattern, result_messages: List[Message]) -> MatchRelation:
    """Coordinator phase 3: union local matches; empty if a query node is bare."""
    merged: Dict[Node, Set[Node]] = {u: set() for u in query.nodes()}
    for message in result_messages:
        for u, vs in message.payload.items():
            if isinstance(vs, bool):  # boolean_only collection
                if vs:
                    merged[u].add(("__some__", message.src, u))
            else:
                merged[u] |= vs
    return MatchRelation(query.nodes(), merged)


def _array_state_factory(fragmentation: Fragmentation, compiled=None):
    """A ``state_factory`` building :class:`ArrayEvalState` per fragment.

    Imported lazily so the dict engine never touches numpy; ``compiled`` may
    be the session's resident :class:`CompiledFragmentation` cache (a
    throwaway one is built otherwise).
    """
    from repro.core.arraycompile import CompiledFragmentation
    from repro.core.arraystate import ArrayEvalState

    if compiled is None:
        compiled = CompiledFragmentation(fragmentation)

    def factory(fragment, query, known_false_virtual=()):
        return ArrayEvalState(
            compiled.get(fragment.fid),
            fragment,
            query,
            compiled.interner,
            known_false_virtual,
        )

    return factory


def _resolve_state_factory(engine: str, fragmentation: Fragmentation, compiled):
    """Map an engine name to a state factory (None = dict default)."""
    if engine == "dict":
        return None
    from repro.core.arraycompile import validate_engine

    validate_engine(engine)
    return _array_state_factory(fragmentation, compiled)


def execute_dgpm(
    query: Pattern,
    fragmentation: Fragmentation,
    config: Optional[DgpmConfig] = None,
    deps: Optional[DependencyGraphs] = None,
    engine: str = "dict",
    compiled=None,
) -> RunResult:
    """One dGPM evaluation over (possibly pre-built) shared structures.

    ``deps`` may be the session's cached :class:`DependencyGraphs`; when
    omitted it is derived here, making this the full one-shot protocol.
    Drivers (:mod:`repro.session.drivers`) call this with the cached copy so
    repeated queries never pay the per-graph setup again.  ``engine``
    selects the local evaluation backend (``"dict"`` or ``"array"``);
    ``compiled`` may carry the session's compiled-CSR cache for the array
    engine.
    """
    config = config or DgpmConfig()
    cost = config.cost
    start = time.perf_counter()
    state_factory = _resolve_state_factory(engine, fragmentation, compiled)
    network = Network(cost, scramble=config.scramble)
    if deps is None:
        deps = DependencyGraphs(fragmentation)

    # Phase 1: the coordinator posts Q to every site (metered as QUERY).
    for frag in fragmentation:
        network.send(
            Message(
                src=COORDINATOR,
                dst=frag.fid,
                kind=MessageKind.QUERY,
                payload=query,
                size_bytes=cost.query_bytes(query.n_nodes, query.n_edges),
            )
        )
    while network.has_pending:  # broadcast completes before evaluation
        network.deliver()

    programs = {
        frag.fid: DgpmSiteProgram(
            frag.fid,
            fragmentation,
            query,
            deps,
            config,
            state_factory=state_factory,
            batch_updates=engine == "array",
        )
        for frag in fragmentation
    }
    engine = SyncEngine(programs, network, cost)
    engine.run_fixpoint()
    results = engine.collect_results()
    network.deliver()

    assemble_start = time.perf_counter()
    relation = assemble_result(query, results)
    assemble_time = time.perf_counter() - assemble_start

    wall = time.perf_counter() - start
    name = "dGPM" if (config.incremental or config.enable_push) else "dGPMNOpt"
    metrics = engine.metrics(
        name,
        wall_seconds=wall,
        extra_compute=assemble_time,
        pushes=sum(p.pushes_triggered for p in programs.values()),
    )
    return RunResult(relation=relation, metrics=metrics)


def run_dgpm(
    query: Pattern,
    fragmentation: Fragmentation,
    config: Optional[DgpmConfig] = None,
) -> RunResult:
    """Evaluate ``query`` over ``fragmentation`` with dGPM (Theorem 2).

    Returns the match relation plus metered PT/DS (see
    :class:`~repro.runtime.metrics.RunMetrics`).  With
    ``config.without_optimizations()`` this is the paper's dGPMNOpt.

    One-shot convenience: equivalent to
    ``SimulationSession(fragmentation, config=config).run(query,
    algorithm="dgpm")``; for repeated querying of a resident fragmentation,
    hold a :class:`~repro.session.SimulationSession` instead.
    """
    from repro.session import SimulationSession

    return SimulationSession(fragmentation, config=config).run(query, algorithm="dgpm")
