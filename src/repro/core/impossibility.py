"""Theorem 1, empirically: the impossibility of parallel scalability.

The theorem says no distributed simulation algorithm can have (1) response
time bounded by a polynomial in ``|Q|`` and ``|Fm|`` alone, or (2) data
shipment bounded by a polynomial in ``|Q|`` and ``|F|`` alone.  Its proof
uses the Figure-2 gadget families:

* **response time**: ``G0(n)`` cut into ``n`` constant-size fragments --
  ``|Q0|`` and ``|Fm|`` stay constant as ``n`` grows, yet deciding the match
  needs information assembled across ``Θ(n)`` sites;
* **data shipment**: ``G1(n)`` cut into **two** fragments (all A nodes / all
  B nodes) -- ``|Q0|`` and ``|F| = 2`` stay constant, yet ``Θ(n)`` node facts
  must cross the single link.

:func:`audit_parallel_time` and :func:`audit_data_shipment` run a given
algorithm over a growing family and report the metric that parallel
scalability would require to stay flat.  Any *correct* algorithm exhibits
growth; the benchmarks demonstrate it on dGPM (whose partition-bounded
guarantees are consistent with the theorem: ``|Vf|`` and ``|Ef|`` grow with
``n`` in these families).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.config import DgpmConfig
from repro.core.dgpm import run_dgpm
from repro.graph.examples import figure2, figure2_two_site
from repro.partition.fragmentation import Fragmentation
from repro.graph.pattern import Pattern
from repro.runtime.metrics import RunResult
from repro.simulation import simulation

Runner = Callable[[Pattern, Fragmentation, Optional[DgpmConfig]], RunResult]


@dataclass(frozen=True)
class AuditPoint:
    """One measurement of the impossibility audit."""

    n: int                  # family parameter (chain length)
    fm_size: int            # |Fm|: constant within a family
    n_fragments: int        # |F|
    rounds: int             # communication rounds (proxy for response time)
    ds_bytes: int           # data shipped
    correct: bool           # answer matched the centralized oracle


def _audit(
    family: Callable[[int], tuple],
    sizes: Sequence[int],
    runner: Runner,
    config: Optional[DgpmConfig],
) -> List[AuditPoint]:
    points: List[AuditPoint] = []
    for n in sizes:
        query, graph, fragmentation = family(n)
        result = runner(query, fragmentation, config)
        oracle = simulation(query, graph)
        points.append(
            AuditPoint(
                n=n,
                fm_size=fragmentation.largest_fragment.size,
                n_fragments=fragmentation.n_fragments,
                rounds=result.metrics.n_rounds,
                ds_bytes=result.metrics.ds_bytes,
                correct=result.relation == oracle,
            )
        )
    return points


def audit_parallel_time(
    sizes: Sequence[int],
    runner: Runner = run_dgpm,
    config: Optional[DgpmConfig] = None,
    close_cycle: bool = False,
) -> List[AuditPoint]:
    """Run the Theorem-1(1) family: constant ``|Fm|``, growing ``n``.

    With ``close_cycle=False`` (the default) every node's match is refuted by
    the chain's far end, forcing information to traverse all ``n`` sites:
    rounds grow linearly while ``|Q|`` and ``|Fm|`` stay fixed.
    """
    return _audit(lambda n: figure2(n, close_cycle), sizes, runner, config)


def audit_data_shipment(
    sizes: Sequence[int],
    runner: Runner = run_dgpm,
    config: Optional[DgpmConfig] = None,
    close_cycle: bool = False,
) -> List[AuditPoint]:
    """Run the Theorem-1(2) family: ``|F| = 2``, growing ``n``.

    Data shipment grows with ``n`` although ``|Q|`` and ``|F|`` are constant.
    """
    return _audit(lambda n: figure2_two_site(n, close_cycle), sizes, runner, config)
