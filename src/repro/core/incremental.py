"""Incremental maintenance of distributed simulation under graph updates.

Section 4.2 builds dGPM's optimized local evaluation on the authors'
incremental pattern-matching work [13]: falsifications propagate through the
affected area only.  The same machinery maintains ``Q(G)`` *across* graph
updates:

* **edge deletion** is monotone for simulation (matches can only shrink), so
  it is handled natively: decrement the one counter the edge feeds, let the
  falsification worklist run, ship any falsified in-node variables, and
  iterate message rounds to quiescence.  Work is ``O(|AFF|)`` plus the
  messages the affected boundary variables require -- deleting an edge no
  match depends on costs nothing and ships nothing.
* **edge insertion** can revive matches, which the falsification-only
  protocol cannot express; affected queries fall back to a full
  re-evaluation (the honest cost, clearly reported in the update metrics).
  Insertions that *cannot* change the answer -- no query edge carries the
  inserted edge's label pair -- are absorbed by patching the one successor
  counter they feed.

Two layers:

* :class:`IncrementalMatchState` is the warm per-query state over *shared*
  structures -- the fragmentation and
  :class:`~repro.core.depgraph.DependencyGraphs` belong to the caller
  (typically a :class:`~repro.session.SimulationSession`), which patches
  them via the fragmentation's in-place mutation API before asking the
  state to repair itself.  One session keeps one of these per hot query.
* :class:`IncrementalDgpmSession` is the standalone single-query front end:
  it owns a private copy of the graph and fragmentation and drives the
  mutation pipeline itself.

Usage::

    session = IncrementalDgpmSession(query, fragmentation)
    session.relation()                  # == simulation(query, G)
    update = session.delete_edge("f2", "sp1")
    update.ds_bytes, update.n_messages  # cost of maintaining the answer
    session.relation()                  # == simulation(query, G')
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.core.config import DgpmConfig
from repro.core.depgraph import DependencyGraphs
from repro.core.dgpm import DgpmSiteProgram
from repro.core.state import VarKey
from repro.errors import ReproError
from repro.graph.digraph import Label, Node
from repro.graph.pattern import Pattern
from repro.partition.fragmentation import Fragmentation, fragment_graph
from repro.runtime.engine import SyncEngine
from repro.runtime.messages import COORDINATOR
from repro.runtime.network import Network
from repro.simulation.matchrel import MatchRelation


@dataclass(frozen=True)
class UpdateMetrics:
    """Cost of one incremental update.

    Frozen: update reports cross thread boundaries in the concurrent serving
    layer, and an immutable snapshot can never be observed half-updated.
    """

    kind: str                 # "delete" or "insert(recompute)"
    n_messages: int           # protocol data messages shipped
    ds_bytes: int             # protocol data bytes shipped
    n_rounds: int             # message rounds to re-quiescence
    wall_seconds: float
    falsified_local: int      # falsified local variables across all sites
                              # (the |AFF| proxy)


@dataclass(frozen=True)
class RepairCost:
    """What one in-place repair (or re-evaluation) of a warm state cost.

    Frozen for the same reason as :class:`UpdateMetrics`: repair reports are
    read across threads and must be immutable snapshots.
    """

    n_falsified: int
    n_messages: int
    ds_bytes: int
    n_rounds: int


def edge_update_may_change_answer(query: Pattern, u_label: Label, v_label: Label) -> bool:
    """Can inserting/deleting an edge labeled ``(u_label, v_label)`` change ``Q(G)``?

    The simulation conditions inspect a data edge ``(u, v)`` only as a
    witness for a query edge ``(a, b)`` with ``L(a) = L(u)`` and
    ``L(b) = L(v)``; if no query edge carries that label pair, the maximum
    match is unchanged by the update and every cached answer stays valid.
    """
    return any(
        query.label(a) == u_label and query.label(b) == v_label
        for a, b in query.edges()
    )


def node_update_may_change_answer(query: Pattern, label: Label) -> bool:
    """Can adding an isolated node with ``label`` change ``Q(G)``?

    An edge-less node can only match a *childless* query node of the same
    label (any query child would need a witnessing successor).
    """
    return any(
        query.label(q) == label and not query.children(q) for q in query.nodes()
    )


class IncrementalMatchState:
    """Warm evaluation of one query over caller-owned shared structures.

    The caller mutates the fragmentation (and patches ``deps``) through the
    in-place mutation API *first*, then calls the matching ``apply_*`` /
    ``absorb_*`` repair below.  Every site's
    :class:`~repro.core.state.LocalEvalState` stays alive between updates, so
    a deletion's repair work is ``O(|AFF|)`` plus the messages the affected
    boundary variables require.
    """

    def __init__(
        self,
        query: Pattern,
        fragmentation: Fragmentation,
        deps: DependencyGraphs,
        config: Optional[DgpmConfig] = None,
    ) -> None:
        config = config or DgpmConfig(enable_push=False)
        if not config.incremental:
            raise ReproError("incremental maintenance requires config.incremental")
        if config.enable_push:
            # Push rewires watcher sets dynamically; warm states keep the
            # protocol in its plain falsification-shipping form.
            config = DgpmConfig(
                incremental=True, enable_push=False,
                boolean_only=config.boolean_only, cost=config.cost,
            )
        self.query = query
        self.fragmentation = fragmentation
        self.deps = deps
        self.config = config
        #: query nodes that have parents (the only ones counters track)
        self._parented = [u for u in query.nodes() if query.parents(u)]
        self.bootstrap()

    # ------------------------------------------------------------------
    def bootstrap(self) -> RepairCost:
        """(Re)build every site's state and run the fixpoint from scratch."""
        network = Network(self.config.cost)
        self.programs: Dict[int, DgpmSiteProgram] = {
            frag.fid: DgpmSiteProgram(
                frag.fid, self.fragmentation, self.query, self.deps, self.config
            )
            for frag in self.fragmentation
        }
        engine = SyncEngine(self.programs, network, self.config.cost)
        engine.run_fixpoint()
        return RepairCost(
            n_falsified=0,
            n_messages=network.data_message_count,
            ds_bytes=network.data_bytes,
            n_rounds=engine.n_rounds,
        )

    def relation(self) -> MatchRelation:
        """The current maximum match ``Q(G)``."""
        merged: Dict[Node, Set[Node]] = {u: set() for u in self.query.nodes()}
        for program in self.programs.values():
            for u, vs in program.state.local_matches().items():
                merged[u] |= vs
        return MatchRelation(self.query.nodes(), merged)

    # ------------------------------------------------------------------
    # deletion: native O(|AFF|) repair
    # ------------------------------------------------------------------
    def apply_delete(self, u: Node, v: Node, v_label: Label) -> RepairCost:
        """Repair after edge ``(u, v)`` was removed from the (shared) graphs.

        Counter surgery at the owner site, then message rounds to
        quiescence.  ``n_falsified`` sums the locally falsified variables of
        *every* site touched by the cascade -- zero means the answer is
        untouched.
        """
        owner = self.fragmentation.owner(u)
        program = self.programs[owner]
        falsified = self._delete_surgery(program, u, v, v_label)
        n_falsified = len(falsified)

        # Ship the owner's newly falsified in-node variables and iterate.
        network = Network(self.config.cost)
        network.send_all(program._messages_for(falsified))
        rounds = 0
        while network.has_pending:
            rounds += 1
            inboxes = network.deliver()
            inboxes.pop(COORDINATOR, None)
            for fid, inbox in inboxes.items():
                result = self.programs[fid].on_tick(rounds, inbox)
                n_falsified += result.n_falsified
                network.send_all(result.messages)
        return RepairCost(
            n_falsified=n_falsified,
            n_messages=network.data_message_count,
            ds_bytes=network.data_bytes,
            n_rounds=rounds,
        )

    def _delete_surgery(
        self, program: DgpmSiteProgram, u: Node, v: Node, v_label: Label
    ) -> List[VarKey]:
        """Counter surgery for one removed edge, then local propagation.

        The fragment graph no longer stores the edge (the fragmentation's
        mutation API removed it); only the evaluation state is patched here.
        """
        state = program.state
        query = self.query
        for u_child in query.nodes():
            if query.label(u_child) != v_label or not query.parents(u_child):
                continue
            key = (u, u_child)
            if key not in state.count or not state.is_candidate(u_child, v):
                continue
            state.count[key] -= 1
            if state.count[key] == 0:
                for u_parent in query.parents(u_child):
                    if state.is_candidate(u_parent, u):
                        state.sim[u_parent].discard(u)
                        state._worklist.append((u_parent, u))
                        if u in state.fragment.local_nodes:
                            state._newly_false.append((u_parent, u))
        state._propagate()
        return state.drain_newly_false()

    # ------------------------------------------------------------------
    # insertion / node addition: targeted absorption
    # ------------------------------------------------------------------
    def absorb_irrelevant_insert(self, u: Node, v: Node, v_label: Label) -> None:
        """Patch counters for an insert that cannot change the answer.

        Precondition: :func:`edge_update_may_change_answer` returned False
        for the edge's label pair.  The one successor counter the edge feeds
        is incremented (iff ``v`` is still a candidate) so later deletions
        keep decrementing against truthful counts; no falsification or
        revival is possible.
        """
        owner = self.fragmentation.owner(u)
        state = self.programs[owner].state
        for u_child in self._parented:
            if self.query.label(u_child) != v_label:
                continue
            key = (u, u_child)
            if key in state.count and state.is_candidate(u_child, v):
                state.count[key] += 1

    def absorb_add_node(self, node: Node, label: Label, fid: int) -> bool:
        """Register a freshly added isolated node; returns True iff the
        answer changed (the node matches a childless query node)."""
        state = self.programs[fid].state
        changed = False
        for q in self.query.nodes():
            if self.query.label(q) != label:
                continue
            if not self.query.children(q):
                state.sim[q].add(node)
                changed = True
            # A parented q cannot match an edge-less node; run_initial would
            # have falsified it immediately, so it is simply never added.
        for u_child in self._parented:
            state.count[(node, u_child)] = 0
        return changed


class IncrementalDgpmSession:
    """A long-lived single-query dGPM evaluation that absorbs graph updates.

    The session owns a private copy of the graph and fragmentation (callers'
    objects are never mutated) and keeps every site's
    :class:`~repro.core.state.LocalEvalState` alive between updates.  Each
    update is applied through the fragmentation's in-place mutation API, so
    fragment metadata (``Fi.O``/``Fi.I``) and the dependency graphs stay
    consistent -- ``session.fragmentation.validate()`` holds after any
    update sequence.
    """

    def __init__(
        self,
        query: Pattern,
        fragmentation: Fragmentation,
        config: Optional[DgpmConfig] = None,
    ) -> None:
        config = config or DgpmConfig(enable_push=False)
        if not config.incremental:
            raise ReproError("the incremental session requires config.incremental")
        self.query = query
        self._graph = fragmentation.graph.copy()
        assignment = {v: fragmentation.owner(v) for v in self._graph.nodes()}
        self.fragmentation = fragment_graph(self._graph, assignment)
        self._deps = DependencyGraphs(self.fragmentation)
        self._state = IncrementalMatchState(query, self.fragmentation, self._deps, config)
        self.config = self._state.config

    # ------------------------------------------------------------------
    @property
    def programs(self) -> Dict[int, DgpmSiteProgram]:
        """The live per-site programs (owned by the warm match state)."""
        return self._state.programs

    def relation(self) -> MatchRelation:
        """The current maximum match ``Q(G)``."""
        return self._state.relation()

    @property
    def graph(self):
        """The session's current graph (do not mutate directly)."""
        return self._graph

    # ------------------------------------------------------------------
    def delete_edge(self, u: Node, v: Node) -> UpdateMetrics:
        """Remove edge ``(u, v)`` and incrementally repair the match."""
        start = time.perf_counter()
        delta = self.fragmentation.delete_edge(u, v)
        self._deps.apply_delta(delta)
        repair = self._state.apply_delete(u, v, delta.v_label)
        return UpdateMetrics(
            kind="delete",
            n_messages=repair.n_messages,
            ds_bytes=repair.ds_bytes,
            n_rounds=repair.n_rounds,
            wall_seconds=time.perf_counter() - start,
            falsified_local=repair.n_falsified,
        )

    def insert_edge(self, u: Node, v: Node) -> UpdateMetrics:
        """Add edge ``(u, v)``; falls back to full re-evaluation.

        Insertions can revive previously falsified matches, which the
        monotone falsification protocol cannot undo -- the session rebuilds
        every site's state and reruns the fixpoint (metrics reflect it).
        The fragmentation itself is still patched in place.
        """
        start = time.perf_counter()
        delta = self.fragmentation.insert_edge(u, v)
        self._deps.apply_delta(delta)
        cost = self._state.bootstrap()
        return UpdateMetrics(
            kind="insert(recompute)",
            n_messages=cost.n_messages,
            ds_bytes=cost.ds_bytes,
            n_rounds=cost.n_rounds,
            wall_seconds=time.perf_counter() - start,
            falsified_local=0,
        )
