"""Incremental maintenance of distributed simulation under graph updates.

Section 4.2 builds dGPM's optimized local evaluation on the authors'
incremental pattern-matching work [13]: falsifications propagate through the
affected area only.  The same machinery maintains ``Q(G)`` *across* graph
updates:

* **edge deletion** is monotone for simulation (matches can only shrink), so
  it is handled natively: decrement the one counter the edge feeds, let the
  falsification worklist run, ship any falsified in-node variables, and
  iterate message rounds to quiescence.  Work is ``O(|AFF|)`` plus the
  messages the affected boundary variables require -- deleting an edge no
  match depends on costs nothing and ships nothing.
* **edge insertion** can revive matches, which the falsification-only
  protocol cannot express; affected queries are repaired with a *targeted
  re-seed*: only the reverse-reachable region of the insertion source can
  change truth value (witness chains run forward, so a node that cannot
  reach the new edge keeps its value), so those nodes -- and only those --
  are reset to label-optimistic candidates, their counters recomputed
  against the surrounding fixed values, and the falsification fixpoint
  rerun inside the region (:meth:`IncrementalMatchState.apply_insert`).
  Insertions that *cannot* change the answer -- no query edge carries the
  inserted edge's label pair -- are absorbed by patching the one successor
  counter they feed.
* **node removal** is a cascade of edge deletions (each repaired natively)
  followed by scrubbing the now-isolated node from the candidate sets and
  counter tables (:meth:`IncrementalMatchState.absorb_remove_node`).

Two layers:

* :class:`IncrementalMatchState` is the warm per-query state over *shared*
  structures -- the fragmentation and
  :class:`~repro.core.depgraph.DependencyGraphs` belong to the caller
  (typically a :class:`~repro.session.SimulationSession`), which patches
  them via the fragmentation's in-place mutation API before asking the
  state to repair itself.  One session keeps one of these per hot query.
* :class:`IncrementalDgpmSession` is the standalone single-query front end:
  it owns a private copy of the graph and fragmentation and drives the
  mutation pipeline itself.

Usage::

    session = IncrementalDgpmSession(query, fragmentation)
    session.relation()                  # == simulation(query, G)
    update = session.delete_edge("f2", "sp1")
    update.ds_bytes, update.n_messages  # cost of maintaining the answer
    session.relation()                  # == simulation(query, G')
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.config import DgpmConfig
from repro.core.depgraph import DependencyGraphs
from repro.core.dgpm import DgpmSiteProgram
from repro.core.state import VarKey
from repro.errors import ReproError
from repro.graph.digraph import Label, Node
from repro.graph.pattern import Pattern
from repro.partition.fragmentation import Fragmentation, MutationDelta, fragment_graph
from repro.runtime.engine import SyncEngine
from repro.runtime.messages import COORDINATOR
from repro.runtime.network import Network
from repro.simulation.matchrel import MatchRelation


@dataclass(frozen=True)
class UpdateMetrics:
    """Cost of one incremental update.

    Frozen: update reports cross thread boundaries in the concurrent serving
    layer, and an immutable snapshot can never be observed half-updated.
    """

    kind: str                 # "delete", "insert(targeted)", "insert(recompute)",
                              # "insert(absorbed)", or "remove_node"
    n_messages: int           # protocol data messages shipped
    ds_bytes: int             # protocol data bytes shipped
    n_rounds: int             # message rounds to re-quiescence
    wall_seconds: float
    falsified_local: int      # falsified local variables across all sites
                              # (the |AFF| proxy)


@dataclass(frozen=True)
class RepairCost:
    """What one in-place repair (or re-evaluation) of a warm state cost.

    Frozen for the same reason as :class:`UpdateMetrics`: repair reports are
    read across threads and must be immutable snapshots.
    """

    n_falsified: int
    n_messages: int
    ds_bytes: int
    n_rounds: int
    #: which repair path ran: "" (surgery), "bootstrap", or "targeted"
    strategy: str = ""


def edge_update_may_change_answer(query: Pattern, u_label: Label, v_label: Label) -> bool:
    """Can inserting/deleting an edge labeled ``(u_label, v_label)`` change ``Q(G)``?

    The simulation conditions inspect a data edge ``(u, v)`` only as a
    witness for a query edge ``(a, b)`` with ``L(a) = L(u)`` and
    ``L(b) = L(v)``; if no query edge carries that label pair, the maximum
    match is unchanged by the update and every cached answer stays valid.
    """
    return any(
        query.label(a) == u_label and query.label(b) == v_label
        for a, b in query.edges()
    )


def node_update_may_change_answer(query: Pattern, label: Label) -> bool:
    """Can adding an isolated node with ``label`` change ``Q(G)``?

    An edge-less node can only match a *childless* query node of the same
    label (any query child would need a witnessing successor).
    """
    return any(
        query.label(q) == label and not query.children(q) for q in query.nodes()
    )


class IncrementalMatchState:
    """Warm evaluation of one query over caller-owned shared structures.

    The caller mutates the fragmentation (and patches ``deps``) through the
    in-place mutation API *first*, then calls the matching ``apply_*`` /
    ``absorb_*`` repair below.  Every site's
    :class:`~repro.core.state.LocalEvalState` stays alive between updates, so
    a deletion's repair work is ``O(|AFF|)`` plus the messages the affected
    boundary variables require.
    """

    def __init__(
        self,
        query: Pattern,
        fragmentation: Fragmentation,
        deps: DependencyGraphs,
        config: Optional[DgpmConfig] = None,
    ) -> None:
        config = config or DgpmConfig(enable_push=False)
        if not config.incremental:
            raise ReproError("incremental maintenance requires config.incremental")
        if config.enable_push:
            # Push rewires watcher sets dynamically; warm states keep the
            # protocol in its plain falsification-shipping form.
            config = DgpmConfig(
                incremental=True, enable_push=False,
                boolean_only=config.boolean_only, cost=config.cost,
            )
        self.query = query
        self.fragmentation = fragmentation
        self.deps = deps
        self.config = config
        #: query nodes that have parents (the only ones counters track)
        self._parented = [u for u in query.nodes() if query.parents(u)]
        self.bootstrap()

    # ------------------------------------------------------------------
    def bootstrap(self) -> RepairCost:
        """(Re)build every site's state and run the fixpoint from scratch."""
        network = Network(self.config.cost)
        self.programs: Dict[int, DgpmSiteProgram] = {
            frag.fid: DgpmSiteProgram(
                frag.fid, self.fragmentation, self.query, self.deps, self.config
            )
            for frag in self.fragmentation
        }
        engine = SyncEngine(self.programs, network, self.config.cost)
        engine.run_fixpoint()
        return RepairCost(
            n_falsified=0,
            n_messages=network.data_message_count,
            ds_bytes=network.data_bytes,
            n_rounds=engine.n_rounds,
            strategy="bootstrap",
        )

    def relation(self) -> MatchRelation:
        """The current maximum match ``Q(G)``."""
        merged: Dict[Node, Set[Node]] = {u: set() for u in self.query.nodes()}
        for program in self.programs.values():
            for u, vs in program.state.local_matches().items():
                merged[u] |= vs
        return MatchRelation(self.query.nodes(), merged)

    # ------------------------------------------------------------------
    # deletion: native O(|AFF|) repair
    # ------------------------------------------------------------------
    def apply_delete(
        self, u: Node, v: Node, v_label: Label, fid: Optional[int] = None
    ) -> RepairCost:
        """Repair after edge ``(u, v)`` was removed from the (shared) graphs.

        Counter surgery at the owner site, then message rounds to
        quiescence.  ``n_falsified`` sums the locally falsified variables of
        *every* site touched by the cascade -- zero means the answer is
        untouched.  ``fid`` overrides the owner lookup for cascade edges of
        a ``remove_node`` (the node has already left the owner map).
        """
        owner = self.fragmentation.owner(u) if fid is None else fid
        program = self.programs[owner]
        falsified = self._delete_surgery(program, u, v, v_label)
        n_falsified = len(falsified)

        # Ship the owner's newly falsified in-node variables and iterate.
        network = Network(self.config.cost)
        network.send_all(program._messages_for(falsified))
        rounds = 0
        while network.has_pending:
            rounds += 1
            inboxes = network.deliver()
            inboxes.pop(COORDINATOR, None)
            for fid, inbox in inboxes.items():
                result = self.programs[fid].on_tick(rounds, inbox)
                n_falsified += result.n_falsified
                network.send_all(result.messages)
        return RepairCost(
            n_falsified=n_falsified,
            n_messages=network.data_message_count,
            ds_bytes=network.data_bytes,
            n_rounds=rounds,
        )

    def _delete_surgery(
        self, program: DgpmSiteProgram, u: Node, v: Node, v_label: Label
    ) -> List[VarKey]:
        """Counter surgery for one removed edge, then local propagation.

        The fragment graph no longer stores the edge (the fragmentation's
        mutation API removed it); only the evaluation state is patched here.
        """
        state = program.state
        query = self.query
        for u_child in query.nodes():
            if query.label(u_child) != v_label or not query.parents(u_child):
                continue
            key = (u, u_child)
            if key not in state.count or not state.is_candidate(u_child, v):
                continue
            state.count[key] -= 1
            if state.count[key] == 0:
                for u_parent in query.parents(u_child):
                    if state.is_candidate(u_parent, u):
                        state.sim[u_parent].discard(u)
                        state._worklist.append((u_parent, u))
                        if u in state.fragment.local_nodes:
                            state._newly_false.append((u_parent, u))
        state._propagate()
        return state.drain_newly_false()

    # ------------------------------------------------------------------
    # insertion / node addition: targeted absorption
    # ------------------------------------------------------------------
    def absorb_irrelevant_insert(self, u: Node, v: Node, v_label: Label) -> None:
        """Patch counters for an insert that cannot change the answer.

        Precondition: :func:`edge_update_may_change_answer` returned False
        for the edge's label pair.  The one successor counter the edge feeds
        is incremented (iff ``v`` is still a candidate) so later deletions
        keep decrementing against truthful counts; no falsification or
        revival is possible.
        """
        owner = self.fragmentation.owner(u)
        state = self.programs[owner].state
        for u_child in self._parented:
            if self.query.label(u_child) != v_label:
                continue
            key = (u, u_child)
            if key in state.count and state.is_candidate(u_child, v):
                state.count[key] += 1

    def absorb_add_node(self, node: Node, label: Label, fid: int) -> bool:
        """Register a freshly added isolated node; returns True iff the
        answer changed (the node matches a childless query node)."""
        state = self.programs[fid].state
        changed = False
        for q in self.query.nodes():
            if self.query.label(q) != label:
                continue
            if not self.query.children(q):
                state.sim[q].add(node)
                changed = True
            # A parented q cannot match an edge-less node; run_initial would
            # have falsified it immediately, so it is simply never added.
        for u_child in self._parented:
            state.count[(node, u_child)] = 0
        return changed

    # ------------------------------------------------------------------
    # insertion: targeted region repair
    # ------------------------------------------------------------------
    def apply_insert(self, delta: MutationDelta) -> RepairCost:
        """Repair after a *relevant* edge insertion, re-seeding only the
        affected region.

        An insertion can only revive nodes that reach its source: a witness
        chain for ``X(u, v)`` runs forward from ``v``, so the truth value of
        any node that cannot reach ``delta.u`` is untouched by the new edge.
        The reverse-reachable closure of ``delta.u`` is therefore reset to
        label-optimistic candidates (clearing the shipped/known-false
        bookkeeping so re-falsifications travel again), its counters are
        recomputed against the surrounding fixed values, and the
        falsification fixpoint reruns -- it cannot escape the region because
        every predecessor of a region node is itself in the region.  Regions
        a quarter of the graph or larger fall back to :meth:`bootstrap`
        (the re-seed would approach a full re-evaluation anyway).
        """
        graph = self.fragmentation.graph
        region: Set[Node] = {delta.u}
        stack = [delta.u]
        while stack:
            w = stack.pop()
            for p in graph.predecessors(w):
                if p not in region:
                    region.add(p)
                    stack.append(p)
        if 4 * len(region) >= graph.n_nodes:
            return self.bootstrap()

        query = self.query
        # A brand-new virtual copy of the target starts optimistically true,
        # exactly as a bootstrap would have seeded it.
        if delta.virtual_added:
            state = self.programs[delta.source_fid].state
            for q in query.nodes():
                if query.label(q) == delta.v_label:
                    state.sim[q].add(delta.v)
        # Reset every copy (owner and watchers) of every region node to a
        # label-optimistic candidate.  Shipped falsifications are un-marked
        # on the sender and forgotten on the receivers, so a re-derived
        # falsification ships -- and is accepted -- again.
        for program in self.programs.values():
            state = program.state
            frag_graph = state.fragment.graph
            for q in query.nodes():
                label = query.label(q)
                bucket = state.sim[q]
                for w in region:
                    if w in frag_graph and frag_graph.label(w) == label:
                        bucket.add(w)
                        program.shipped.discard((q, w))
                        program.known_false_virtual.discard((q, w))
        # Recompute the counters of region-local nodes against the current
        # candidate sets (predecessors of region nodes are region nodes, so
        # no counter outside this sweep references a reset candidate).
        for program in self.programs.values():
            state = program.state
            frag_graph = state.fragment.graph
            local = state.fragment.local_nodes
            for w in region:
                if w not in local:
                    continue
                succs = list(frag_graph.successors(w))
                for u_child in self._parented:
                    targets = state.sim[u_child]
                    state.count[(w, u_child)] = sum(
                        1 for x in succs if x in targets
                    )

        seeded: List = []
        n_falsified = 0
        # Reconcile a brand-new virtual copy with its owner's current truth:
        # the target may lie outside the region, so the region fixpoint
        # would never correct the copy's optimism on its own.
        if delta.virtual_added:
            owner_state = self.programs[delta.target_fid].state
            source = self.programs[delta.source_fid]
            dead = [
                (q, delta.v)
                for q in query.nodes()
                if query.label(q) == delta.v_label
                and not owner_state.is_candidate(q, delta.v)
            ]
            if dead:
                falsified = source.state.falsify_virtual(dead)
                n_falsified += len(falsified)
                seeded.extend(source._messages_for(falsified))
        # Restricted run_initial: falsify region-local violations and let the
        # worklist run to the local fixpoint.
        for program in self.programs.values():
            state = program.state
            local = state.fragment.local_nodes
            for q in query.nodes():
                children = query.children(q)
                if not children:
                    continue
                bucket = state.sim[q]
                for w in region:
                    if (
                        w in local
                        and w in bucket
                        and any(state.count[(w, qc)] == 0 for qc in children)
                    ):
                        bucket.discard(w)
                        state._worklist.append((q, w))
                        state._newly_false.append((q, w))
            state._propagate()
            falsified = state.drain_newly_false()
            n_falsified += len(falsified)
            seeded.extend(program._messages_for(falsified))
        # Ship across sites and iterate to quiescence, as after a deletion.
        network = Network(self.config.cost)
        network.send_all(seeded)
        rounds = 0
        while network.has_pending:
            rounds += 1
            inboxes = network.deliver()
            inboxes.pop(COORDINATOR, None)
            for fid, inbox in inboxes.items():
                result = self.programs[fid].on_tick(rounds, inbox)
                n_falsified += result.n_falsified
                network.send_all(result.messages)
        return RepairCost(
            n_falsified=n_falsified,
            n_messages=network.data_message_count,
            ds_bytes=network.data_bytes,
            n_rounds=rounds,
            strategy="targeted",
        )

    # ------------------------------------------------------------------
    # node removal: scrub after the cascade
    # ------------------------------------------------------------------
    def apply_remove_node(self, delta) -> Tuple[bool, RepairCost]:
        """Full repair for a node removal: the cascade, then the scrub.

        Returns ``(answer may have changed, aggregated cost)``.  The flag
        cannot be derived from the cascade's falsification counts alone: the
        fragmentation has already dropped the node from its owner's local
        set, so a candidacy the cascade kills is no longer counted as a
        *local* falsification -- the node's pre-cascade candidacy is the
        truth.  (Conservative: a candidacy held only by virtual copies was
        never answer-visible, but callers diff relations before rewriting.)
        """
        was_candidate = any(
            delta.u in program.state.sim.get(q, ())
            for program in self.programs.values()
            for q in self.query.nodes()
        )
        n_messages = ds_bytes = n_rounds = n_falsified = 0
        for edge_delta in delta.cascade:
            cost = self.apply_delete(
                edge_delta.u,
                edge_delta.v,
                edge_delta.v_label,
                fid=edge_delta.source_fid,
            )
            n_messages += cost.n_messages
            ds_bytes += cost.ds_bytes
            n_rounds += cost.n_rounds
            n_falsified += cost.n_falsified
        scrubbed = self.absorb_remove_node(
            delta.u, delta.u_label, delta.source_fid
        )
        changed = was_candidate or scrubbed or n_falsified > 0
        return changed, RepairCost(
            n_falsified=n_falsified,
            n_messages=n_messages,
            ds_bytes=ds_bytes,
            n_rounds=n_rounds,
        )

    def absorb_remove_node(self, node: Node, label: Label, fid: int) -> bool:
        """Scrub a removed (already isolated) node from the warm state.

        The cascade of edge deletions has been repaired via
        :meth:`apply_delete`; what remains is the node's own candidacy.  It
        is dropped from every candidate set still holding it (the owner's,
        plus any stale virtual copies -- those were already invisible to
        :meth:`relation`, which filters by local nodes) and from the counter
        table.  No propagation is needed: the cascade removed every incident
        edge, so no counter counts the node as a successor anymore.  Returns
        True iff the node was still a candidate somewhere, i.e. the answer
        may have changed.
        """
        changed = False
        for program in self.programs.values():
            state = program.state
            for q in self.query.nodes():
                bucket = state.sim.get(q)
                if bucket is not None and node in bucket:
                    bucket.discard(node)
                    changed = True
            for u_child in self._parented:
                state.count.pop((node, u_child), None)
            for q in self.query.nodes():
                program.shipped.discard((q, node))
                program.known_false_virtual.discard((q, node))
        return changed


class IncrementalDgpmSession:
    """A long-lived single-query dGPM evaluation that absorbs graph updates.

    The session owns a private copy of the graph and fragmentation (callers'
    objects are never mutated) and keeps every site's
    :class:`~repro.core.state.LocalEvalState` alive between updates.  Each
    update is applied through the fragmentation's in-place mutation API, so
    fragment metadata (``Fi.O``/``Fi.I``) and the dependency graphs stay
    consistent -- ``session.fragmentation.validate()`` holds after any
    update sequence.
    """

    def __init__(
        self,
        query: Pattern,
        fragmentation: Fragmentation,
        config: Optional[DgpmConfig] = None,
    ) -> None:
        config = config or DgpmConfig(enable_push=False)
        if not config.incremental:
            raise ReproError("the incremental session requires config.incremental")
        self.query = query
        self._graph = fragmentation.graph.copy()
        assignment = {v: fragmentation.owner(v) for v in self._graph.nodes()}
        self.fragmentation = fragment_graph(self._graph, assignment)
        self._deps = DependencyGraphs(self.fragmentation)
        self._state = IncrementalMatchState(query, self.fragmentation, self._deps, config)
        self.config = self._state.config

    # ------------------------------------------------------------------
    @property
    def programs(self) -> Dict[int, DgpmSiteProgram]:
        """The live per-site programs (owned by the warm match state)."""
        return self._state.programs

    def relation(self) -> MatchRelation:
        """The current maximum match ``Q(G)``."""
        return self._state.relation()

    @property
    def graph(self):
        """The session's current graph (do not mutate directly)."""
        return self._graph

    # ------------------------------------------------------------------
    def delete_edge(self, u: Node, v: Node) -> UpdateMetrics:
        """Remove edge ``(u, v)`` and incrementally repair the match."""
        start = time.perf_counter()
        delta = self.fragmentation.delete_edge(u, v)
        self._deps.apply_delta(delta)
        repair = self._state.apply_delete(u, v, delta.v_label)
        return UpdateMetrics(
            kind="delete",
            n_messages=repair.n_messages,
            ds_bytes=repair.ds_bytes,
            n_rounds=repair.n_rounds,
            wall_seconds=time.perf_counter() - start,
            falsified_local=repair.n_falsified,
        )

    def insert_edge(self, u: Node, v: Node) -> UpdateMetrics:
        """Add edge ``(u, v)`` and repair the match in place.

        Insertions can revive previously falsified matches, which the
        monotone falsification protocol cannot undo on its own; the session
        re-seeds the reverse-reachable region of ``u`` and reruns the
        fixpoint inside it (:meth:`IncrementalMatchState.apply_insert`),
        falling back to a full re-evaluation when the region covers most of
        the graph.  Label-irrelevant insertions are absorbed by patching the
        one counter they feed.
        """
        start = time.perf_counter()
        delta = self.fragmentation.insert_edge(u, v)
        self._deps.apply_delta(delta)
        if edge_update_may_change_answer(self.query, delta.u_label, delta.v_label):
            cost = self._state.apply_insert(delta)
            targeted = cost.strategy == "targeted"
            kind = "insert(targeted)" if targeted else "insert(recompute)"
        else:
            self._state.absorb_irrelevant_insert(u, v, delta.v_label)
            cost = RepairCost(0, 0, 0, 0)
            kind = "insert(absorbed)"
        return UpdateMetrics(
            kind=kind,
            n_messages=cost.n_messages,
            ds_bytes=cost.ds_bytes,
            n_rounds=cost.n_rounds,
            wall_seconds=time.perf_counter() - start,
            falsified_local=cost.n_falsified,
        )

    def remove_node(self, node: Node) -> UpdateMetrics:
        """Remove ``node`` with all incident edges; repair incrementally.

        The fragmentation turns the removal into a cascade of edge
        deletions (each repaired natively, in cascade order) followed by
        dropping the then-isolated node, which only needs its candidate and
        counter entries scrubbed.
        """
        start = time.perf_counter()
        delta = self.fragmentation.remove_node(node)
        self._deps.apply_delta(delta)
        _changed, cost = self._state.apply_remove_node(delta)
        return UpdateMetrics(
            kind="remove_node",
            n_messages=cost.n_messages,
            ds_bytes=cost.ds_bytes,
            n_rounds=cost.n_rounds,
            wall_seconds=time.perf_counter() - start,
            falsified_local=cost.n_falsified,
        )
