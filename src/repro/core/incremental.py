"""Incremental maintenance of distributed simulation under graph updates.

Section 4.2 builds dGPM's optimized local evaluation on the authors'
incremental pattern-matching work [13]: falsifications propagate through the
affected area only.  The same machinery maintains ``Q(G)`` *across* graph
updates:

* **edge deletion** is monotone for simulation (matches can only shrink), so
  it is handled natively: decrement the one counter the edge feeds, let the
  falsification worklist run, ship any falsified in-node variables, and
  iterate message rounds to quiescence.  Work is ``O(|AFF|)`` plus the
  messages the affected boundary variables require -- deleting an edge no
  match depends on costs nothing and ships nothing.
* **edge insertion** can revive matches, which the falsification-only
  protocol cannot express; the session falls back to a full re-evaluation
  (the honest cost, clearly reported in the update metrics).

Usage::

    session = IncrementalDgpmSession(query, fragmentation)
    session.relation()                  # == simulation(query, G)
    update = session.delete_edge("f2", "sp1")
    update.ds_bytes, update.n_messages  # cost of maintaining the answer
    session.relation()                  # == simulation(query, G')
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.core.config import DgpmConfig
from repro.core.depgraph import DependencyGraphs
from repro.core.dgpm import DgpmSiteProgram
from repro.core.state import VarKey
from repro.errors import GraphError, ReproError
from repro.graph.digraph import DiGraph, Node
from repro.graph.pattern import Pattern
from repro.partition.fragmentation import Fragmentation, fragment_graph
from repro.runtime.engine import SyncEngine
from repro.runtime.messages import COORDINATOR, Message
from repro.runtime.network import Network
from repro.simulation.matchrel import MatchRelation


@dataclass
class UpdateMetrics:
    """Cost of one incremental update."""

    kind: str                 # "delete" or "insert(recompute)"
    n_messages: int           # protocol data messages shipped
    ds_bytes: int             # protocol data bytes shipped
    n_rounds: int             # message rounds to re-quiescence
    wall_seconds: float
    falsified_local: int      # locally falsified variables (the |AFF| proxy)


class IncrementalDgpmSession:
    """A long-lived dGPM evaluation that absorbs graph updates.

    The session owns a private copy of the graph and fragmentation (callers'
    objects are never mutated) and keeps every site's
    :class:`~repro.core.state.LocalEvalState` alive between updates.
    """

    def __init__(
        self,
        query: Pattern,
        fragmentation: Fragmentation,
        config: Optional[DgpmConfig] = None,
    ) -> None:
        config = config or DgpmConfig(enable_push=False)
        if not config.incremental:
            raise ReproError("the incremental session requires config.incremental")
        if config.enable_push:
            # Push rewires watcher sets dynamically; sessions keep the
            # protocol in its plain falsification-shipping form.
            config = DgpmConfig(
                incremental=True, enable_push=False,
                boolean_only=config.boolean_only, cost=config.cost,
            )
        self.query = query
        self.config = config
        self._graph = fragmentation.graph.copy()
        assignment = {v: fragmentation.owner(v) for v in self._graph.nodes()}
        self.fragmentation = fragment_graph(self._graph, assignment)
        self._bootstrap()

    # ------------------------------------------------------------------
    def _bootstrap(self) -> None:
        deps = DependencyGraphs(self.fragmentation)
        network = Network(self.config.cost)
        self.programs: Dict[int, DgpmSiteProgram] = {
            frag.fid: DgpmSiteProgram(frag.fid, self.fragmentation, self.query, deps, self.config)
            for frag in self.fragmentation
        }
        engine = SyncEngine(self.programs, network, self.config.cost)
        engine.run_fixpoint()

    def relation(self) -> MatchRelation:
        """The current maximum match ``Q(G)``."""
        merged: Dict[Node, Set[Node]] = {u: set() for u in self.query.nodes()}
        for program in self.programs.values():
            for u, vs in program.state.local_matches().items():
                merged[u] |= vs
        return MatchRelation(self.query.nodes(), merged)

    @property
    def graph(self) -> DiGraph:
        """The session's current graph (do not mutate directly)."""
        return self._graph

    # ------------------------------------------------------------------
    def delete_edge(self, u: Node, v: Node) -> UpdateMetrics:
        """Remove edge ``(u, v)`` and incrementally repair the match."""
        start = time.perf_counter()
        if not self._graph.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) is not in the graph")
        owner = self.fragmentation.owner(u)
        program = self.programs[owner]

        self._graph.remove_edge(u, v)
        falsified = self._delete_from_state(program, u, v)
        n_falsified = len(falsified)

        # Ship the owner's newly falsified in-node variables and iterate.
        network = Network(self.config.cost)
        network.send_all(program._messages_for(falsified))
        rounds = 0
        while network.has_pending:
            rounds += 1
            inboxes = network.deliver()
            inboxes.pop(COORDINATOR, None)
            for fid, inbox in inboxes.items():
                result = self.programs[fid].on_tick(rounds, inbox)
                n_falsified += 0  # remote AFF tracked at the sites themselves
                network.send_all(result.messages)

        return UpdateMetrics(
            kind="delete",
            n_messages=network.data_message_count,
            ds_bytes=network.data_bytes,
            n_rounds=rounds,
            wall_seconds=time.perf_counter() - start,
            falsified_local=n_falsified,
        )

    def _delete_from_state(self, program: DgpmSiteProgram, u: Node, v: Node) -> List[VarKey]:
        """Counter surgery for one removed edge, then local propagation."""
        state = program.state
        fragment_graph_ = state.fragment.graph
        fragment_graph_.remove_edge(u, v)
        query = self.query
        v_label = self._graph.label(v)
        for u_child in query.nodes():
            if query.label(u_child) != v_label or not query.parents(u_child):
                continue
            key = (u, u_child)
            if key not in state.count or not state.is_candidate(u_child, v):
                continue
            state.count[key] -= 1
            if state.count[key] == 0:
                for u_parent in query.parents(u_child):
                    if state.is_candidate(u_parent, u):
                        state.sim[u_parent].discard(u)
                        state._worklist.append((u_parent, u))
                        if u in state.fragment.local_nodes:
                            state._newly_false.append((u_parent, u))
        state._propagate()
        return state.drain_newly_false()

    # ------------------------------------------------------------------
    def insert_edge(self, u: Node, v: Node) -> UpdateMetrics:
        """Add edge ``(u, v)``; falls back to full re-evaluation.

        Insertions can revive previously falsified matches, which the
        monotone falsification protocol cannot undo -- the session rebuilds
        every site's state and reruns the fixpoint (metrics reflect it).
        """
        start = time.perf_counter()
        if u not in self._graph or v not in self._graph:
            raise GraphError("both endpoints must exist")
        if self._graph.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) already present")
        self._graph.add_edge(u, v)
        assignment = {w: self.fragmentation.owner(w) for w in self._graph.nodes()}
        self.fragmentation = fragment_graph(self._graph, assignment)

        network = Network(self.config.cost)
        deps = DependencyGraphs(self.fragmentation)
        self.programs = {
            frag.fid: DgpmSiteProgram(frag.fid, self.fragmentation, self.query, deps, self.config)
            for frag in self.fragmentation
        }
        engine = SyncEngine(self.programs, network, self.config.cost)
        engine.run_fixpoint()
        return UpdateMetrics(
            kind="insert(recompute)",
            n_messages=network.data_message_count,
            ds_bytes=network.data_bytes,
            n_rounds=engine.n_rounds,
            wall_seconds=time.perf_counter() - start,
            falsified_local=0,
        )
