"""Algorithm dGPMd: rank-scheduled simulation for DAG queries (Section 5.1).

When ``Q`` is a DAG, ``X(u, v)`` depends only on variables of strictly
smaller topological rank ``r(u')``, so every variable can be decided
*exactly* in ascending rank order -- no fixpoint iteration, no retraction.
The schedule:

* round ``r``: every site decides all its variables of rank ``r``; the
  falsified in-node variables of that rank are shipped **in one batch per
  watcher site** (the paper's Example 10: 6 batched messages on Figure 5,
  versus 12 single-variable messages under dGPM);
* by the time rank ``r + 1`` is evaluated, the falsifications of every rank
  ``<= r`` virtual variable have arrived, so the evaluation is exact.

At most ``d`` message rounds (``d`` = query diameter >= max rank), hence the
Theorem-3 bound ``O(d(|Vq|+|Vm|)(|Eq|+|Em|) + |Q||F|)`` and, for fixed
``|F|``, parallel scalability in response time.

When ``G`` is a DAG instead: a cyclic ``Q`` can never match a DAG (every
query node on a cycle would need an infinite path), so the coordinator
answers ``empty`` outright; a DAG ``Q`` goes through the schedule above.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set

from repro.core.config import DgpmConfig
from repro.core.depgraph import DependencyGraphs
from repro.core.dgpm import assemble_result
from repro.core.state import VarKey
from repro.errors import PatternError
from repro.graph import algorithms
from repro.graph.digraph import Node
from repro.graph.pattern import Pattern
from repro.partition.fragmentation import Fragmentation
from repro.runtime.engine import SyncEngine, TickResult
from repro.runtime.messages import COORDINATOR, Message, MessageKind
from repro.runtime.metrics import RunMetrics, RunResult
from repro.runtime.network import Network
from repro.simulation.matchrel import MatchRelation


class DgpmdSiteProgram:
    """Per-site half of dGPMd: exact per-rank evaluation, batched shipping.

    ``rank_state`` may be an
    :class:`~repro.core.arraystate.ArrayRankState` (the array engine's
    vectorized backend for the same per-rank schedule); when None the exact
    evaluation runs over dict-of-sets state.
    """

    def __init__(
        self,
        fid: int,
        fragmentation: Fragmentation,
        query: Pattern,
        deps: DependencyGraphs,
        config: DgpmConfig,
        rank_state=None,
    ) -> None:
        self.fid = fid
        self.fragment = fragmentation[fid]
        self.query = query
        self.deps = deps
        self.cost = config.cost
        self.config = config
        self.rank_groups = query.nodes_by_rank()
        self.max_rank = len(self.rank_groups) - 1
        self.rank_state = rank_state
        #: exact matches per query node, filled rank by rank (local nodes)
        self.sim: Dict[Node, Set[Node]] = {}
        #: virtual variables reported false by their owners
        self.virtual_false: Set[VarKey] = set()
        self.current_rank = 0

    # ------------------------------------------------------------------
    def _evaluate_rank(self, rank: int) -> List[VarKey]:
        """Decide every rank-``rank`` variable exactly; return falsified in-node vars."""
        if self.rank_state is not None:
            return self.rank_state.evaluate_nodes(
                self.rank_groups[rank], lambda u: bool(self.query.parents(u))
            )
        graph = self.fragment.graph
        local = self.fragment.local_nodes
        in_nodes = self.fragment.in_nodes
        falsified: List[VarKey] = []
        for u in self.rank_groups[rank]:
            want = self.query.label(u)
            matches: Set[Node] = set()
            for v in local:
                if graph.label(v) != want:
                    continue
                ok = True
                for u_child in self.query.children(u):
                    # Children have strictly smaller rank: local values are
                    # final, virtual values are final-by-absence-of-message.
                    hit = False
                    child_local = self.sim[u_child]
                    for succ in graph.successors(v):
                        if succ in local:
                            if succ in child_local:
                                hit = True
                                break
                        else:
                            if (
                                graph.label(succ) == self.query.label(u_child)
                                and (u_child, succ) not in self.virtual_false
                            ):
                                hit = True
                                break
                    if not hit:
                        ok = False
                        break
                if ok:
                    matches.add(v)
                elif v in in_nodes and self.query.parents(u):
                    # Only variables referenced by some parent equation are
                    # worth shipping; top-rank nodes have no parents, which
                    # is why "no data needs to be shipped when r = d".
                    falsified.append((u, v))
            self.sim[u] = matches
        return falsified

    def _batch_messages(self, falsified: List[VarKey]) -> List[Message]:
        """One VAR_UPDATE batch per watcher site (the Example-10 merge)."""
        per_site: Dict[int, List[VarKey]] = {}
        for u, v in falsified:
            for peer in self.deps.watcher_sites(self.fid, v):
                per_site.setdefault(peer, []).append((u, v))
        return [
            Message(
                src=self.fid,
                dst=peer,
                kind=MessageKind.VAR_UPDATE,
                payload=entries,
                size_bytes=self.cost.var_batch_bytes(len(entries)),
            )
            for peer, entries in sorted(per_site.items())
        ]

    # ------------------------------------------------------------------
    def on_start(self) -> TickResult:
        falsified = self._evaluate_rank(0)
        self.current_rank = 1
        return TickResult(
            messages=self._batch_messages(falsified),
            halted=self.current_rank > self.max_rank,
        )

    def on_tick(self, round_no: int, inbox: List[Message]) -> TickResult:
        for message in inbox:
            if message.kind == MessageKind.VAR_UPDATE:
                self.virtual_false.update(message.payload)
                if self.rank_state is not None:
                    self.rank_state.mark_virtual_false(message.payload)
        if self.current_rank > self.max_rank:
            return TickResult(messages=[], halted=True)
        falsified = self._evaluate_rank(self.current_rank)
        self.current_rank += 1
        done = self.current_rank > self.max_rank
        # Falsifications of the final rank never unblock anyone downstream
        # ("no data needs to be shipped when r = d"), but watchers may still
        # exist if a crossing edge targets a max-rank candidate; ship only
        # when someone is actually waiting.
        return TickResult(messages=self._batch_messages(falsified), halted=done)

    def collect(self) -> Message:
        if self.rank_state is not None:
            matches = self.rank_state.matches()
        else:
            matches = {u: set(vs) for u, vs in self.sim.items()}
        if self.config.boolean_only:
            payload = {u: bool(vs) for u, vs in matches.items()}
            size = self.cost.var_batch_bytes(len(payload))
        else:
            payload = matches
            size = self.cost.var_batch_bytes(sum(len(vs) for vs in matches.values()))
        return Message(
            src=self.fid,
            dst=COORDINATOR,
            kind=MessageKind.RESULT,
            payload=payload,
            size_bytes=size,
        )


def execute_dgpmd(
    query: Pattern,
    fragmentation: Fragmentation,
    config: Optional[DgpmConfig] = None,
    deps: Optional[DependencyGraphs] = None,
    engine: str = "dict",
    compiled=None,
) -> RunResult:
    """One dGPMd evaluation; ``deps`` may be a session's cached structures.

    ``engine``/``compiled`` as in :func:`~repro.core.dgpm.execute_dgpm`.
    """
    config = config or DgpmConfig()
    cost = config.cost
    start = time.perf_counter()

    rank_states = None
    if engine != "dict":
        from repro.core.arraycompile import CompiledFragmentation, validate_engine
        from repro.core.arraystate import ArrayRankState

        validate_engine(engine)
        if compiled is None:
            compiled = CompiledFragmentation(fragmentation)

        def rank_states(fid):
            return ArrayRankState(compiled.get(fid), query, compiled.interner)

    if not query.is_dag():
        # Theorem 3 also covers DAG data graphs: a cyclic query cannot match.
        if algorithms.is_dag(fragmentation.graph):
            wall = time.perf_counter() - start
            empty = MatchRelation(query.nodes(), {})
            metrics = RunMetrics(
                algorithm="dGPMd",
                pt_seconds=wall,
                wall_seconds=wall,
                ds_bytes=0,
                n_messages=0,
                n_rounds=0,
                extras={"short_circuit": 1.0},
            )
            return RunResult(relation=empty, metrics=metrics)
        raise PatternError("dGPMd requires a DAG query or a DAG data graph")

    network = Network(cost)
    if deps is None:
        deps = DependencyGraphs(fragmentation)
    for frag in fragmentation:
        network.send(
            Message(
                src=COORDINATOR,
                dst=frag.fid,
                kind=MessageKind.QUERY,
                payload=query,
                size_bytes=cost.query_bytes(query.n_nodes, query.n_edges),
            )
        )
    network.deliver()

    programs = {
        frag.fid: DgpmdSiteProgram(
            frag.fid,
            fragmentation,
            query,
            deps,
            config,
            rank_state=rank_states(frag.fid) if rank_states is not None else None,
        )
        for frag in fragmentation
    }
    engine = SyncEngine(programs, network, cost)
    engine.run_fixpoint()
    results = engine.collect_results()
    network.deliver()

    assemble_start = time.perf_counter()
    relation = assemble_result(query, results)
    assemble_time = time.perf_counter() - assemble_start

    wall = time.perf_counter() - start
    metrics = engine.metrics("dGPMd", wall_seconds=wall, extra_compute=assemble_time)
    return RunResult(relation=relation, metrics=metrics)


def run_dgpmd(
    query: Pattern,
    fragmentation: Fragmentation,
    config: Optional[DgpmConfig] = None,
) -> RunResult:
    """Evaluate a DAG query (or any query on a DAG graph) with dGPMd.

    Raises :class:`~repro.errors.PatternError` when neither ``Q`` nor ``G``
    is a DAG -- use :func:`~repro.core.dgpm.run_dgpm` there instead.

    One-shot convenience over :class:`~repro.session.SimulationSession`.
    """
    from repro.session import SimulationSession

    return SimulationSession(fragmentation, config=config).run(query, algorithm="dgpmd")
