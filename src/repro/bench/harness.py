"""Sweep runner producing the paper's plot series.

Each Figure-6 panel is a sweep: one x-axis (``|F|``, ``|Q|``, ``|Vf|``,
``d``, ``|G|``), several algorithms, two y-axes (PT seconds, DS KB).
:func:`run_sweep` executes the cross product, verifies every distributed
answer against the centralized oracle (a reproduction that silently returns
wrong matches is worthless), and returns an :class:`ExperimentSeries` that
renders the same rows the paper plots.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from repro.errors import ReproError
from repro.graph.pattern import Pattern
from repro.partition.fragmentation import Fragmentation
from repro.runtime.metrics import RunResult
from repro.simulation import simulation

#: An algorithm entry: display name -> runner(query, fragmentation) -> RunResult.
Runner = Callable[[Pattern, Fragmentation], RunResult]


@dataclass
class SweepPoint:
    """Metrics of every algorithm at one x-value."""

    x: object
    pt_seconds: Dict[str, float] = field(default_factory=dict)
    ds_kb: Dict[str, float] = field(default_factory=dict)
    n_messages: Dict[str, int] = field(default_factory=dict)
    n_rounds: Dict[str, int] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)


@dataclass
class ExperimentSeries:
    """A full sweep: the data behind one PT panel and one DS panel."""

    name: str
    x_label: str
    points: List[SweepPoint] = field(default_factory=list)

    def algorithms(self) -> List[str]:
        names: List[str] = []
        for point in self.points:
            for alg in point.pt_seconds:
                if alg not in names:
                    names.append(alg)
        return names

    # ------------------------------------------------------------------
    def _table(self, metric: str, fmt: str) -> str:
        algs = self.algorithms()
        header = [self.x_label] + algs
        rows = [header]
        for point in self.points:
            values = getattr(point, metric)
            rows.append(
                [str(point.x)] + [fmt.format(values[a]) if a in values else "-" for a in algs]
            )
        widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
        lines = ["  ".join(cell.rjust(w) for cell, w in zip(row, widths)) for row in rows]
        return "\n".join(lines)

    def pt_table(self) -> str:
        """Paper-style PT series (seconds)."""
        return self._table("pt_seconds", "{:.4f}")

    def ds_table(self) -> str:
        """Paper-style DS series (KB)."""
        return self._table("ds_kb", "{:.2f}")

    def render(self) -> str:
        """Both panels, titled like the paper's subfigures."""
        return (
            f"== {self.name} : PT (seconds) vs {self.x_label} ==\n{self.pt_table()}\n\n"
            f"== {self.name} : DS (KB) vs {self.x_label} ==\n{self.ds_table()}\n"
        )

    def median(self, metric: str, algorithm: str) -> float:
        """Median of one algorithm's metric across the sweep.

        Shape assertions compare medians rather than individual points: a
        single wall-clock glitch (scheduler hiccup on a shared machine) must
        not invalidate an ordering that holds with a 3-10x margin.
        """
        values = [
            getattr(point, metric)[algorithm]
            for point in self.points
            if algorithm in getattr(point, metric)
        ]
        if not values:
            raise ReproError(f"no data for {algorithm}")
        return statistics.median(values)

    def ratio(self, metric: str, numerator: str, denominator: str) -> float:
        """Average ratio between two algorithms over the sweep (paper-style
        claims like "dGPM ships 3 orders of magnitude less than disHHK")."""
        ratios = []
        for point in self.points:
            values = getattr(point, metric)
            if numerator in values and denominator in values and values[denominator]:
                ratios.append(values[numerator] / values[denominator])
        if not ratios:
            raise ReproError(f"no overlapping points for {numerator}/{denominator}")
        return statistics.mean(ratios)


def run_sweep(
    name: str,
    x_label: str,
    instances: Sequence[Tuple[object, List[Pattern], Fragmentation]],
    algorithms: Dict[str, Runner],
    verify: bool = True,
    repeats: int = 2,
) -> ExperimentSeries:
    """Execute a sweep.

    ``instances`` yields ``(x_value, queries, fragmentation)`` triples; each
    algorithm runs every query at every x-value and metrics are averaged over
    the queries (the paper averages over 20 patterns; benches use fewer for
    laptop runtimes).  Each run is repeated ``repeats`` times and the
    *minimum* PT kept -- simulated makespans are built from wall-clock
    samples, and min-of-k is the standard defence against scheduler noise.
    DS and message counts are deterministic, so the first run's values are
    used.  With ``verify=True`` every answer is checked against the
    centralized oracle.
    """
    series = ExperimentSeries(name=name, x_label=x_label)
    for x, queries, fragmentation in instances:
        point = SweepPoint(x=x)
        oracles = (
            [simulation(q, fragmentation.graph) for q in queries] if verify else None
        )
        for alg_name, runner in algorithms.items():
            pts: List[float] = []
            dss: List[float] = []
            msgs: List[int] = []
            rounds: List[int] = []
            for qi, query in enumerate(queries):
                results = [runner(query, fragmentation) for _ in range(max(1, repeats))]
                result = results[0]
                if verify and result.relation != oracles[qi]:
                    raise ReproError(
                        f"{alg_name} returned a wrong answer at {x_label}={x!r} (query {qi})"
                    )
                pts.append(min(r.metrics.pt_seconds for r in results))
                dss.append(result.metrics.ds_kb)
                msgs.append(result.metrics.n_messages)
                rounds.append(result.metrics.n_rounds)
            point.pt_seconds[alg_name] = statistics.mean(pts)
            point.ds_kb[alg_name] = statistics.mean(dss)
            point.n_messages[alg_name] = round(statistics.mean(msgs))
            point.n_rounds[alg_name] = round(statistics.mean(rounds))
        series.points.append(point)
    return series
