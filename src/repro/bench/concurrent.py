"""Concurrent-serving throughput: one resident graph, three serving modes.

The ROADMAP's heavy-traffic scenario after PR 2: many independent queries
arrive at one resident fragmentation.  The same mixed stream (distinct
patterns cycled ``repeat`` times, fresh ``Pattern`` objects per repetition)
is served three ways:

* **serial** -- one :class:`SimulationSession`, queries one at a time; the
  PR-1 baseline and the denominator of every speedup below.
* **thread** -- :class:`ConcurrentSessionServer` with the thread backend:
  overlap and one shared cache, but pure-Python compute stays GIL-bound, so
  this column is expected near 1x (it is measured to *prove* the overhead is
  small, not to win).
* **process** -- the process backend: replica sessions in OS workers
  (dependency graphs shipped once), sticky least-loaded routing.  CPU-bound
  streams scale with cores; ``benchmarks/bench_concurrent.py`` gates >= 2x
  at 4 workers on the 16-fragment stream whenever the host has the cores to
  express it.

Parity is asserted per query against the serial relations (stamp 0 -- the
stream never mutates), so throughput can never be bought with wrong answers.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.bench.stream import mixed_query_stream
from repro.core.config import DgpmConfig
from repro.session import ConcurrentSessionServer, SimulationSession


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass
class ConcurrentPoint:
    """Measured throughput of the three serving modes at one fragment count."""

    n_fragments: int
    n_queries: int
    n_distinct: int
    n_workers: int
    serial_seconds: float
    thread_seconds: float
    process_seconds: float
    parity: bool
    process_hit_rate: float

    @property
    def serial_qps(self) -> float:
        return self.n_queries / self.serial_seconds if self.serial_seconds else 0.0

    @property
    def thread_qps(self) -> float:
        return self.n_queries / self.thread_seconds if self.thread_seconds else 0.0

    @property
    def process_qps(self) -> float:
        return self.n_queries / self.process_seconds if self.process_seconds else 0.0

    @property
    def thread_speedup(self) -> float:
        return self.serial_seconds / self.thread_seconds if self.thread_seconds else 0.0

    @property
    def process_speedup(self) -> float:
        return (
            self.serial_seconds / self.process_seconds if self.process_seconds else 0.0
        )


@dataclass
class ConcurrentSeries:
    """The sweep over fragment counts, plus the environment that bounds it."""

    n_cpus: int = field(default_factory=usable_cpus)
    points: List[ConcurrentPoint] = field(default_factory=list)

    def render(self) -> str:
        header = (
            f"{'|F|':>5} {'queries':>8} {'workers':>8} {'serial q/s':>11} "
            f"{'thread q/s':>11} {'process q/s':>12} {'thread x':>9} "
            f"{'process x':>10} {'hit rate':>9} {'parity':>7}"
        )
        lines = [f"usable CPUs: {self.n_cpus}", header, "-" * len(header)]
        for p in self.points:
            lines.append(
                f"{p.n_fragments:>5} {p.n_queries:>8} {p.n_workers:>8} "
                f"{p.serial_qps:>11.1f} {p.thread_qps:>11.1f} "
                f"{p.process_qps:>12.1f} {p.thread_speedup:>8.2f}x "
                f"{p.process_speedup:>9.2f}x {p.process_hit_rate:>8.0%} "
                f"{'ok' if p.parity else 'FAIL':>7}"
            )
        return "\n".join(lines)


def measure_concurrent_point(
    fragmentation,
    stream,
    n_distinct: int,
    n_workers: int = 4,
    config: Optional[DgpmConfig] = None,
) -> ConcurrentPoint:
    """Serve one stream serially, threaded, and via process workers.

    Worker/pool startup is excluded from every timing (a long-running server
    pays it once); structure warm-up (dependency graphs, label indexes) is
    symmetric -- the serial session warms explicitly, the servers inherit or
    ship the same warm structures.
    """
    config = config or DgpmConfig()

    serial_session = SimulationSession(fragmentation, config=config).warm()
    t0 = time.perf_counter()
    serial = serial_session.run_many(stream, algorithm="dgpm")
    serial_seconds = time.perf_counter() - t0

    with ConcurrentSessionServer(
        fragmentation, backend="thread", n_workers=n_workers, config=config
    ) as server:
        server.session.warm()
        t0 = time.perf_counter()
        threaded = server.run_many(stream, algorithm="dgpm")
        thread_seconds = time.perf_counter() - t0

    with ConcurrentSessionServer(
        fragmentation, backend="process", n_workers=n_workers, config=config
    ) as server:
        t0 = time.perf_counter()
        processed = server.run_many(stream, algorithm="dgpm")
        process_seconds = time.perf_counter() - t0
        stats = server.worker_stats()
        served = sum(s.queries_served for s in stats)
        hit_rate = sum(s.cache_hits for s in stats) / served if served else 0.0

    parity = all(
        s.relation == t.relation == p.relation
        for s, t, p in zip(serial, threaded, processed)
    ) and all(r.stamp == 0 for r in threaded + processed)

    return ConcurrentPoint(
        n_fragments=fragmentation.n_fragments,
        n_queries=len(stream),
        n_distinct=n_distinct,
        n_workers=n_workers,
        serial_seconds=serial_seconds,
        thread_seconds=thread_seconds,
        process_seconds=process_seconds,
        parity=parity,
        process_hit_rate=hit_rate,
    )


def concurrent_stream_series(
    fragment_counts: Sequence[int] = (16,),
    n_nodes: int = 3000,
    n_edges: int = 15000,
    n_distinct: int = 12,
    repeat: int = 3,
    n_workers: int = 4,
    seed: int = 7,
    config: Optional[DgpmConfig] = None,
) -> ConcurrentSeries:
    """Sweep the three serving modes over fragment counts on one web graph."""
    from repro import partition
    from repro.graph.generators import web_graph

    graph = web_graph(n_nodes, n_edges, seed=seed)
    stream = mixed_query_stream(graph, n_distinct=n_distinct, repeat=repeat, seed=seed)
    series = ConcurrentSeries()
    for n_fragments in fragment_counts:
        frag = partition(graph, n_fragments=n_fragments, seed=seed, vf_ratio=0.25)
        series.points.append(
            measure_concurrent_point(
                frag, stream, n_distinct=n_distinct, n_workers=n_workers,
                config=config,
            )
        )
    return series
