"""Query workload generators.

The paper evaluates *data-selecting patterns that actually match*: 20 cyclic
patterns on Yahoo ("with conditions such as domain = '.uk'"), DAG query sets
``Q1..Q8`` with controlled diameter on Citation.  Random label soup almost
never matches a sparse labeled graph, so -- like the paper's authors -- we
derive patterns from the data graph itself, then grow them to the requested
``(|Vq|, |Eq|)`` using two *match-preserving* operations:

* **duplicate(u)**: add ``u'`` with the same label, the same out-edges and
  the same in-edges as ``u``.  Any simulation matching ``u`` also matches
  ``u'`` (same child requirements; parents' obligations are satisfied by the
  same witnesses), so matchability is preserved.
* **sibling in-edge**: for an existing query edge ``(w, u)`` and a duplicate
  ``u'`` of ``u``, add ``(w, u')``.  ``w``'s new obligation is satisfied by
  the same successor that matches ``u``.

Starting from a subgraph of ``G`` with labels copied (which matches by the
identity witness), every generated pattern is guaranteed to have a non-empty
``Q(G)`` -- tests assert this.

Targets are met exactly when reachable; otherwise the generator gets as
close as possible and the harness reports actual shapes.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import WorkloadError
from repro.graph import algorithms
from repro.graph.digraph import DiGraph, Node
from repro.graph.pattern import Pattern


class _PatternBuilder:
    """Mutable pattern under construction, with the two safe growth ops."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.labels: Dict[Node, object] = {}
        self.edges: Set[Tuple[Node, Node]] = set()
        #: duplicate classes: representative -> members
        self.siblings: Dict[Node, List[Node]] = {}
        self._fresh = 0

    # -- base construction (identity-witnessed subgraph of G) -----------
    def add_base_node(self, node: Node, label: object) -> None:
        if node not in self.labels:
            self.labels[node] = label
            self.siblings[node] = [node]

    def add_base_edge(self, u: Node, v: Node) -> None:
        self.edges.add((u, v))

    # -- growth ops ------------------------------------------------------
    def duplicate(self, u: Node) -> Node:
        """Add a clone of ``u`` (same label, in-edges and out-edges)."""
        clone = ("dup", self._fresh)
        self._fresh += 1
        self.labels[clone] = self.labels[u]
        rep = self._rep(u)
        self.siblings[rep].append(clone)
        for a, b in list(self.edges):
            if a == u:
                self.edges.add((clone, b))
            if b == u:
                self.edges.add((a, clone))
        return clone

    def _rep(self, u: Node) -> Node:
        for rep, members in self.siblings.items():
            if u in members:
                return rep
        raise WorkloadError(f"unknown pattern node {u!r}")

    def sibling_edge_candidates(self) -> List[Tuple[Node, Node]]:
        """Safe extra edges: (w, u') where (w, u) exists and u' ~ u."""
        out: List[Tuple[Node, Node]] = []
        for w, u in self.edges:
            for sib in self.siblings.get(self._rep(u), []):
                if sib != u and (w, sib) not in self.edges and w != sib:
                    out.append((w, sib))
        return out

    # -- finalize ----------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.labels)

    @property
    def n_edges(self) -> int:
        return len(self.edges)

    def build(self) -> Pattern:
        # Rename to compact string ids for readability.
        order = sorted(self.labels, key=repr)
        rename = {node: f"q{i}" for i, node in enumerate(order)}
        return Pattern(
            {rename[n]: lab for n, lab in self.labels.items()},
            [(rename[a], rename[b]) for a, b in sorted(self.edges, key=repr)],
        )


def _grow_to_shape(
    builder: _PatternBuilder,
    n_nodes: int,
    n_edges: int,
    rng: random.Random,
    protect: Optional[Set[Node]] = None,
) -> Pattern:
    """Apply duplicate / sibling-edge ops until the target shape is reached."""
    # Grow nodes by duplicating the busiest nodes (adds edges fastest).
    while builder.n_nodes < n_nodes:
        degree: Dict[Node, int] = {node: 0 for node in builder.labels}
        for a, b in builder.edges:
            degree[a] += 1
            degree[b] += 1
        ranked = sorted(degree, key=lambda node: (-degree[node], repr(node)))
        builder.duplicate(ranked[0] if rng.random() < 0.7 else rng.choice(ranked))
    # Top up edges with safe sibling in-edges.
    while builder.n_edges < n_edges:
        candidates = builder.sibling_edge_candidates()
        if not candidates:
            break
        builder.edges.add(rng.choice(sorted(candidates, key=repr)))
    # Trim surplus edges (removal only relaxes the query), protecting the
    # base cycle/spine and weak connectivity.
    protect = protect or set()
    removable = [e for e in builder.edges if e not in protect]
    rng.shuffle(removable)
    for edge in removable:
        if builder.n_edges <= n_edges:
            break
        trial = set(builder.edges)
        trial.discard(edge)
        probe = DiGraph({n: None for n in builder.labels}, trial)
        if len(algorithms.weakly_connected_components(probe)) == 1:
            builder.edges = trial
    return builder.build()


def _rare_label_first(graph: DiGraph, rng: random.Random) -> List[Node]:
    """Graph nodes, shuffled then stably ordered by ascending label frequency.

    The paper's patterns carry selective conditions (``domain = '.uk'``);
    sampling from rare-label regions keeps candidate sets, and hence every
    algorithm's work, realistically selective.
    """
    freq: Dict[object, int] = {}
    for v in graph.nodes():
        freq[graph.label(v)] = freq.get(graph.label(v), 0) + 1
    nodes = sorted(graph.nodes(), key=repr)
    rng.shuffle(nodes)
    nodes.sort(key=lambda v: freq[graph.label(v)])
    return nodes


def _find_cycle(graph: DiGraph, rng: random.Random, max_len: int, tries: int = 400) -> Optional[List[Node]]:
    """A short directed cycle found by random walks from rare-label starts."""
    starts = _rare_label_first(graph, rng)
    for t in range(tries):
        start = starts[t % len(starts)]
        pos: Dict[Node, int] = {start: 0}
        walk = [start]
        cur = start
        for _ in range(3 * max_len):
            succ = graph.successors(cur)
            if not succ:
                break
            cur = succ[rng.randrange(len(succ))]
            if cur in pos:
                cycle = walk[pos[cur]:]
                if 2 <= len(cycle) <= max_len:
                    return cycle
                break
            pos[cur] = len(walk)
            walk.append(cur)
    return None


def cyclic_pattern(
    graph: DiGraph,
    n_nodes: int = 5,
    n_edges: int = 10,
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> Pattern:
    """A cyclic pattern of ~``(n_nodes, n_edges)`` guaranteed to match ``graph``.

    Mirrors the paper's Exp-1/Exp-3 cyclic query workloads.  Raises
    :class:`~repro.errors.WorkloadError` when the graph has no short cycle.

    Pass ``rng`` to draw from a caller-owned generator (one stream shared
    across many calls); otherwise a fresh ``random.Random(seed)`` makes the
    call a pure function of its arguments.
    """
    rng = rng if rng is not None else random.Random(seed)
    cycle = _find_cycle(graph, rng, max_len=max(2, n_nodes))
    if cycle is None:
        raise WorkloadError("data graph appears to have no short directed cycle")

    builder = _PatternBuilder(rng)
    for node in cycle:
        builder.add_base_node(node, graph.label(node))
    protect: Set[Tuple[Node, Node]] = set()
    for i, node in enumerate(cycle):
        nxt = cycle[(i + 1) % len(cycle)]
        builder.add_base_edge(node, nxt)
        protect.add((node, nxt))
    # Expand with real neighbours, greedily preferring the neighbour with the
    # most induced edges to the current sample (denser patterns get closer
    # to the requested |Eq|); induced edges keep the identity witness.
    while builder.n_nodes < n_nodes:
        candidates: Dict[Node, int] = {}
        for base in list(builder.labels):
            if not isinstance(base, tuple):  # skip duplicates, none yet
                for s in graph.successors(base):
                    if s not in builder.labels:
                        candidates.setdefault(s, 0)
        if not candidates:
            break
        for cand in candidates:
            score = sum(1 for other in builder.labels if graph.has_edge(cand, other))
            score += sum(1 for other in builder.labels if graph.has_edge(other, cand))
            candidates[cand] = score
        best = max(sorted(candidates, key=repr), key=lambda c: candidates[c])
        builder.add_base_node(best, graph.label(best))
        for other in list(builder.labels):
            if graph.has_edge(best, other):
                builder.add_base_edge(best, other)
            if graph.has_edge(other, best):
                builder.add_base_edge(other, best)
    return _grow_to_shape(builder, n_nodes, n_edges, rng, protect)


def dag_pattern(
    graph: DiGraph,
    diameter: int,
    n_nodes: int = 9,
    n_edges: int = 13,
    seed: int = 0,
    tries: int = 400,
    rng: Optional[random.Random] = None,
) -> Pattern:
    """A DAG pattern with exact ``diameter`` that matches the DAG ``graph``.

    Mirrors the paper's Exp-2 query sets ``Q1..Q8`` (``d = 2..8``,
    ``|Q| = (9, 13)``): a sampled directed path of length ``diameter`` is the
    spine; duplication/sibling growth fills out the shape without changing
    the diameter.  ``rng`` overrides ``seed`` as in :func:`cyclic_pattern`.
    """
    rng = rng if rng is not None else random.Random(seed)
    nodes = sorted(graph.nodes(), key=repr)
    spine: Optional[List[Node]] = None
    for _ in range(tries):
        cur = nodes[rng.randrange(len(nodes))]
        path = [cur]
        while len(path) <= diameter:
            succ = graph.successors(cur)
            if not succ:
                break
            cur = succ[rng.randrange(len(succ))]
            if cur in path:
                break
            path.append(cur)
        if len(path) == diameter + 1:
            spine = path
            break
    if spine is None:
        raise WorkloadError(f"no directed path of length {diameter} found")

    builder = _PatternBuilder(rng)
    for node in spine:
        builder.add_base_node(node, graph.label(node))
    protect: Set[Tuple[Node, Node]] = set()
    for a, b in zip(spine, spine[1:]):
        builder.add_base_edge(a, b)
        protect.add((a, b))
    pattern = _grow_to_shape(builder, n_nodes, n_edges, rng, protect)
    if not pattern.is_dag():
        raise WorkloadError("spine sampling produced a cyclic pattern")
    return pattern


def tree_pattern(
    tree: DiGraph,
    n_nodes: int = 4,
    seed: int = 0,
    tries: int = 200,
    rng: Optional[random.Random] = None,
) -> Pattern:
    """A small path/branch pattern sampled from a tree (for dGPMt benches).

    ``rng`` overrides ``seed`` as in :func:`cyclic_pattern`.
    """
    rng = rng if rng is not None else random.Random(seed)
    nodes = sorted(tree.nodes(), key=repr)
    for _ in range(tries):
        root = nodes[rng.randrange(len(nodes))]
        picked = {root}
        frontier = [root]
        while frontier and len(picked) < n_nodes:
            base = frontier.pop(rng.randrange(len(frontier)))
            for child in tree.successors(base):
                if len(picked) >= n_nodes:
                    break
                picked.add(child)
                frontier.append(child)
        if len(picked) == n_nodes:
            sub = tree.induced_subgraph(picked)
            return Pattern(sub.labels(), sub.edges())
    raise WorkloadError("could not sample a tree pattern of the requested size")
