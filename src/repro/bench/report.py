"""Process-global registry of rendered experiment reports.

Benchmark modules register each experiment's paper-style series here; the
benchmark suite's ``conftest.py`` echoes everything into the pytest terminal
summary and ``benchmarks/results/*.txt`` at the end of the run.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional

_REPORTS: Dict[str, str] = {}


def record_report(name: str, text: str, results_dir: Optional[Path] = None) -> None:
    """Register one experiment's rendered series (and persist it, if asked)."""
    _REPORTS[name] = text
    if results_dir is not None:
        results_dir.mkdir(parents=True, exist_ok=True)
        (results_dir / f"{name}.txt").write_text(text + "\n")


def all_reports() -> Dict[str, str]:
    """Snapshot of every registered report."""
    return dict(_REPORTS)


def clear_reports() -> None:
    """Reset the registry (used by tests)."""
    _REPORTS.clear()
