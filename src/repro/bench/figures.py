"""Experiment definitions for every table and figure of the paper.

Each ``fig6_*`` function reproduces one pair of Figure-6 panels (PT + DS) as
an :class:`~repro.bench.harness.ExperimentSeries`; ``table1_*`` and
``impossibility_*`` cover Table 1 and Theorem 1.  Sizes default to
laptop-scale stand-ins (DESIGN.md §2) and scale with ``REPRO_SCALE``
(e.g. ``REPRO_SCALE=2`` doubles every graph).

One deliberate deviation, recorded in EXPERIMENTS.md: the paper's Exp-3
claims dGPM's DS "is not a function of |G|" while sweeping |G| with
``|Vf|/|V|`` fixed at 20%.  Theorem 2's bound is ``O(|Ef||Vq|)``, a function
of the *partition*, so our Exp-3 holds ``|Vf|`` fixed in absolute terms
(the quantity the theorem names) -- that is the setting in which the claimed
independence from ``|G|`` is actually implied, and our workload's constant
per-candidate falsification rate makes the distinction visible.
"""

from __future__ import annotations

import functools
import os
from typing import Dict, List, Tuple

from repro.baselines import run_dishhk, run_dmes, run_match
from repro.bench.harness import ExperimentSeries, Runner, run_sweep
from repro.bench.workloads import cyclic_pattern, dag_pattern, tree_pattern
from repro.core import DgpmConfig, run_dgpm, run_dgpmd, run_dgpmt
from repro.core.impossibility import audit_data_shipment, audit_parallel_time
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    citation_dag,
    contiguous_block_assignment,
    random_labeled_graph,
    random_tree,
    web_graph,
)
from repro.graph.pattern import Pattern
from repro.partition import fragment_graph, refine_to_vf_ratio, tree_partition
from repro.partition.fragmentation import Fragmentation


def scale() -> float:
    """Global size multiplier, from the ``REPRO_SCALE`` environment variable."""
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def _n(base: int) -> int:
    return max(64, int(base * scale()))


#: queries averaged per sweep point (the paper uses 20; laptop default 2)
N_QUERY_SEEDS = int(os.environ.get("REPRO_QUERY_SEEDS", "2"))


# ----------------------------------------------------------------------
# shared datasets (cached: sweeps reuse them across panels)
# ----------------------------------------------------------------------
@functools.lru_cache(maxsize=None)
def yahoo_graph() -> DiGraph:
    """The Yahoo web-graph stand-in (DESIGN.md §2), default (8k, 40k)."""
    return web_graph(_n(8000), _n(40000), n_labels=24, seed=7)


@functools.lru_cache(maxsize=None)
def citation_graph() -> DiGraph:
    """The Citation DAG stand-in, default (6k, 13k)."""
    return citation_dag(_n(6000), _n(13000), n_labels=24, seed=7)


@functools.lru_cache(maxsize=None)
def synthetic_graph(n_nodes: int, n_edges: int) -> DiGraph:
    """The paper's synthetic generator: 15 labels, locality for partitioning."""
    return random_labeled_graph(n_nodes, n_edges, n_labels=15, seed=7, locality=0.85)


@functools.lru_cache(maxsize=None)
def scalefree_boundary_graph(n_nodes: int, n_edges: int) -> DiGraph:
    """Exp-3 size-sweep graphs: boundary population fixed as |G| grows.

    A fixed link window and a fixed hub set keep the block-partition
    boundary (|Vf|) roughly constant across the size sweep -- the regime in
    which Theorem 2 implies DS independent of |G| (Figure 6(p)).
    """
    return web_graph(
        n_nodes, n_edges, n_labels=15, seed=7,
        locality=0.85, window=48, hub_cap=256,
    )


@functools.lru_cache(maxsize=None)
def partitioned(graph_key: str, n_fragments: int, vf_ratio: float) -> Fragmentation:
    graph = {"yahoo": yahoo_graph, "citation": citation_graph}[graph_key]()
    frag = fragment_graph(graph, contiguous_block_assignment(graph, n_fragments))
    return refine_to_vf_ratio(frag, vf_ratio, seed=3)


def _queries(graph: DiGraph, shape: Tuple[int, int], seeds: int = N_QUERY_SEEDS) -> List[Pattern]:
    return [cyclic_pattern(graph, shape[0], shape[1], seed=41 + i) for i in range(seeds)]


def _dag_queries(graph: DiGraph, d: int, shape: Tuple[int, int] = (9, 13), seeds: int = N_QUERY_SEEDS) -> List[Pattern]:
    return [dag_pattern(graph, d, shape[0], shape[1], seed=41 + i) for i in range(seeds)]


# ----------------------------------------------------------------------
# algorithm registries (per paper panel)
# ----------------------------------------------------------------------
def _general_algorithms(include_match: bool = True) -> Dict[str, Runner]:
    algs: Dict[str, Runner] = {
        "dGPM": lambda q, f: run_dgpm(q, f),
        "disHHK": lambda q, f: run_dishhk(q, f),
        "dGPMNOpt": lambda q, f: run_dgpm(q, f, DgpmConfig().without_optimizations()),
        "dMes": lambda q, f: run_dmes(q, f),
    }
    if include_match:
        algs["Match"] = lambda q, f: run_match(q, f)
    return algs


def _dag_algorithms() -> Dict[str, Runner]:
    return {
        "dGPMd": lambda q, f: run_dgpmd(q, f),
        "disHHK": lambda q, f: run_dishhk(q, f),
        "dMes": lambda q, f: run_dmes(q, f),
        "Match": lambda q, f: run_match(q, f),
    }


# ----------------------------------------------------------------------
# Exp-1: dGPM on the web graph (Figure 6 a-f)
# ----------------------------------------------------------------------
def fig6_ab_vary_fragments(fragments: Tuple[int, ...] = (4, 8, 12, 16, 20)) -> ExperimentSeries:
    """Fig 6(a)(b): PT/DS of dGPM & rivals vs |F|; |Q|=(5,10), |Vf|=25%."""
    graph = yahoo_graph()
    queries = _queries(graph, (5, 10))
    instances = [
        (nf, queries, partitioned("yahoo", nf, 0.25)) for nf in fragments
    ]
    return run_sweep("Fig 6(a)(b) dGPM", "|F|", instances, _general_algorithms())


def fig6_cd_vary_query(
    shapes: Tuple[Tuple[int, int], ...] = ((4, 8), (5, 10), (6, 12), (7, 14), (8, 16)),
) -> ExperimentSeries:
    """Fig 6(c)(d): PT/DS vs |Q| from (4,8) to (8,16); |F|=8, |Vf|=25%."""
    graph = yahoo_graph()
    frag = partitioned("yahoo", 8, 0.25)
    instances = [
        (f"({vq},{eq})", _queries(graph, (vq, eq)), frag) for vq, eq in shapes
    ]
    return run_sweep("Fig 6(c)(d) dGPM", "|Q|", instances, _general_algorithms())


def fig6_ef_vary_vf(ratios: Tuple[float, ...] = (0.25, 0.30, 0.35, 0.40, 0.45, 0.50)) -> ExperimentSeries:
    """Fig 6(e)(f): PT/DS vs |Vf| from 25% to 50%; |F|=8, |Q|=(5,10)."""
    graph = yahoo_graph()
    queries = _queries(graph, (5, 10))
    instances = [
        (f"{ratio:.2f}", queries, partitioned("yahoo", 8, ratio)) for ratio in ratios
    ]
    return run_sweep("Fig 6(e)(f) dGPM", "|Vf|/|V|", instances, _general_algorithms())


# ----------------------------------------------------------------------
# Exp-2: dGPMd on the citation DAG (Figure 6 g-l)
# ----------------------------------------------------------------------
def fig6_gh_vary_diameter(diameters: Tuple[int, ...] = (2, 3, 4, 5, 6, 7, 8)) -> ExperimentSeries:
    """Fig 6(g)(h): PT/DS of dGPMd vs query diameter d; |F|=8, |Q|~(9,13)."""
    graph = citation_graph()
    frag = partitioned("citation", 8, 0.25)
    instances = [(d, _dag_queries(graph, d), frag) for d in diameters]
    return run_sweep("Fig 6(g)(h) dGPMd", "d", instances, _dag_algorithms())


def fig6_ij_vary_fragments_dag(fragments: Tuple[int, ...] = (4, 8, 12, 16, 20)) -> ExperimentSeries:
    """Fig 6(i)(j): PT/DS of dGPMd vs |F|; d=4."""
    graph = citation_graph()
    queries = _dag_queries(graph, 4)
    instances = [
        (nf, queries, partitioned("citation", nf, 0.25)) for nf in fragments
    ]
    return run_sweep("Fig 6(i)(j) dGPMd", "|F|", instances, _dag_algorithms())


def fig6_kl_vary_vf_dag(ratios: Tuple[float, ...] = (0.25, 0.30, 0.35, 0.40, 0.45, 0.50)) -> ExperimentSeries:
    """Fig 6(k)(l): PT/DS of dGPMd vs |Vf|; d=4, |F|=8."""
    graph = citation_graph()
    queries = _dag_queries(graph, 4)
    instances = [
        (f"{ratio:.2f}", queries, partitioned("citation", 8, ratio)) for ratio in ratios
    ]
    return run_sweep("Fig 6(k)(l) dGPMd", "|Vf|/|V|", instances, _dag_algorithms())


# ----------------------------------------------------------------------
# Exp-3: synthetic scalability (Figure 6 m-p)
# ----------------------------------------------------------------------
def fig6_mn_synthetic_fragments(fragments: Tuple[int, ...] = (8, 12, 16, 20)) -> ExperimentSeries:
    """Fig 6(m)(n): PT/DS vs |F| on the synthetic graph (no Match: too big)."""
    graph = synthetic_graph(_n(8000), _n(32000))
    queries = _queries(graph, (5, 10))
    instances = []
    for nf in fragments:
        frag = fragment_graph(graph, contiguous_block_assignment(graph, nf))
        frag = refine_to_vf_ratio(frag, 0.20, seed=3)
        instances.append((nf, queries, frag))
    return run_sweep(
        "Fig 6(m)(n) synthetic", "|F|", instances, _general_algorithms(include_match=False)
    )


def fig6_op_synthetic_size(
    sizes: Tuple[Tuple[int, int], ...] = ((2000, 8000), (4000, 16000), (6000, 24000), (8000, 32000)),
) -> ExperimentSeries:
    """Fig 6(o)(p): PT/DS vs |G| at |F|=20 with the boundary |Vf| held fixed.

    See the module docstring for why |Vf| is fixed in absolute terms: that is
    the regime in which Theorem 2 implies DS independent of |G| (the graphs
    come from :func:`scalefree_boundary_graph`, whose fixed link window and
    hub set pin the block-partition boundary across the sweep).
    """
    instances = []
    for n_nodes, n_edges in sizes:
        graph = scalefree_boundary_graph(_n(n_nodes), _n(n_edges))
        frag = fragment_graph(graph, contiguous_block_assignment(graph, 20))
        queries = _queries(graph, (5, 10))
        instances.append((f"({graph.n_nodes},{graph.n_edges})", queries, frag))
    return run_sweep(
        "Fig 6(o)(p) synthetic", "|G|", instances, _general_algorithms(include_match=False)
    )


# ----------------------------------------------------------------------
# Section 4.2 ablation and Section 5.2 trees
# ----------------------------------------------------------------------
def ablation_optimizations(thetas: Tuple[float, ...] = (0.05, 0.2, 1.0)) -> ExperimentSeries:
    """dGPM vs its ablations: no-increment, no-push, and the θ sweep."""
    graph = yahoo_graph()
    queries = _queries(graph, (5, 10))
    frag = partitioned("yahoo", 8, 0.25)
    algorithms: Dict[str, Runner] = {
        "dGPM": lambda q, f: run_dgpm(q, f),
        "no-incr": lambda q, f: run_dgpm(q, f, DgpmConfig(incremental=False)),
        "no-push": lambda q, f: run_dgpm(q, f, DgpmConfig(enable_push=False)),
        "dGPMNOpt": lambda q, f: run_dgpm(q, f, DgpmConfig().without_optimizations()),
    }
    for theta in thetas:
        algorithms[f"push θ={theta}"] = (
            lambda q, f, t=theta: run_dgpm(q, f, DgpmConfig(push_threshold=t))
        )
    instances = [("yahoo-sub", queries, frag)]
    return run_sweep("§4.2 ablation", "dataset", instances, algorithms)


def trees_series(fragments: Tuple[int, ...] = (4, 8, 12, 16, 20)) -> ExperimentSeries:
    """Corollary 4: dGPMt vs dGPM on a distributed tree, sweeping |F|."""
    tree = random_tree(_n(20000), n_labels=8, seed=7)
    queries = [tree_pattern(tree, 4, seed=41 + i) for i in range(N_QUERY_SEEDS)]
    algorithms: Dict[str, Runner] = {
        "dGPMt": lambda q, f: run_dgpmt(q, f),
        "dGPM": lambda q, f: run_dgpm(q, f),
        "dMes": lambda q, f: run_dmes(q, f),
    }
    instances = [
        (nf, queries, tree_partition(tree, nf, seed=3)) for nf in fragments
    ]
    return run_sweep("§5.2 trees", "|F|", instances, algorithms)


# ----------------------------------------------------------------------
# Table 1 and Theorem 1
# ----------------------------------------------------------------------
def table1_bounds() -> str:
    """Empirical restatement of Table 1's bound *shapes* for this work's rows.

    Demonstrates on one instance: dGPM DS <= the O(|Ef||Vq|) budget; dGPMd
    rounds <= d+1; dGPMt DS ~ O(|Q||F|); and the Figure-5 message counts.
    """
    from repro.graph.examples import figure5

    lines = ["Table 1 (this work's rows): measured against the stated bounds", ""]

    graph = yahoo_graph()
    frag = partitioned("yahoo", 8, 0.25)
    query = _queries(graph, (5, 10), seeds=1)[0]
    result = run_dgpm(query, frag)
    budget = frag.n_crossing_edges * query.n_nodes
    lines.append(
        f"dGPM    DS bound O(|Ef||Vq|): shipped {result.metrics.n_messages} var-messages"
        f" <= budget |Ef|*|Vq| = {budget}  [{'OK' if result.metrics.n_messages <= budget else 'VIOLATED'}]"
    )

    dag = citation_graph()
    dfrag = partitioned("citation", 8, 0.25)
    dquery = _dag_queries(dag, 4, seeds=1)[0]
    dresult = run_dgpmd(dquery, dfrag)
    lines.append(
        f"dGPMd   rounds bound d+1: used {dresult.metrics.n_rounds} rounds,"
        f" d = {dquery.diameter()}  [{'OK' if dresult.metrics.n_rounds <= dquery.diameter() + 2 else 'VIOLATED'}]"
    )

    tree = random_tree(_n(5000), n_labels=8, seed=7)
    tfrag = tree_partition(tree, 8, seed=3)
    tquery = tree_pattern(tree, 4, seed=41)
    tresult = run_dgpmt(tquery, tfrag)
    lines.append(
        f"dGPMt   DS ~ O(|Q||F|): shipped {tresult.metrics.ds_kb:.2f}KB over"
        f" |F| = {tfrag.n_fragments} fragments in {tresult.metrics.n_rounds} rounds"
    )

    q5, g5, f5 = figure5()
    m_dgpm = run_dgpm(q5, f5, DgpmConfig(enable_push=False)).metrics.n_messages
    m_dgpmd = run_dgpmd(q5, f5).metrics.n_messages
    lines.append(
        f"Fig 5   messages: dGPM = {m_dgpm} (paper: 12), dGPMd = {m_dgpmd} (paper: 6)"
    )
    return "\n".join(lines)


def impossibility_report(sizes: Tuple[int, ...] = (4, 8, 16, 32, 64)) -> str:
    """Theorem 1's two families, audited on dGPM (see core.impossibility)."""
    pt = audit_parallel_time(sizes)
    ds = audit_data_shipment(sizes)
    lines = [
        "Theorem 1 audit: any correct algorithm must scale with n on these families",
        "",
        "family (1): |Q|, |Fm| constant; |F| = n  (response-time impossibility)",
        f"{'n':>5} {'|Fm|':>6} {'rounds':>7} {'correct':>8}",
    ]
    for p in pt:
        lines.append(f"{p.n:>5} {p.fm_size:>6} {p.rounds:>7} {str(p.correct):>8}")
    lines += [
        "",
        "family (2): |Q| constant; |F| = 2  (data-shipment impossibility)",
        f"{'n':>5} {'|F|':>5} {'DS bytes':>9} {'correct':>8}",
    ]
    for p in ds:
        lines.append(f"{p.n:>5} {p.n_fragments:>5} {p.ds_bytes:>9} {str(p.correct):>8}")
    return "\n".join(lines)
