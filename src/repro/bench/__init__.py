"""Benchmark harness: workloads, sweeps, and the Figure-6 experiment suite.

* :mod:`~repro.bench.workloads` -- query generators that sample patterns
  *from the data graph* with match-preserving growth operations, mirroring
  the paper's workloads ("20 cyclic patterns with conditions ...", DAG query
  sets ``Q1..Q8`` with diameter ``d = i + 1``);
* :mod:`~repro.bench.harness` -- sweep runner producing paper-style series
  (one row per x-value, one column per algorithm, PT and DS);
* :mod:`~repro.bench.figures` -- the sixteen Figure-6 panels plus Table 1 and
  the Theorem-1 audit, each as a parameterized experiment;
* :mod:`~repro.bench.stream` -- sustained query-stream throughput of the
  resident session layer vs one-shot runs (not a paper figure; the ROADMAP's
  serving scenario);
* :mod:`~repro.bench.cli` -- ``python -m repro.bench --figure 6a``.
"""

from repro.bench.workloads import cyclic_pattern, dag_pattern, tree_pattern
from repro.bench.harness import ExperimentSeries, SweepPoint, run_sweep
from repro.bench.stream import (
    StreamPoint,
    StreamSeries,
    UpdatePoint,
    UpdateSeries,
    mixed_query_stream,
    mixed_update_stream,
    query_stream_series,
    update_stream_series,
)

__all__ = [
    "cyclic_pattern",
    "dag_pattern",
    "tree_pattern",
    "ExperimentSeries",
    "SweepPoint",
    "run_sweep",
    "StreamPoint",
    "StreamSeries",
    "mixed_query_stream",
    "query_stream_series",
    "UpdatePoint",
    "UpdateSeries",
    "mixed_update_stream",
    "update_stream_series",
]
