"""Sustained stream throughput of the resident session layer.

Two experiments live here.

:func:`query_stream_series` (behind ``benchmarks/bench_query_stream.py``): a
resident fragmentation serves a stream of pattern queries, and we compare

* **one-shot** -- each query goes through the public ``run_dgpm`` entry
  point, paying the per-graph setup (dependency/watcher tables, engine and
  network wiring) every time; this is how every Fig.-6 benchmark drives the
  system, and the right cost model for a single reproduction run;
* **session** -- a :class:`~repro.session.SimulationSession` pays the setup
  once, serves the same stream through cached structures, and answers
  repeated queries from its LRU result cache.

Streams are *mixed*: a pool of distinct patterns sampled from the data
graph, cycled ``repeat`` times (web workloads repeat hot queries; the cache
is useless without repetition and undersold without distinct queries).
Parity with the one-shot answers is asserted on every point -- throughput
that changes answers would be worthless.

:func:`update_stream_series` (behind ``benchmarks/bench_updates.py``): the
same resident graph now *changes* under the query stream.  One session uses
the in-place maintenance pipeline (fragmentation patched per update, warm
incremental repair of hot cached queries, label-relevance retention); the
baseline session drops every derived structure on every mutation
(``maintenance="invalidate"`` -- the pre-maintenance behavior).  Both serve
an identical interleaved delete/insert/query stream; every answer is
parity-checked between the two modes, and the maintained session is
additionally checked against a from-scratch centralized ``simulation`` after
every mutation.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.bench.workloads import cyclic_pattern
from repro.core.config import DgpmConfig
from repro.core.dgpm import run_dgpm
from repro.graph.digraph import DiGraph
from repro.graph.generators import web_graph
from repro.graph.pattern import Pattern
from repro.partition.fragmentation import Fragmentation
from repro.session import SimulationSession


def mixed_query_stream(
    graph: DiGraph,
    n_distinct: int = 6,
    repeat: int = 4,
    n_nodes: int = 4,
    n_edges: int = 6,
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> List[Pattern]:
    """``n_distinct`` patterns sampled from ``graph``, cycled ``repeat`` times.

    Patterns are re-instantiated per repetition (fresh ``Pattern`` objects),
    so cache hits must come from canonical hashing, not object identity.

    With ``rng``, the distinct patterns are drawn from the caller's
    generator (per-pattern sub-seeds derived from it); by default each
    pattern gets the deterministic seed ``seed + s``.
    """
    sub_seeds = (
        [rng.randrange(2**31) for _ in range(n_distinct)]
        if rng is not None
        else [seed + s for s in range(n_distinct)]
    )
    stream: List[Pattern] = []
    for rep in range(repeat):
        for s in range(n_distinct):
            stream.append(
                cyclic_pattern(
                    graph, n_nodes=n_nodes, n_edges=n_edges, seed=sub_seeds[s]
                )
            )
    return stream


@dataclass
class StreamPoint:
    """Measured throughput at one fragment count."""

    n_fragments: int
    n_queries: int
    n_distinct: int
    oneshot_seconds: float
    session_seconds: float
    cache_hit_rate: float
    #: session time on the distinct prefix only (no possible cache hit) --
    #: isolates the setup-amortization gain from the caching gain
    session_distinct_seconds: float
    oneshot_distinct_seconds: float
    parity: bool

    @property
    def oneshot_qps(self) -> float:
        return self.n_queries / self.oneshot_seconds if self.oneshot_seconds else 0.0

    @property
    def session_qps(self) -> float:
        return self.n_queries / self.session_seconds if self.session_seconds else 0.0

    @property
    def speedup(self) -> float:
        """One-shot per-query wall time over session per-query wall time."""
        return self.oneshot_seconds / self.session_seconds if self.session_seconds else 0.0

    @property
    def distinct_speedup(self) -> float:
        """Setup-amortization gain alone (all-distinct prefix, no cache hits)."""
        if not self.session_distinct_seconds:
            return 0.0
        return self.oneshot_distinct_seconds / self.session_distinct_seconds


@dataclass
class StreamSeries:
    """The full sweep over fragment counts."""

    points: List[StreamPoint] = field(default_factory=list)

    def render(self) -> str:
        header = (
            f"{'|F|':>5} {'queries':>8} {'one-shot q/s':>13} {'session q/s':>12} "
            f"{'speedup':>8} {'distinct x':>10} {'hit rate':>9} {'parity':>7}"
        )
        lines = [header, "-" * len(header)]
        for p in self.points:
            lines.append(
                f"{p.n_fragments:>5} {p.n_queries:>8} {p.oneshot_qps:>13.1f} "
                f"{p.session_qps:>12.1f} {p.speedup:>7.2f}x {p.distinct_speedup:>9.2f}x "
                f"{p.cache_hit_rate:>8.0%} {'ok' if p.parity else 'FAIL':>7}"
            )
        return "\n".join(lines)


def measure_stream_point(
    fragmentation: Fragmentation,
    stream: Sequence[Pattern],
    n_distinct: int,
    config: Optional[DgpmConfig] = None,
) -> StreamPoint:
    """Serve ``stream`` one-shot and via a session; meter both, check parity."""
    config = config or DgpmConfig()

    t0 = time.perf_counter()
    oneshot = [run_dgpm(q, fragmentation, config) for q in stream]
    oneshot_seconds = time.perf_counter() - t0
    oneshot_distinct_seconds = oneshot_seconds * n_distinct / max(1, len(stream))

    # A fresh session serving only distinct queries: amortization, no caching.
    distinct_session = SimulationSession(fragmentation, config=config).warm()
    t0 = time.perf_counter()
    distinct_session.run_many(stream[:n_distinct], algorithm="dgpm")
    session_distinct_seconds = time.perf_counter() - t0

    session = SimulationSession(fragmentation, config=config)
    t0 = time.perf_counter()
    served = session.run_many(stream, algorithm="dgpm")
    session_seconds = time.perf_counter() - t0

    parity = all(
        s.relation == o.relation for s, o in zip(served, oneshot)
    )
    return StreamPoint(
        n_fragments=fragmentation.n_fragments,
        n_queries=len(stream),
        n_distinct=n_distinct,
        oneshot_seconds=oneshot_seconds,
        session_seconds=session_seconds,
        cache_hit_rate=session.stats.hit_rate,
        session_distinct_seconds=session_distinct_seconds,
        oneshot_distinct_seconds=oneshot_distinct_seconds,
        parity=parity,
    )


def query_stream_series(
    fragment_counts: Sequence[int] = (4, 8, 16),
    n_nodes: int = 3000,
    n_edges: int = 15000,
    n_distinct: int = 6,
    repeat: int = 4,
    seed: int = 7,
    config: Optional[DgpmConfig] = None,
) -> StreamSeries:
    """Sweep sustained queries/sec over fragment counts on one web graph."""
    from repro import partition

    graph = web_graph(n_nodes, n_edges, seed=seed)
    stream = mixed_query_stream(graph, n_distinct=n_distinct, repeat=repeat, seed=seed)
    series = StreamSeries()
    for n_fragments in fragment_counts:
        frag = partition(graph, n_fragments=n_fragments, seed=seed, vf_ratio=0.25)
        series.points.append(
            measure_stream_point(frag, stream, n_distinct=n_distinct, config=config)
        )
    return series


# ----------------------------------------------------------------------
# mutating streams: incremental maintenance vs drop-everything
# ----------------------------------------------------------------------

def mixed_update_stream(
    graph: DiGraph,
    n_rounds: int = 30,
    n_hot: int = 3,
    seed: int = 0,
    queries: Optional[Sequence[Pattern]] = None,
    rng: Optional[random.Random] = None,
) -> List[Tuple]:
    """An interleaved mutation/query op list over ``graph``.

    Each round mutates once (mostly deletions; every fourth round re-inserts
    a previously deleted edge, so the stream also exercises the revival
    path) and then queries one of ``n_hot`` hot patterns.  When ``queries``
    are given, every other deletion is drawn from edges whose label pair a
    query edge carries -- the adversarial half of the stream that actually
    invalidates answers and forces repairs (uniform deletions on a large
    alphabet almost never touch a witness).  Ops are generated against a
    scratch copy, so the same list can be replayed against independent
    sessions.  ``rng`` overrides ``seed`` (one caller-owned stream across
    many calls); by default the call is a pure function of its arguments.
    """
    rng = rng if rng is not None else random.Random(seed)
    scratch = graph.copy()
    relevant_pairs = (
        {(q.label(a), q.label(b)) for q in queries for a, b in q.edges()}
        if queries
        else set()
    )
    deleted: List[Tuple] = []
    ops: List[Tuple] = []
    for step in range(n_rounds):
        if step % 4 == 3 and deleted:
            u, v = deleted.pop(rng.randrange(len(deleted)))
            scratch.add_edge(u, v)
            ops.append(("insert", u, v))
        else:
            edges = list(scratch.edges())
            if relevant_pairs and step % 2 == 0:
                hot = [
                    (u, v)
                    for u, v in edges
                    if (scratch.label(u), scratch.label(v)) in relevant_pairs
                ]
                if hot:
                    edges = hot
            u, v = edges[rng.randrange(len(edges))]
            scratch.remove_edge(u, v)
            deleted.append((u, v))
            ops.append(("delete", u, v))
        ops.append(("query", step % n_hot))
    return ops


@dataclass
class UpdatePoint:
    """Measured update+query throughput at one fragment count."""

    n_fragments: int
    n_ops: int
    n_mutations: int
    maintained_seconds: float
    invalidate_seconds: float
    #: answers identical between the two modes (a dedicated oracle pass
    #: additionally *raises* if the maintained session ever disagrees with
    #: from-scratch simulation after a mutation, when enabled)
    parity: bool
    cache_repaired: int
    cache_kept: int
    cache_evicted: int
    invalidations: int  # of the maintained session; must stay 0

    @property
    def maintained_ops(self) -> float:
        return self.n_ops / self.maintained_seconds if self.maintained_seconds else 0.0

    @property
    def invalidate_ops(self) -> float:
        return self.n_ops / self.invalidate_seconds if self.invalidate_seconds else 0.0

    @property
    def speedup(self) -> float:
        """Drop-everything wall time over maintained wall time."""
        return (
            self.invalidate_seconds / self.maintained_seconds
            if self.maintained_seconds
            else 0.0
        )


@dataclass
class UpdateSeries:
    """The sweep over fragment counts for the mutating-stream experiment."""

    points: List[UpdatePoint] = field(default_factory=list)

    def render(self) -> str:
        header = (
            f"{'|F|':>5} {'ops':>5} {'muts':>5} {'drop-all ops/s':>15} "
            f"{'maintained ops/s':>17} {'speedup':>8} {'repaired':>9} "
            f"{'kept':>6} {'evicted':>8} {'parity':>7}"
        )
        lines = [header, "-" * len(header)]
        for p in self.points:
            lines.append(
                f"{p.n_fragments:>5} {p.n_ops:>5} {p.n_mutations:>5} "
                f"{p.invalidate_ops:>15.1f} {p.maintained_ops:>17.1f} "
                f"{p.speedup:>7.2f}x {p.cache_repaired:>9} {p.cache_kept:>6} "
                f"{p.cache_evicted:>8} {'ok' if p.parity else 'FAIL':>7}"
            )
        return "\n".join(lines)


def _replay_ops(session, queries, ops, oracle: bool):
    """Apply ``ops``; return (timed seconds, served relations).

    Only the op itself is timed.  With ``oracle`` set, every mutation is
    followed by an *untimed* from-scratch ``simulation`` check of every hot
    query against the session's current graph.
    """
    from repro.simulation import simulation

    elapsed = 0.0
    relations = []
    graph = session.fragmentation.graph
    for op in ops:
        if op[0] == "query":
            t0 = time.perf_counter()
            result = session.run(queries[op[1]], algorithm="dgpm")
            elapsed += time.perf_counter() - t0
            relations.append(result.relation)
        elif op[0] == "delete":
            t0 = time.perf_counter()
            session.delete_edge(op[1], op[2])
            elapsed += time.perf_counter() - t0
        else:
            t0 = time.perf_counter()
            session.insert_edge(op[1], op[2])
            elapsed += time.perf_counter() - t0
        if oracle and op[0] != "query":
            for q in queries:
                served = session.run(q, algorithm="dgpm").relation
                if served != simulation(q, graph):
                    raise AssertionError(f"parity violated after {op!r}")
    return elapsed, relations


def measure_update_point(
    make_fragmentation,
    ops: Sequence[Tuple],
    queries: Sequence[Pattern],
    n_fragments: int,
    oracle: bool = True,
) -> UpdatePoint:
    """Replay one op stream in both maintenance modes and compare.

    ``make_fragmentation`` builds a *fresh* fragmentation (each mode mutates
    its own resident graph).  Hot queries are pre-served twice per session
    (untimed) so the maintained session starts with warm states -- the
    steady-state a long-running server reaches anyway.

    With ``oracle`` set, a *third* (maintained) session replays the stream
    with from-scratch ``simulation`` checks after every mutation; keeping the
    oracle off the timed sessions means neither gets its cache pre-warmed by
    the checking itself.
    """
    def fresh_session(mode: str) -> SimulationSession:
        session = SimulationSession(make_fragmentation(), maintenance=mode).warm()
        for _ in range(2):
            for q in queries:
                session.run(q, algorithm="dgpm")
        return session

    maintained = fresh_session("incremental")
    maintained_seconds, maintained_rel = _replay_ops(
        maintained, queries, ops, oracle=False
    )
    invalidate_seconds, invalidate_rel = _replay_ops(
        fresh_session("invalidate"), queries, ops, oracle=False
    )
    if oracle:
        # Raises AssertionError on the first divergence from the oracle.
        _replay_ops(fresh_session("incremental"), queries, ops, oracle=True)

    stats = maintained.stats
    parity = maintained_rel == invalidate_rel and stats.invalidations == 0
    return UpdatePoint(
        n_fragments=n_fragments,
        n_ops=len(ops),
        n_mutations=sum(1 for op in ops if op[0] != "query"),
        maintained_seconds=maintained_seconds,
        invalidate_seconds=invalidate_seconds,
        parity=parity,
        cache_repaired=stats.entries_repaired,
        cache_kept=stats.entries_kept,
        cache_evicted=stats.entries_evicted,
        invalidations=stats.invalidations,
    )


def update_stream_series(
    fragment_counts: Sequence[int] = (4, 8),
    n_nodes: int = 2000,
    n_edges: int = 10000,
    n_rounds: int = 30,
    n_hot: int = 3,
    seed: int = 13,
    oracle: bool = True,
) -> UpdateSeries:
    """Sweep update+query ops/sec over fragment counts on one web graph."""
    from repro import partition

    series = UpdateSeries()
    for n_fragments in fragment_counts:
        graph = web_graph(n_nodes, n_edges, seed=seed)
        queries = [
            cyclic_pattern(graph, n_nodes=3, n_edges=4, seed=seed + s)
            for s in range(n_hot)
        ]
        ops = mixed_update_stream(
            graph, n_rounds=n_rounds, n_hot=n_hot, seed=seed, queries=queries
        )

        def make_fragmentation():
            fresh = web_graph(n_nodes, n_edges, seed=seed)
            return partition(fresh, n_fragments=n_fragments, seed=seed, vf_ratio=0.25)

        series.points.append(
            measure_update_point(
                make_fragmentation, ops, queries, n_fragments, oracle=oracle
            )
        )
    return series
