"""Sustained query-stream throughput: resident session vs one-shot runs.

The experiment behind ``benchmarks/bench_query_stream.py``: a resident
fragmentation serves a stream of pattern queries, and we compare

* **one-shot** -- each query goes through the public ``run_dgpm`` entry
  point, paying the per-graph setup (dependency/watcher tables, engine and
  network wiring) every time; this is how every Fig.-6 benchmark drives the
  system, and the right cost model for a single reproduction run;
* **session** -- a :class:`~repro.session.SimulationSession` pays the setup
  once, serves the same stream through cached structures, and answers
  repeated queries from its LRU result cache.

Streams are *mixed*: a pool of distinct patterns sampled from the data
graph, cycled ``repeat`` times (web workloads repeat hot queries; the cache
is useless without repetition and undersold without distinct queries).
Parity with the one-shot answers is asserted on every point -- throughput
that changes answers would be worthless.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.bench.workloads import cyclic_pattern
from repro.core.config import DgpmConfig
from repro.core.dgpm import run_dgpm
from repro.graph.digraph import DiGraph
from repro.graph.generators import web_graph
from repro.graph.pattern import Pattern
from repro.partition.fragmentation import Fragmentation
from repro.session import SimulationSession


def mixed_query_stream(
    graph: DiGraph,
    n_distinct: int = 6,
    repeat: int = 4,
    n_nodes: int = 4,
    n_edges: int = 6,
    seed: int = 0,
) -> List[Pattern]:
    """``n_distinct`` patterns sampled from ``graph``, cycled ``repeat`` times.

    Patterns are re-instantiated per repetition (fresh ``Pattern`` objects),
    so cache hits must come from canonical hashing, not object identity.
    """
    stream: List[Pattern] = []
    for rep in range(repeat):
        for s in range(n_distinct):
            stream.append(
                cyclic_pattern(graph, n_nodes=n_nodes, n_edges=n_edges, seed=seed + s)
            )
    return stream


@dataclass
class StreamPoint:
    """Measured throughput at one fragment count."""

    n_fragments: int
    n_queries: int
    n_distinct: int
    oneshot_seconds: float
    session_seconds: float
    cache_hit_rate: float
    #: session time on the distinct prefix only (no possible cache hit) --
    #: isolates the setup-amortization gain from the caching gain
    session_distinct_seconds: float
    oneshot_distinct_seconds: float
    parity: bool

    @property
    def oneshot_qps(self) -> float:
        return self.n_queries / self.oneshot_seconds if self.oneshot_seconds else 0.0

    @property
    def session_qps(self) -> float:
        return self.n_queries / self.session_seconds if self.session_seconds else 0.0

    @property
    def speedup(self) -> float:
        """One-shot per-query wall time over session per-query wall time."""
        return self.oneshot_seconds / self.session_seconds if self.session_seconds else 0.0

    @property
    def distinct_speedup(self) -> float:
        """Setup-amortization gain alone (all-distinct prefix, no cache hits)."""
        if not self.session_distinct_seconds:
            return 0.0
        return self.oneshot_distinct_seconds / self.session_distinct_seconds


@dataclass
class StreamSeries:
    """The full sweep over fragment counts."""

    points: List[StreamPoint] = field(default_factory=list)

    def render(self) -> str:
        header = (
            f"{'|F|':>5} {'queries':>8} {'one-shot q/s':>13} {'session q/s':>12} "
            f"{'speedup':>8} {'distinct x':>10} {'hit rate':>9} {'parity':>7}"
        )
        lines = [header, "-" * len(header)]
        for p in self.points:
            lines.append(
                f"{p.n_fragments:>5} {p.n_queries:>8} {p.oneshot_qps:>13.1f} "
                f"{p.session_qps:>12.1f} {p.speedup:>7.2f}x {p.distinct_speedup:>9.2f}x "
                f"{p.cache_hit_rate:>8.0%} {'ok' if p.parity else 'FAIL':>7}"
            )
        return "\n".join(lines)


def measure_stream_point(
    fragmentation: Fragmentation,
    stream: Sequence[Pattern],
    n_distinct: int,
    config: Optional[DgpmConfig] = None,
) -> StreamPoint:
    """Serve ``stream`` one-shot and via a session; meter both, check parity."""
    config = config or DgpmConfig()

    t0 = time.perf_counter()
    oneshot = [run_dgpm(q, fragmentation, config) for q in stream]
    oneshot_seconds = time.perf_counter() - t0
    oneshot_distinct_seconds = oneshot_seconds * n_distinct / max(1, len(stream))

    # A fresh session serving only distinct queries: amortization, no caching.
    distinct_session = SimulationSession(fragmentation, config=config).warm()
    t0 = time.perf_counter()
    distinct_session.run_many(stream[:n_distinct], algorithm="dgpm")
    session_distinct_seconds = time.perf_counter() - t0

    session = SimulationSession(fragmentation, config=config)
    t0 = time.perf_counter()
    served = session.run_many(stream, algorithm="dgpm")
    session_seconds = time.perf_counter() - t0

    parity = all(
        s.relation == o.relation for s, o in zip(served, oneshot)
    )
    return StreamPoint(
        n_fragments=fragmentation.n_fragments,
        n_queries=len(stream),
        n_distinct=n_distinct,
        oneshot_seconds=oneshot_seconds,
        session_seconds=session_seconds,
        cache_hit_rate=session.stats.hit_rate,
        session_distinct_seconds=session_distinct_seconds,
        oneshot_distinct_seconds=oneshot_distinct_seconds,
        parity=parity,
    )


def query_stream_series(
    fragment_counts: Sequence[int] = (4, 8, 16),
    n_nodes: int = 3000,
    n_edges: int = 15000,
    n_distinct: int = 6,
    repeat: int = 4,
    seed: int = 7,
    config: Optional[DgpmConfig] = None,
) -> StreamSeries:
    """Sweep sustained queries/sec over fragment counts on one web graph."""
    from repro import partition

    graph = web_graph(n_nodes, n_edges, seed=seed)
    stream = mixed_query_stream(graph, n_distinct=n_distinct, repeat=repeat, seed=seed)
    series = StreamSeries()
    for n_fragments in fragment_counts:
        frag = partition(graph, n_fragments=n_fragments, seed=seed, vf_ratio=0.25)
        series.points.append(
            measure_stream_point(frag, stream, n_distinct=n_distinct, config=config)
        )
    return series
