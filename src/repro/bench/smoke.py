"""Machine-readable smoke results: one JSON per bench, one artifact per run.

``benchmarks/results/`` holds the human-readable series tables; CI's perf
trajectory needs numbers a script can diff.  Each benchmark's ``--smoke``
entry point calls :func:`record_smoke` with its headline figures; when the
``BENCH_SMOKE_DIR`` environment variable is set (CI sets it), the payload is
written to ``$BENCH_SMOKE_DIR/<bench>.json``.  After all smokes ran,
``python -m repro.bench.smoke --dir <dir> --out BENCH_SMOKE.json`` merges
them into the single per-run artifact CI uploads.

Without ``BENCH_SMOKE_DIR`` the recorder is a no-op, so local benchmark runs
behave exactly as before.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Optional

ENV_VAR = "BENCH_SMOKE_DIR"


def record_smoke(bench: str, payload: dict) -> Optional[Path]:
    """Persist one benchmark's machine-readable result (no-op unless CI asks).

    ``payload`` must be JSON-serializable; ``bench`` names the output file
    and the entry in the merged artifact.  Returns the written path, or
    ``None`` when ``BENCH_SMOKE_DIR`` is unset.
    """
    directory = os.environ.get(ENV_VAR)
    if not directory:
        return None
    out_dir = Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{bench}.json"
    document = {"bench": bench, "recorded_at": time.time(), **payload}
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def collect(directory: Path, out: Path) -> dict:
    """Merge every ``<bench>.json`` under ``directory`` into ``out``.

    The merged document carries enough environment context (python version,
    platform, timestamp) that artifacts from different runs are comparable.
    """
    benches = {}
    for path in sorted(Path(directory).glob("*.json")):
        with open(path) as fh:
            entry = json.load(fh)
        benches[entry.get("bench", path.stem)] = entry
    merged = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "n_benches": len(benches),
        "benches": benches,
    }
    out = Path(out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    return merged


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--dir",
        default=os.environ.get(ENV_VAR, "benchmarks/results/smoke"),
        help="directory holding the per-bench JSON files",
    )
    parser.add_argument(
        "--out",
        default="BENCH_SMOKE.json",
        help="merged artifact to write",
    )
    args = parser.parse_args(argv)
    merged = collect(Path(args.dir), Path(args.out))
    print(
        f"collected {merged['n_benches']} bench result(s) from {args.dir} "
        f"into {args.out}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
