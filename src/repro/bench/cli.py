"""Command-line entry point: ``python -m repro.bench`` / ``repro-bench``.

Runs one experiment (or all of them) and prints the paper-style series.

Examples
--------
::

    repro-bench --list
    repro-bench --figure 6ab
    REPRO_SCALE=0.5 repro-bench --all
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.bench import figures

#: experiment id -> callable returning a printable report
EXPERIMENTS: Dict[str, Callable[[], object]] = {
    "6ab": figures.fig6_ab_vary_fragments,
    "6cd": figures.fig6_cd_vary_query,
    "6ef": figures.fig6_ef_vary_vf,
    "6gh": figures.fig6_gh_vary_diameter,
    "6ij": figures.fig6_ij_vary_fragments_dag,
    "6kl": figures.fig6_kl_vary_vf_dag,
    "6mn": figures.fig6_mn_synthetic_fragments,
    "6op": figures.fig6_op_synthetic_size,
    "ablation": figures.ablation_optimizations,
    "trees": figures.trees_series,
    "table1": figures.table1_bounds,
    "impossibility": figures.impossibility_report,
}


def _render(value: object) -> str:
    render = getattr(value, "render", None)
    return render() if callable(render) else str(value)


def main(argv: list | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Reproduce the experiments of 'Distributed Graph Simulation: "
        "Impossibility and Possibility' (VLDB 2014).",
    )
    parser.add_argument("--figure", metavar="ID", help="experiment id (see --list)")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--scale", type=float, metavar="X",
        help="graph-size multiplier (sets REPRO_SCALE for this run)",
    )
    args = parser.parse_args(argv)

    if args.scale is not None:
        import os

        os.environ["REPRO_SCALE"] = str(args.scale)
        from repro.bench import figures as _figures

        _figures.yahoo_graph.cache_clear()
        _figures.citation_graph.cache_clear()
        _figures.synthetic_graph.cache_clear()
        _figures.scalefree_boundary_graph.cache_clear()
        _figures.partitioned.cache_clear()

    if args.list:
        for key, fn in EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{key:>14}  {doc}")
        return 0
    if args.all:
        for key, fn in EXPERIMENTS.items():
            print(f"\n######## {key} ########")
            print(_render(fn()))
        return 0
    if args.figure:
        key = args.figure.lower()
        if key.startswith("fig"):
            key = key[3:]
        fn = EXPERIMENTS.get(key)
        if fn is None:
            print(f"unknown experiment {args.figure!r}; try --list", file=sys.stderr)
            return 2
        print(_render(fn()))
        return 0
    parser.print_help()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
