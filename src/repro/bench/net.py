"""Network-ingress throughput: localhost TCP vs the in-process thread backend.

The question this series answers: what does putting the serving stack behind
a real socket *cost*?  The same mixed query stream is served two ways over
the same resident 16-fragment graph:

* **in-process** -- a :class:`ConcurrentSessionServer` (thread backend),
  queries submitted directly; the PR-3 measurement and the denominator.
* **TCP** -- an identical, separately-built server fronted by the asyncio
  ingress (:mod:`repro.net.server`); ``n_clients`` OS threads each hold a
  blocking :class:`~repro.net.client.SessionClient` connection and split
  the stream round-robin, so requests genuinely overlap on the wire.

Each mode gets its own freshly-built server (cold result cache, warm graph
structures), so cache hits land symmetrically and the delta is purely
ingress overhead: framing, pickling, syscalls, and the event loop.

Parity is asserted per query against a serial session's relations (stamp 0
-- the stream never mutates), so throughput can never be bought with wrong
answers.  ``benchmarks/bench_net.py`` gates TCP at >= 0.5x in-process on
the |F|=16 stream.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.bench.concurrent import usable_cpus
from repro.bench.stream import mixed_query_stream
from repro.core.config import DgpmConfig
from repro.net.client import SessionClient
from repro.net.server import serve_in_thread
from repro.session import ConcurrentSessionServer, SimulationSession


@dataclass
class NetPoint:
    """Measured throughput of both serving paths at one fragment count."""

    n_fragments: int
    n_queries: int
    n_clients: int
    n_workers: int
    inproc_seconds: float
    tcp_seconds: float
    parity: bool

    @property
    def inproc_qps(self) -> float:
        return self.n_queries / self.inproc_seconds if self.inproc_seconds else 0.0

    @property
    def tcp_qps(self) -> float:
        return self.n_queries / self.tcp_seconds if self.tcp_seconds else 0.0

    @property
    def tcp_ratio(self) -> float:
        """TCP throughput as a fraction of in-process throughput."""
        return self.inproc_seconds / self.tcp_seconds if self.tcp_seconds else 0.0


@dataclass
class NetSeries:
    """The sweep over fragment counts, plus the environment that bounds it."""

    n_cpus: int = field(default_factory=usable_cpus)
    points: List[NetPoint] = field(default_factory=list)

    def render(self) -> str:
        header = (
            f"{'|F|':>5} {'queries':>8} {'clients':>8} {'inproc q/s':>11} "
            f"{'tcp q/s':>9} {'tcp/inproc':>11} {'parity':>7}"
        )
        lines = [f"usable CPUs: {self.n_cpus}", header, "-" * len(header)]
        for p in self.points:
            lines.append(
                f"{p.n_fragments:>5} {p.n_queries:>8} {p.n_clients:>8} "
                f"{p.inproc_qps:>11.1f} {p.tcp_qps:>9.1f} "
                f"{p.tcp_ratio:>10.2f}x {'ok' if p.parity else 'FAIL':>7}"
            )
        return "\n".join(lines)


def _serve_stream_over_tcp(
    address, stream, n_clients: int, algorithm: str
) -> List:
    """Split the stream round-robin over ``n_clients`` blocking connections."""
    results: List = [None] * len(stream)
    failures: List[BaseException] = []

    def client_main(cid: int) -> None:
        try:
            with SessionClient(*address, timeout=300.0) as client:
                for i in range(cid, len(stream), n_clients):
                    results[i] = client.run(stream[i], algorithm=algorithm)
        except BaseException as exc:  # surfaced to the caller below
            failures.append(exc)

    threads = [
        threading.Thread(target=client_main, args=(cid,), daemon=True)
        for cid in range(n_clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if failures:
        raise failures[0]
    return results


def measure_net_point(
    fragmentation,
    stream,
    n_clients: int = 4,
    n_workers: int = 4,
    config: Optional[DgpmConfig] = None,
    algorithm: str = "dgpm",
) -> NetPoint:
    """Serve one stream in-process and over localhost TCP; compare.

    Server/pool/ingress startup is excluded from every timing (a
    long-running server pays it once); both modes get an identically
    warmed, cold-cache server.
    """
    config = config or DgpmConfig()

    serial = SimulationSession(fragmentation, config=config).warm().run_many(
        stream, algorithm=algorithm
    )

    with ConcurrentSessionServer(
        fragmentation, backend="thread", n_workers=n_workers, config=config
    ) as server:
        server.session.warm()
        t0 = time.perf_counter()
        inproc = server.run_many(stream, algorithm=algorithm)
        inproc_seconds = time.perf_counter() - t0

    with serve_in_thread(
        fragmentation, backend="thread", n_workers=n_workers, config=config
    ) as srv:
        srv.ingress.server.session.warm()
        t0 = time.perf_counter()
        netted = _serve_stream_over_tcp(srv.address, stream, n_clients, algorithm)
        tcp_seconds = time.perf_counter() - t0

    parity = all(
        s.relation == i.relation == n.relation
        for s, i, n in zip(serial, inproc, netted)
    ) and all(r.stamp == 0 for r in inproc + netted)

    return NetPoint(
        n_fragments=fragmentation.n_fragments,
        n_queries=len(stream),
        n_clients=n_clients,
        n_workers=n_workers,
        inproc_seconds=inproc_seconds,
        tcp_seconds=tcp_seconds,
        parity=parity,
    )


def net_stream_series(
    fragment_counts: Sequence[int] = (16,),
    n_nodes: int = 3000,
    n_edges: int = 15000,
    n_distinct: int = 12,
    repeat: int = 3,
    n_clients: int = 4,
    n_workers: int = 4,
    seed: int = 7,
    config: Optional[DgpmConfig] = None,
) -> NetSeries:
    """Sweep both serving paths over fragment counts on one web graph."""
    from repro import partition
    from repro.graph.generators import web_graph

    graph = web_graph(n_nodes, n_edges, seed=seed)
    stream = mixed_query_stream(graph, n_distinct=n_distinct, repeat=repeat, seed=seed)
    series = NetSeries()
    for n_fragments in fragment_counts:
        frag = partition(graph, n_fragments=n_fragments, seed=seed, vf_ratio=0.25)
        series.points.append(
            measure_net_point(
                frag,
                stream,
                n_clients=n_clients,
                n_workers=n_workers,
                config=config,
            )
        )
    return series
