"""``python -m repro.bench`` forwards to the CLI."""

from repro.bench.cli import main

raise SystemExit(main())
