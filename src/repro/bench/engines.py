"""Dict engine vs array engine: single-thread q/s on the mixed query stream.

The array engine (``engine="array"``, :mod:`repro.core.arraystate`) exists
for one reason: per-query evaluation cost.  This module measures exactly
that -- the same resident fragmentation serves the same |F|=16 mixed query
stream through two sessions, one per engine, and we report queries/sec and
the speedup.  Every answer is parity-checked between the engines first;
throughput that changes answers would be worthless.

Measurement protocol (deliberate choices, in order of importance):

* **Push disabled** (``DgpmConfig(enable_push=False)``).  The Section-4.2
  push optimization is symbolic-equation machinery whose cost is identical
  under both engines and dominates when enabled, so it would dilute the
  engine comparison; it is also a communication-rounds optimization that is
  a uniform net loss in the in-process harness.  Comparing both engines
  under the same no-push config isolates what this benchmark is about: the
  evaluation engine.
* **Result cache off** (``cache_size=0``).  A cache hit costs the same under
  either engine; we are metering evaluation, not caching.
* **CPU time, not wall time** (``time.process_time``).  Wall clock on shared
  runners includes hypervisor steal; CPU time is what the engine actually
  consumed.
* **Best-of-``repeat`` per query.**  Transient interference (page cache,
  frequency scaling) inflates individual runs; the per-query minimum is the
  stable estimate of the engine's cost.
* **Collector paused during timed sections.**  The cyclic GC triggers on
  allocation counts, so *when* it fires inside a stream is history-dependent
  noise.  Pausing it is conservative toward the dict engine, which
  otherwise pays heavy collector time for its per-pair object churn.

The headline gate (enforced by ``benchmarks/bench_engines.py --smoke`` in
CI) lives at the large end of the series: the columnar engine's advantage
grows with fragment size, because numpy per-call overhead amortizes over
wider rows.  At web-graph scale (96k nodes, 480k edges, |F|=16) the array
engine must clear **5x** the dict engine's q/s.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.bench.stream import mixed_query_stream
from repro.core.config import DgpmConfig
from repro.graph.generators import web_graph
from repro.partition.fragmentation import Fragmentation
from repro.session import SimulationSession

#: the series behind BENCH_ENGINES.json: advantage as a function of scale
DEFAULT_SIZES: Tuple[Tuple[int, int], ...] = (
    (12000, 60000),
    (48000, 240000),
    (96000, 480000),
)

#: the CI gate workload (the large end of the series) and its floor
GATE_NODES = 96000
GATE_EDGES = 480000
GATE_SPEEDUP = 5.0


@dataclass
class EnginePoint:
    """Both engines' throughput on one workload."""

    n_nodes: int
    n_edges: int
    n_fragments: int
    n_queries: int
    dict_qps: float
    array_qps: float
    parity: bool
    #: one-time cost of compiling every fragment to CSR (amortized over the
    #: session's lifetime; reported so the trade is visible)
    compile_seconds: float
    compilations: int

    @property
    def speedup(self) -> float:
        return self.array_qps / self.dict_qps if self.dict_qps else 0.0


@dataclass
class EngineSeries:
    """The sweep over graph sizes."""

    points: List[EnginePoint] = field(default_factory=list)

    def render(self) -> str:
        header = (
            f"{'nodes':>8} {'edges':>8} {'|F|':>4} {'queries':>8} "
            f"{'dict q/s':>9} {'array q/s':>10} {'speedup':>8} "
            f"{'compile s':>10} {'parity':>7}"
        )
        lines = [header, "-" * len(header)]
        for p in self.points:
            lines.append(
                f"{p.n_nodes:>8} {p.n_edges:>8} {p.n_fragments:>4} "
                f"{p.n_queries:>8} {p.dict_qps:>9.2f} {p.array_qps:>10.2f} "
                f"{p.speedup:>7.2f}x {p.compile_seconds:>10.3f} "
                f"{'ok' if p.parity else 'FAIL':>7}"
            )
        return "\n".join(lines)


def _stream_qps(session: SimulationSession, queries: Sequence, repeat: int) -> float:
    """Best-of-``repeat`` CPU seconds per query, folded into queries/sec."""
    best = [float("inf")] * len(queries)
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeat):
            for i, query in enumerate(queries):
                t0 = time.process_time()
                session.run(query, algorithm="dgpm")
                best[i] = min(best[i], time.process_time() - t0)
    finally:
        if gc_was_enabled:
            gc.enable()
    return len(queries) / sum(best)


def measure_engine_point(
    fragmentation: Fragmentation,
    queries: Sequence,
    n_nodes: int,
    n_edges: int,
    repeat: int = 3,
    config: Optional[DgpmConfig] = None,
) -> EnginePoint:
    """Serve ``queries`` through one session per engine; meter and compare."""
    config = config or DgpmConfig(enable_push=False)
    sessions = {}
    answers = {}
    compile_seconds = 0.0
    compilations = 0
    for engine in ("dict", "array"):
        session = SimulationSession(
            fragmentation, config=config, cache_size=0, engine=engine
        )
        session.warm()
        if engine == "array":
            t0 = time.process_time()
            compiled = session.compiled_fragments().warm()
            compile_seconds = time.process_time() - t0
            compilations = compiled.compilations
        # Parity pass doubles as warmup (first-touch page faults, lazy
        # caches) so the timed loop measures steady-state serving.
        answers[engine] = [
            session.run(q, algorithm="dgpm").relation for q in queries
        ]
        sessions[engine] = session
    parity = all(a == b for a, b in zip(answers["dict"], answers["array"]))
    return EnginePoint(
        n_nodes=n_nodes,
        n_edges=n_edges,
        n_fragments=fragmentation.n_fragments,
        n_queries=len(queries),
        dict_qps=_stream_qps(sessions["dict"], queries, repeat),
        array_qps=_stream_qps(sessions["array"], queries, repeat),
        parity=parity,
        compile_seconds=compile_seconds,
        compilations=compilations,
    )


def engine_series(
    sizes: Sequence[Tuple[int, int]] = DEFAULT_SIZES,
    n_fragments: int = 16,
    n_distinct: int = 6,
    repeat: int = 3,
    q_nodes: int = 4,
    q_edges: int = 6,
    seed: int = 7,
    config: Optional[DgpmConfig] = None,
) -> EngineSeries:
    """Sweep both engines over web-graph sizes at fixed |F|."""
    from repro import partition

    series = EngineSeries()
    for n_nodes, n_edges in sizes:
        graph = web_graph(n_nodes, n_edges, seed=11)
        fragmentation = partition(
            graph, n_fragments=n_fragments, seed=3, vf_ratio=0.25
        )
        queries = mixed_query_stream(
            graph, n_distinct, 1, n_nodes=q_nodes, n_edges=q_edges, seed=seed
        )
        series.points.append(
            measure_engine_point(
                fragmentation,
                queries,
                n_nodes=n_nodes,
                n_edges=n_edges,
                repeat=repeat,
                config=config,
            )
        )
    return series
