"""repro: distributed graph simulation with provable performance bounds.

A faithful, laptop-scale reproduction of

    Wenfei Fan, Xin Wang, Yinghui Wu, Dong Deng.
    "Distributed Graph Simulation: Impossibility and Possibility."
    PVLDB 7(12), 2014.

Quickstart
----------
>>> from repro import Pattern, web_graph, partition, run_dgpm, simulation
>>> g = web_graph(2000, 10000, seed=1)
>>> q = Pattern({"a": "dom0", "b": "dom1"}, [("a", "b"), ("b", "a")])
>>> frag = partition(g, n_fragments=4, seed=1)
>>> result = run_dgpm(q, frag)
>>> result.relation == simulation(q, g)     # distributed == centralized
True
>>> result.metrics.ds_kb                    # bounded by O(|Ef| |Vq|)
0.0...

Public surface
--------------
* graphs & queries: :class:`DiGraph`, :class:`Pattern`, generators
  (:func:`web_graph`, :func:`citation_dag`, :func:`random_labeled_graph`,
  :func:`random_tree`), the paper's examples in :mod:`repro.graph.examples`;
* centralized engines: :func:`simulation` (HHK), :func:`naive_simulation`,
  :func:`dag_simulation`, plus strong simulation / subgraph isomorphism in
  :mod:`repro.simulation`;
* fragmentation: :func:`fragment_graph`, :func:`partition`, partitioners and
  :func:`refine_to_vf_ratio` in :mod:`repro.partition`;
* distributed algorithms: :func:`run_dgpm` (Theorem 2), :func:`run_dgpmd`
  (Theorem 3), :func:`run_dgpmt` (Corollary 4), :func:`run_auto`, configured
  by :class:`DgpmConfig`;
* baselines: :func:`run_match`, :func:`run_dishhk`, :func:`run_dmes`;
* resident serving: :class:`SimulationSession` in :mod:`repro.session` holds
  a fragmentation and serves query streams with per-graph setup amortized
  and an LRU result cache (``session.run_many(queries)``); it is also the
  write path -- ``session.delete_edge/insert_edge/add_node`` patch the
  fragmentation in place and maintain the caches incrementally
  (``O(|AFF|)`` repair for hot queries) instead of dropping them;
* concurrent serving: :class:`ConcurrentSessionServer` fronts one session
  with many reader threads (or a pool of replica worker processes) under a
  reader-writer protocol -- queries run concurrently, mutations apply in
  coalesced batches at quiescent points, and every result carries the
  mutation stamp it observed (:mod:`repro.session.concurrent`);
* network serving: :mod:`repro.net` puts the concurrent server behind a
  TCP socket -- an asyncio ingress (:class:`~repro.net.server.
  NetworkSessionServer`) plus blocking and pipelining-asyncio clients
  speaking a length-prefixed, versioned frame protocol; the same protocol
  backs the TCP worker transport of :mod:`repro.runtime.transport`, so
  replica/site workers can be remote processes;
* benchmarks: the experiment definitions of Figure 6 in :mod:`repro.bench`.
"""

from repro.baselines import run_dishhk, run_dmes, run_match
from repro.core import DgpmConfig, run_auto, run_dgpm, run_dgpmd, run_dgpmt
from repro.errors import (
    FragmentationError,
    GraphError,
    PatternError,
    ProtocolError,
    ReproError,
    TransportError,
    WireFormatError,
)
from repro.graph import DiGraph, Pattern
from repro.graph.generators import (
    citation_dag,
    random_labeled_graph,
    random_tree,
    web_graph,
)
from repro.partition import (
    Fragmentation,
    PartitionStats,
    balanced_bfs_partition,
    fragment_graph,
    hash_partition,
    min_cut_partition,
    partition_stats,
    random_partition,
    refine_to_vf_ratio,
    traffic_node_weights,
    tree_partition,
)
from repro.runtime import CostModel, RunMetrics, RunResult
from repro.session import (
    ConcurrentSessionServer,
    MutationOutcome,
    RebalanceOutcome,
    SessionStats,
    SimulationSession,
    StampedOutcome,
    StampedResult,
)
from repro.simulation import MatchRelation, dag_simulation, naive_simulation, simulation

__version__ = "1.0.0"


def partition(graph: DiGraph, n_fragments: int, seed: int = 0, vf_ratio: float | None = None) -> Fragmentation:
    """Convenience partitioner: a low-cut start, optionally refined.

    For generator graphs (contiguous integer ids with locality) a block
    partition starts with the lowest boundary ratio; other graphs fall back
    to balanced BFS regions.  ``vf_ratio`` (e.g. ``0.25``) then drives
    ``|Vf| / |V|`` toward the paper's sweep values via
    :func:`refine_to_vf_ratio` -- raising the ratio is always possible,
    lowering it only on partition-friendly graphs.
    """
    if all(isinstance(v, int) for v in graph.nodes()):
        from repro.graph.generators import contiguous_block_assignment

        frag = fragment_graph(graph, contiguous_block_assignment(graph, n_fragments))
    else:
        frag = balanced_bfs_partition(graph, n_fragments, seed=seed)
    if vf_ratio is not None:
        frag = refine_to_vf_ratio(frag, vf_ratio, seed=seed)
    return frag


__all__ = [
    "__version__",
    # errors
    "ReproError", "GraphError", "PatternError", "FragmentationError", "ProtocolError",
    "TransportError", "WireFormatError",
    # graphs & queries
    "DiGraph", "Pattern",
    "web_graph", "citation_dag", "random_labeled_graph", "random_tree",
    # centralized simulation
    "MatchRelation", "simulation", "naive_simulation", "dag_simulation",
    # fragmentation
    "Fragmentation", "fragment_graph", "partition",
    "hash_partition", "random_partition", "balanced_bfs_partition",
    "min_cut_partition", "refine_to_vf_ratio", "traffic_node_weights",
    "tree_partition", "PartitionStats", "partition_stats",
    # distributed algorithms
    "DgpmConfig", "run_dgpm", "run_dgpmd", "run_dgpmt", "run_auto",
    # resident multi-query serving (incl. the in-place mutation API)
    "SimulationSession", "SessionStats", "MutationOutcome",
    # concurrent serving front-end
    "ConcurrentSessionServer", "StampedResult", "StampedOutcome",
    "RebalanceOutcome",
    # baselines
    "run_match", "run_dishhk", "run_dmes",
    # runtime
    "CostModel", "RunMetrics", "RunResult",
]
