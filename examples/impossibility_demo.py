#!/usr/bin/env python
"""Theorem 1, live: why no algorithm can be parallel scalable.

Builds the Figure-2 gadget families and runs dGPM over growing chain length
n.  Family (1) keeps |Q| and every fragment's size constant while n (and so
|F|) grows -- yet the number of communication rounds climbs linearly,
because the matching verdict of every node hinges on the far end of the
chain (simulation has no data locality, Example 3).  Family (2) fixes
|F| = 2 and watches data shipment climb instead.

Run:  python examples/impossibility_demo.py
"""

from repro.core.impossibility import audit_data_shipment, audit_parallel_time
from repro.graph.examples import figure2, figure2_graph, figure2_query
from repro.simulation import simulation


def main() -> None:
    print("=== no data locality (Example 3) ===")
    query = figure2_query()
    closed = figure2_graph(16)
    opened = figure2_graph(16, close_cycle=False)
    print(f"closed 16-cycle matches: {simulation(query, closed).is_match}")
    print(f"open 16-chain matches:   {simulation(query, opened).is_match}")
    print("one edge, 16 hops away, flips every node's verdict.\n")

    sizes = (4, 8, 16, 32, 64)

    print("=== family (1): |Fm| constant, |F| = n -> rounds grow ===")
    print(f"{'n':>4} {'|Fm|':>5} {'|F|':>5} {'rounds':>7} {'correct':>8}")
    for p in audit_parallel_time(sizes):
        print(f"{p.n:>4} {p.fm_size:>5} {p.n_fragments:>5} {p.rounds:>7} {str(p.correct):>8}")
    print("parallel scalability would require a constant row; it is linear.\n")

    print("=== family (2): |Q|, |F|=2 constant -> data shipment grows ===")
    print(f"{'n':>4} {'|F|':>5} {'DS bytes':>9} {'correct':>8}")
    for p in audit_data_shipment(sizes):
        print(f"{p.n:>4} {p.n_fragments:>5} {p.ds_bytes:>9} {str(p.correct):>8}")
    print("data-shipment scalability would require a constant column; it is linear.\n")

    print("=== the positive side: partition boundedness (Theorem 2) ===")
    q, g, frag = figure2(32)
    from repro import run_dgpm

    result = run_dgpm(q, frag)
    budget = frag.n_crossing_edges * q.n_nodes
    print(
        f"closed 32-cycle over 32 sites: {result.metrics.n_messages} messages"
        f" <= |Ef|*|Vq| = {budget} (the Theorem-2 budget)"
    )


if __name__ == "__main__":
    main()
