#!/usr/bin/env python
"""Trees: the one case where parallel scalability is possible (Corollary 4).

Runs dGPMt on a distributed tree (an org-chart / category-taxonomy shape):
two coordinator round-trips, data shipment O(|Q||F|) -- independent of the
size of the tree.  The script grows the tree 4x at fixed |F| and shows DS
staying flat, then contrasts with dMes whose traffic tracks the boundary.

Run:  python examples/distributed_tree.py
"""

from repro import random_tree, run_dgpmt, run_dmes, simulation, tree_partition
from repro.bench.workloads import tree_pattern


def main() -> None:
    print("=== dGPMt: two round-trips, DS independent of |G| ===")
    print(f"{'|V|':>7} {'rounds':>7} {'msgs':>6} {'DS(KB)':>8} {'PT(s)':>8}")
    for n_nodes in (5000, 10000, 20000):
        tree = random_tree(n_nodes, n_labels=8, seed=7)
        fragmentation = tree_partition(tree, 8, seed=3)
        assert fragmentation.has_connected_fragments()
        query = tree_pattern(tree, n_nodes=4, seed=41)
        result = run_dgpmt(query, fragmentation)
        assert result.relation == simulation(query, tree)
        m = result.metrics
        print(f"{n_nodes:>7} {m.n_rounds:>7} {m.n_messages:>6} {m.ds_kb:>8.2f} {m.pt_seconds:>8.4f}")

    print("\neach fragment is a connected subtree, so it ships exactly one")
    print("Boolean vector (one equation per query node) -- O(|Q||F|) total.")

    tree = random_tree(20000, n_labels=8, seed=7)
    fragmentation = tree_partition(tree, 8, seed=3)
    query = tree_pattern(tree, n_nodes=4, seed=41)
    dgpmt = run_dgpmt(query, fragmentation)
    dmes = run_dmes(query, fragmentation)
    assert dgpmt.relation == dmes.relation
    print(
        f"\nvs dMes on the 20k tree: dGPMt {dgpmt.metrics.n_rounds} rounds /"
        f" {dgpmt.metrics.ds_kb:.2f}KB, dMes {dmes.metrics.n_rounds} rounds /"
        f" {dmes.metrics.ds_kb:.2f}KB"
    )


if __name__ == "__main__":
    main()
