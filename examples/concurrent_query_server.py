#!/usr/bin/env python
"""Serving one resident graph from many clients at once.

What this example shows
-----------------------

``ConcurrentSessionServer`` fronts one resident
:class:`~repro.session.SimulationSession` with a reader-writer protocol:

* **many clients read at once** -- every in-flight ``submit()``/``run()``
  proceeds concurrently under a shared read lock;
* **writes wait for a quiescent point** -- mutations are serialized,
  coalesced into batches, and applied only while no query is in flight, so
  a query can never observe half of a batch;
* **every answer is stamped** -- ``result.stamp`` is the number of mutations
  the graph had absorbed when the query ran.  A result stamped ``s`` equals
  a from-scratch simulation on the graph after its first ``s`` updates:
  clients can reason about exactly which version of the world they saw.

Two backends behind the same API:

* ``backend="thread"`` (used below, works everywhere): overlap, fairness and
  one shared result cache; compute stays GIL-bound.
* ``backend="process"``: a pool of replica sessions in OS worker processes
  (dependency graphs shipped once, distinct queries pinned to workers) --
  true parallel speedup on multi-core hosts; see
  ``benchmarks/bench_concurrent.py`` for the measured gate.

Run:  python examples/concurrent_query_server.py
"""

import random
import threading
import time

from repro import ConcurrentSessionServer, partition, simulation, web_graph
from repro.bench.workloads import cyclic_pattern


def main() -> None:
    graph = web_graph(1500, 7500, n_labels=10, seed=31)
    fragmentation = partition(graph, n_fragments=8, seed=31, vf_ratio=0.25)
    initial = graph.copy()  # kept aside to audit snapshot stamps at the end
    print(f"resident graph: {fragmentation!r}")

    hot = [cyclic_pattern(graph, n_nodes=3, n_edges=4, seed=s) for s in range(4)]
    audited = []  # (query index, StampedResult) pairs, appended by clients

    with ConcurrentSessionServer(
        fragmentation, backend="thread", n_workers=4
    ) as server:
        # --- a handful of reader "clients" and one mutating "feed" ------
        def client(cid: int) -> None:
            rng = random.Random(cid)
            for _ in range(12):
                qi = rng.randrange(len(hot))
                result = server.run(hot[qi], algorithm="dgpm")
                audited.append((qi, result))

        def feed() -> None:
            rng = random.Random(99)
            deleted = []
            for step in range(10):
                if step % 4 == 3 and deleted:
                    u, v = deleted.pop()
                    server.insert_edge(u, v)
                else:
                    edges = list(graph.edges())
                    u, v = edges[rng.randrange(len(edges))]
                    server.delete_edge(u, v)
                    deleted.append((u, v))

        t0 = time.perf_counter()
        threads = [threading.Thread(target=client, args=(c,)) for c in range(4)]
        threads.append(threading.Thread(target=feed))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - t0

        stats = server.stats
        print(
            f"served {stats.queries_served} queries ({stats.hit_rate:.0%} from "
            f"cache) while absorbing {server.stamp} mutations in {wall:.2f}s"
        )

        # --- audit the snapshot contract --------------------------------
        # The resident graph now sits at the final stamp; every result that
        # reports it must equal a from-scratch oracle on the current graph.
        # (The stress suite replays *every* stamp; this is the cheap check.)
        stamps = sorted({r.stamp for _, r in audited})
        oracle = {}
        checked = 0
        for qi, result in audited:
            if result.stamp == server.stamp:
                if qi not in oracle:
                    oracle[qi] = simulation(hot[qi], graph)
                assert result.relation == oracle[qi]
                checked += 1
        print(
            f"stamps observed by clients: {stamps}; audited {checked} "
            f"final-stamp answers against the from-scratch oracle: ok"
        )
        assert graph.n_edges < initial.n_edges  # the feed really mutated

    print("server closed cleanly")


if __name__ == "__main__":
    main()
