#!/usr/bin/env python
"""Serving a mixed query stream from one resident SimulationSession.

The scenario the session layer exists for: a fragmented graph stays resident
at its sites while queries arrive continuously -- cyclic patterns, DAG
patterns, point lookups -- some of them repeats (hot queries).  One
:class:`~repro.session.SimulationSession` serves them all:

* per-graph setup (dependency/watcher tables, label indexes) is paid once,
* ``algorithm="auto"`` picks the strongest applicable guarantee per query,
* repeated queries come straight from the LRU result cache,
* a mid-stream graph update invalidates every cache, transparently.

Run:  python examples/query_server.py
"""

import time

from repro import SimulationSession, partition, simulation, web_graph
from repro.bench.workloads import cyclic_pattern
from repro.graph.pattern import Pattern


def build_stream(graph, n_distinct=5, repeat=4):
    """A hot-query mix: distinct patterns cycled, plus point lookups."""
    stream = []
    for rep in range(repeat):
        for s in range(n_distinct):
            stream.append(cyclic_pattern(graph, n_nodes=4, n_edges=6, seed=s))
        # A point query: every node with the most common label.
        label = max(
            graph.label_alphabet(), key=lambda lab: len(graph.nodes_with_label(lab))
        )
        stream.append(Pattern({"hot": label}))
    return stream


def main() -> None:
    graph = web_graph(3000, 15000, n_labels=18, seed=11)
    fragmentation = partition(graph, n_fragments=8, seed=11, vf_ratio=0.25)
    print(f"resident graph: {fragmentation!r}")

    session = SimulationSession(fragmentation).warm()
    stream = build_stream(graph)
    print(f"serving {len(stream)} queries (mixed shapes, hot repeats)...")

    t0 = time.perf_counter()
    results = session.run_many(stream, algorithm="auto")
    elapsed = time.perf_counter() - t0

    by_algorithm = {}
    for r in results:
        by_algorithm[r.metrics.algorithm] = by_algorithm.get(r.metrics.algorithm, 0) + 1
    print(f"throughput: {len(stream) / elapsed:.1f} queries/sec")
    print(f"algorithms used: {by_algorithm}")
    print(
        f"cache: {session.stats.cache_hits} hits / {session.stats.queries_served} queries "
        f"(hit rate {session.stats.hit_rate:.0%})"
    )

    # Spot-check a served answer against the centralized oracle.
    probe = stream[0]
    assert results[0].relation == simulation(probe, graph)
    print("spot check vs centralized simulation  [ok]")

    # A live update lands: the session notices and rebuilds transparently.
    frag0 = fragmentation[0]
    u, v = next(
        (a, b)
        for a in sorted(frag0.local_nodes)
        for b in sorted(frag0.local_nodes)
        if a != b and not graph.has_edge(a, b)
    )
    graph.add_edge(u, v)
    frag0.graph.add_edge(u, v)
    session.run(probe)
    print(
        f"after a live edge insert: invalidations={session.stats.invalidations}, "
        "answers stay oracle-exact"
    )
    assert session.run(probe).relation == simulation(probe, graph)


if __name__ == "__main__":
    main()
