#!/usr/bin/env python
"""A query server whose graph changes underneath it -- without dropping caches.

The highly-dynamic serving scenario: a fragmented social/web graph stays
resident at its sites while *both* queries and updates stream in.  One
:class:`~repro.session.SimulationSession` is the read and the write path:

* hot queries are answered from the LRU cache and promoted to warm
  incremental states (the paper's Section-4.2 incremental lEval, kept alive
  per query);
* ``session.delete_edge`` patches the fragmentation in place -- fragment
  subgraphs, ``Fi.O``/``Fi.I`` metadata, watcher tables -- and repairs the
  warm answers through the affected area only (``O(|AFF|)``);
* cached entries that the update provably cannot touch (no query edge
  carries the deleted edge's label pair) are simply kept;
* an insertion re-evaluates only the affected warm entries.

``Fragmentation.validate()`` holds after every update, and every answer
stays equal to a from-scratch centralized oracle.

Run:  python examples/mutating_query_server.py
"""

import random
import time

from repro import SimulationSession, partition, simulation, web_graph
from repro.bench.workloads import cyclic_pattern


def main() -> None:
    graph = web_graph(2000, 10000, n_labels=12, seed=23)
    fragmentation = partition(graph, n_fragments=8, seed=23, vf_ratio=0.25)
    print(f"resident graph: {fragmentation!r}")

    session = SimulationSession(fragmentation).warm()
    hot = [cyclic_pattern(graph, n_nodes=3, n_edges=4, seed=s) for s in range(3)]

    # Serve the hot set twice: the second pass hits the cache and gives each
    # query a warm incremental state.
    for _ in range(2):
        session.run_many(hot, algorithm="dgpm")
    print(f"hot queries warmed: {len(session._warm)} incremental states live")

    # Interleave live updates with queries: mostly unfollows (deletions),
    # some of them later undone (insertions).
    rng = random.Random(23)
    relevant = {(q.label(a), q.label(b)) for q in hot for a, b in q.edges()}
    deleted = []
    t0 = time.perf_counter()
    for step in range(40):
        if step % 5 == 4 and deleted:
            u, v = deleted.pop(rng.randrange(len(deleted)))
            session.insert_edge(u, v)
        else:
            edges = [
                (u, v)
                for u, v in graph.edges()
                if (graph.label(u), graph.label(v)) in relevant
            ] if step % 2 == 0 else list(graph.edges())
            u, v = edges[rng.randrange(len(edges))]
            outcome = session.delete_edge(u, v)
            deleted.append((u, v))
            if outcome.cache_repaired:
                print(
                    f"  step {step:>2}: delete ({u}, {v}) changed "
                    f"{outcome.cache_repaired} hot answer(s) -- repaired in "
                    f"place (|AFF| ~ {outcome.falsified})"
                )
        session.run(hot[step % len(hot)], algorithm="dgpm")
    elapsed = time.perf_counter() - t0

    stats = session.stats
    print(f"\nprocessed 40 mutations + 40 queries in {elapsed:.3f}s "
          f"({80 / elapsed:.0f} ops/sec)")
    print(f"cache maintenance: {stats.entries_kept} kept, "
          f"{stats.entries_repaired} repaired, {stats.entries_evicted} evicted, "
          f"{stats.invalidations} full invalidations")
    print(f"hit rate while mutating: {stats.hit_rate:.0%}")

    # The invariants and the answers survive the whole stream.
    fragmentation.validate()
    for q in hot:
        assert session.run(q, algorithm="dgpm").relation == simulation(q, graph)
    print("Section-2.2 invariants valid; all answers equal the centralized oracle  [ok]")


if __name__ == "__main__":
    main()
