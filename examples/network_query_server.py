#!/usr/bin/env python
"""A real client/server topology on localhost: one graph, many sockets.

What this example shows
-----------------------

``repro.net`` puts the concurrent serving stack behind a TCP socket:

* the **server** is an asyncio ingress (started here on a background
  thread via :func:`repro.net.serve_in_thread`) fronting a
  :class:`~repro.session.ConcurrentSessionServer` over one resident
  fragmentation;
* a **sync client** (:class:`~repro.net.SessionClient`) issues queries over
  a blocking connection, the way a worker thread in another service would;
* an **asyncio client** (:class:`~repro.net.AsyncSessionClient`) pipelines
  a whole batch of queries on a single connection --
  ``asyncio.gather`` overlaps them, replies arrive in completion order and
  are matched back by sequence number;
* a **mutation feed** (a second sync client) streams edge deletions and
  insertions through the same socket; the server applies them at quiescent
  points, so every reply still carries the exact mutation stamp its answer
  observed.

At the end, the snapshot contract is audited *per stamp*: each client-observed
result must equal a from-scratch centralized simulation on a replay of the
graph after exactly ``result.stamp`` updates -- network serving changes the
wire, never the answers.

Run:  python examples/network_query_server.py
"""

import asyncio
import random
import threading
import time

from repro import partition, simulation, web_graph
from repro.bench.workloads import cyclic_pattern
from repro.net import AsyncSessionClient, SessionClient, serve_in_thread


def replay(graph, ops, n):
    """The graph after the first ``n`` updates (fresh copy each call)."""
    replayed = graph.copy()
    for kind, u, v in ops[:n]:
        if kind == "delete":
            replayed.remove_edge(u, v)
        else:
            replayed.add_edge(u, v)
    return replayed


def main() -> None:
    graph = web_graph(800, 4000, n_labels=8, seed=23)
    fragmentation = partition(graph, n_fragments=4, seed=23, vf_ratio=0.25)
    initial = graph.copy()  # the stamp-0 oracle graph; replays start here
    hot = [cyclic_pattern(graph, n_nodes=3, n_edges=4, seed=s) for s in range(4)]

    audited = []  # (query index, StampedResult) from every client
    ops = []      # the feed's updates, in application (= stamp) order

    with serve_in_thread(fragmentation, backend="thread", n_workers=4) as srv:
        host, port = srv.address
        print(f"serving {fragmentation!r}")
        print(f"listening on {host}:{port}")

        def sync_client() -> None:
            rng = random.Random(1)
            with SessionClient(host, port, timeout=120.0) as client:
                for _ in range(10):
                    qi = rng.randrange(len(hot))
                    audited.append((qi, client.run(hot[qi], algorithm="dgpm")))

        def feed() -> None:
            rng = random.Random(99)
            deleted = []
            with SessionClient(host, port, timeout=120.0) as client:
                for step in range(6):
                    if step % 3 == 2 and deleted:
                        u, v = deleted.pop()
                        outcome = client.insert_edge(u, v)
                        ops.append(("insert", u, v))
                    else:
                        edges = list(graph.edges())
                        u, v = edges[rng.randrange(len(edges))]
                        outcome = client.delete_edge(u, v)
                        ops.append(("delete", u, v))
                        deleted.append((u, v))
                    assert outcome.stamp == len(ops)
                    time.sleep(0.01)  # let queries land between stamps

        async def async_client() -> None:
            async with await AsyncSessionClient.connect(host, port) as client:
                # Two pipelined waves of the whole hot set on ONE connection.
                for _ in range(2):
                    results = await asyncio.gather(
                        *[client.run(q, algorithm="dgpm") for q in hot]
                    )
                    audited.extend(zip(range(len(hot)), results))
                reply = await client.stats()
                print(
                    f"server stats via asyncio client: "
                    f"{reply.stats.queries_served} served, "
                    f"stamp {reply.stamp}, backend {reply.backend!r}"
                )

        t0 = time.perf_counter()
        threads = [
            threading.Thread(target=sync_client),
            threading.Thread(target=feed),
            threading.Thread(target=lambda: asyncio.run(async_client())),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - t0
        print(
            f"2 query clients + 1 mutation feed: {len(audited)} answers, "
            f"{len(ops)} mutations in {wall:.2f}s"
        )

    # --- audit the snapshot contract, stamp by stamp --------------------
    # Every result equals a from-scratch simulation on the graph after its
    # first `stamp` updates.  (tests/net/ asserts the same end-to-end.)
    oracles = {}
    for qi, result in audited:
        key = (qi, result.stamp)
        if key not in oracles:
            oracles[key] = simulation(hot[qi], replay(initial, ops, result.stamp))
        assert result.relation == oracles[key], (
            f"answer at stamp {result.stamp} diverged from the oracle"
        )
    stamps = sorted({r.stamp for _, r in audited})
    print(
        f"audited all {len(audited)} answers against from-scratch replays "
        f"at stamps {stamps}: ok"
    )
    print("server closed cleanly")


if __name__ == "__main__":
    main()
