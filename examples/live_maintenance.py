#!/usr/bin/env python
"""Live maintenance: keeping Q(G) fresh while the social graph churns.

Social graphs change constantly; re-running the full distributed evaluation
per update wastes exactly the work the paper's incremental lEval (Section
4.2, built on the authors' incremental-matching work [13]) avoids.  This
script opens an :class:`IncrementalDgpmSession`, streams edge deletions into
the Figure-1 network, and shows per-update costs: an irrelevant unfollow
costs nothing; cutting a trust edge on the recommendation cycle triggers the
full cascade -- and both leave the answer equal to a from-scratch oracle.

It finishes by validating the runtime substrate itself: the same dGPM run
executed with real OS processes (repro.runtime.mp) produces byte-identical
message counts to the metered simulator.

Run:  python examples/live_maintenance.py
"""

from repro import DgpmConfig, run_dgpm, simulation
from repro.core import IncrementalDgpmSession
from repro.graph.examples import figure1
from repro.runtime.mp import run_dgpm_multiprocess


def main() -> None:
    query, graph, fragmentation = figure1()
    session = IncrementalDgpmSession(query, fragmentation)
    print("initial audience:", {u: sorted(session.relation().matches_of(u))
                                for u in ("YB", "F")})

    print("\n--- update 1: yb1 unfollows f1 (no surviving match involved) ---")
    update = session.delete_edge("yb1", "f1")
    print(f"  shipped {update.n_messages} messages, {update.ds_bytes} bytes,"
          f" {update.falsified_local} local falsifications")
    graph.remove_edge("yb1", "f1")
    assert session.relation() == simulation(query, graph)

    print("\n--- update 2: sp1 stops trusting f2 (cuts the cycle) ---")
    update = session.delete_edge("f2", "sp1")
    print(f"  shipped {update.n_messages} messages, {update.ds_bytes} bytes,"
          f" {update.n_rounds} rounds of cascade")
    graph.remove_edge("f2", "sp1")
    assert session.relation() == simulation(query, graph)
    print(f"  anyone left to advertise to? {session.relation().is_match}")

    print("\n--- update 3: the trust edge comes back ---")
    update = session.insert_edge("f2", "sp1")
    print(f"  {update.kind}: insertions revive matches, so the session"
          f" re-evaluates ({update.n_rounds} rounds)")
    graph.add_edge("f2", "sp1")
    assert session.relation() == simulation(query, graph)
    print("  audience restored:", sorted(session.relation().matches_of("YB")))

    print("\n--- substrate validation: simulator vs real OS processes ---")
    config = DgpmConfig(enable_push=False)
    simulated = run_dgpm(query, fragmentation, config)
    real = run_dgpm_multiprocess(query, fragmentation, config)
    assert simulated.relation == real.relation
    assert simulated.metrics.n_messages == real.metrics.n_messages
    print(f"  identical answers; identical message counts"
          f" ({simulated.metrics.n_messages})")


if __name__ == "__main__":
    main()
